//! The engine's determinism contract, pinned against a full simulated
//! world: `resolve_batch` results are identical to sequential
//! single-query resolution, for every thread count.

use dns_wire::RecordType;
use ecosystem::{EcosystemConfig, World};
use resolver::{Query, QueryEngine, Resolution, ResolveError, ResolverConfig};

fn world() -> World {
    World::build(EcosystemConfig::tiny())
}

/// A fresh engine over `world`, mirroring the scanner's configuration
/// (validation on, default round-robin selection).
fn engine(world: &World) -> QueryEngine {
    QueryEngine::new(
        world.network.clone(),
        world.registry.clone(),
        ResolverConfig { validate: true, ..Default::default() },
    )
}

/// The scanner's wave-1 query shape: HTTPS, A, and NS for every listed
/// apex plus HTTPS for www.
fn scan_queries(world: &World) -> Vec<Query> {
    let mut queries = Vec::new();
    for &id in &world.today_list().ranked {
        let apex = world.domain(id).apex.clone();
        queries.push(Query::new(apex.clone(), RecordType::Https));
        queries.push(Query::new(apex.clone(), RecordType::A));
        queries.push(Query::new(apex.clone(), RecordType::Ns));
        if let Ok(www) = apex.prepend("www") {
            queries.push(Query::new(www, RecordType::Https));
        }
    }
    queries
}

#[test]
fn batch_matches_sequential_resolution() {
    let world = world();
    let queries = scan_queries(&world);
    assert!(queries.len() > 100, "world too small to be meaningful");

    // Baseline: one query at a time through a fresh engine.
    let sequential: Vec<Result<Resolution, ResolveError>> = {
        let engine = engine(&world);
        queries.iter().map(|q| engine.resolve(&q.name, q.rtype)).collect()
    };

    for threads in [1, 2, 4, 8] {
        let engine = engine(&world);
        let batch = engine.resolve_batch(&queries, threads);
        assert_eq!(batch.len(), sequential.len());
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            assert_eq!(b, s, "query #{i} ({:?}) diverged at threads={threads}", queries[i]);
        }
    }
}

#[test]
fn duplicate_queries_share_one_resolution() {
    let world = world();
    let mut queries = scan_queries(&world);
    queries.truncate(40);
    // Duplicate the whole list, interleaved shifts included.
    let doubled: Vec<Query> = queries.iter().chain(queries.iter()).cloned().collect();

    let baseline = engine(&world).resolve_batch(&doubled, 1);
    for threads in [2, 4, 8] {
        let batch = engine(&world).resolve_batch(&doubled, threads);
        assert_eq!(batch, baseline, "threads={threads}");
    }
    // Duplicate positions carry the identical resolution (not a cache
    // hit with different provenance).
    let n = queries.len();
    for i in 0..n {
        assert_eq!(baseline[i], baseline[i + n], "position {i} vs its duplicate");
    }
}

#[test]
fn batch_thread_count_does_not_change_cache_contents() {
    // Final cache *contents* are thread-count-invariant. Stats counters
    // are deliberately not compared: two workers can race the first
    // miss on a shared key (e.g. a TLD's DNSKEY set during validation)
    // and both insert the identical entry, so `insertions` may differ
    // across thread counts on a multi-core host even though the
    // resulting cache is the same.
    let world = world();
    let queries = scan_queries(&world);
    let mut contents = Vec::new();
    for threads in [1, 4] {
        let engine = engine(&world);
        let _ = engine.resolve_batch(&queries, threads);
        contents.push(engine.cache().len());
    }
    assert_eq!(contents[0], contents[1]);
}
