//! The engine's determinism contract, pinned against a full simulated
//! world: `resolve_batch` results are identical to sequential
//! single-query resolution, for every thread count and for every
//! selection strategy — including `Random`, whose per-zone seeded RNGs
//! make randomized-vantage batches thread-count-invariant.
//!
//! CI runs this suite under a thread matrix: set `RESOLVER_TEST_THREADS`
//! to a comma-separated list (e.g. `16,32`) to extend the default
//! `{1, 2, 4, 8}` axis.

use dns_wire::RecordType;
use ecosystem::{EcosystemConfig, World};
use resolver::{Query, QueryEngine, Resolution, ResolveError, ResolverConfig, SelectionStrategy};
use std::sync::Arc;
use telemetry::MetricsRegistry;

fn world() -> World {
    World::build(EcosystemConfig::tiny())
}

/// Thread counts to exercise: the built-in axis plus any counts named in
/// the `RESOLVER_TEST_THREADS` env var (the CI matrix hook).
fn thread_axis() -> Vec<usize> {
    let mut axis = vec![1, 2, 4, 8];
    if let Ok(extra) = std::env::var("RESOLVER_TEST_THREADS") {
        for tok in extra.split(',') {
            if let Ok(n) = tok.trim().parse::<usize>() {
                if n > 0 && !axis.contains(&n) {
                    axis.push(n);
                }
            }
        }
    }
    axis
}

/// A fresh engine over `world` with the given selection strategy,
/// otherwise mirroring the scanner's configuration (validation on).
fn engine_with(world: &World, strategy: SelectionStrategy) -> QueryEngine {
    QueryEngine::new(
        world.network.clone(),
        world.registry.clone(),
        ResolverConfig { validate: true, strategy, seed: 0xBEEF, ..Default::default() },
    )
}

/// A fresh engine mirroring the scanner's default configuration
/// (validation on, default round-robin selection).
fn engine(world: &World) -> QueryEngine {
    engine_with(world, SelectionStrategy::RoundRobin)
}

/// The scanner's wave-1 query shape: HTTPS, A, and NS for every listed
/// apex plus HTTPS for www.
fn scan_queries(world: &World) -> Vec<Query> {
    let mut queries = Vec::new();
    for &id in world.today_list().ranked() {
        let apex = world.domain(id).apex.clone();
        queries.push(Query::new(apex.clone(), RecordType::Https));
        queries.push(Query::new(apex.clone(), RecordType::A));
        queries.push(Query::new(apex.clone(), RecordType::Ns));
        if let Ok(www) = apex.prepend("www") {
            queries.push(Query::new(www, RecordType::Https));
        }
    }
    queries
}

#[test]
fn batch_matches_sequential_resolution() {
    let world = world();
    let queries = scan_queries(&world);
    assert!(queries.len() > 100, "world too small to be meaningful");

    // Baseline: one query at a time through a fresh engine.
    let sequential: Vec<Result<Resolution, ResolveError>> = {
        let engine = engine(&world);
        queries.iter().map(|q| engine.resolve(&q.name, q.rtype)).collect()
    };

    for threads in thread_axis() {
        let engine = engine(&world);
        let batch = engine.resolve_batch(&queries, threads);
        assert_eq!(batch.len(), sequential.len());
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            assert_eq!(b, s, "query #{i} ({:?}) diverged at threads={threads}", queries[i]);
        }
    }
}

#[test]
fn random_selection_batch_is_thread_count_invariant() {
    // The PR-2 bugfix contract: under `Random`, per-zone RNGs seeded
    // from (seed, zone key) make the batch independent of worker count.
    // Before the fix one shared RNG made multi-threaded Random batches
    // interleaving-dependent.
    let world = world();
    let queries = scan_queries(&world);

    let sequential: Vec<Result<Resolution, ResolveError>> = {
        let engine = engine_with(&world, SelectionStrategy::Random);
        queries.iter().map(|q| engine.resolve(&q.name, q.rtype)).collect()
    };

    for threads in thread_axis() {
        let engine = engine_with(&world, SelectionStrategy::Random);
        let batch = engine.resolve_batch(&queries, threads);
        assert_eq!(batch.len(), sequential.len());
        for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
            assert_eq!(
                b, s,
                "Random-selection query #{i} ({:?}) diverged at threads={threads}",
                queries[i]
            );
        }
    }
}

#[test]
fn random_selection_batches_repeat_exactly() {
    // Two fresh engines with the same seed produce identical batches —
    // the reproducibility a randomized-vantage scan relies on.
    let world = world();
    let queries = scan_queries(&world);
    let a = engine_with(&world, SelectionStrategy::Random).resolve_batch(&queries, 4);
    let b = engine_with(&world, SelectionStrategy::Random).resolve_batch(&queries, 4);
    assert_eq!(a, b);
}

#[test]
fn duplicate_queries_share_one_resolution() {
    let world = world();
    let mut queries = scan_queries(&world);
    queries.truncate(40);
    // Duplicate the whole list, interleaved shifts included.
    let doubled: Vec<Query> = queries.iter().chain(queries.iter()).cloned().collect();

    let baseline = engine(&world).resolve_batch(&doubled, 1);
    for threads in thread_axis() {
        if threads == 1 {
            continue;
        }
        let batch = engine(&world).resolve_batch(&doubled, threads);
        assert_eq!(batch, baseline, "threads={threads}");
    }
    // Duplicate positions carry the identical resolution (not a cache
    // hit with different provenance).
    let n = queries.len();
    for i in 0..n {
        assert_eq!(baseline[i], baseline[i + n], "position {i} vs its duplicate");
    }
}

#[test]
fn batch_thread_count_does_not_change_cache_contents() {
    // Final cache *contents* are thread-count-invariant. Stats counters
    // are deliberately not compared: two workers can race the first
    // miss on a shared key (e.g. a TLD's DNSKEY set during validation)
    // and both insert the identical entry, so `insertions` may differ
    // across thread counts on a multi-core host even though the
    // resulting cache is the same.
    let world = world();
    let queries = scan_queries(&world);
    let mut contents = Vec::new();
    for threads in [1, 4] {
        let engine = engine(&world);
        let _ = engine.resolve_batch(&queries, threads);
        contents.push(engine.cache().len());
    }
    assert_eq!(contents[0], contents[1]);
}

#[test]
fn counter_snapshot_is_thread_count_invariant() {
    // The telemetry contract: deterministic counters are derived from
    // batch outcomes, so the registry's canonical counter rendering is
    // byte-identical for every worker thread count — including under
    // Random NS selection, and including warm (from-cache) batches.
    let world = world();
    let queries = scan_queries(&world);
    for strategy in [SelectionStrategy::RoundRobin, SelectionStrategy::Random] {
        let mut baseline: Option<String> = None;
        for threads in thread_axis() {
            let metrics = Arc::new(MetricsRegistry::new("pin"));
            let engine = engine_with(&world, strategy).with_metrics(metrics.clone());
            let _ = engine.resolve_batch(&queries, threads); // cold
            let _ = engine.resolve_batch(&queries, threads); // warm
            let snapshot = metrics.counters_text();
            match &baseline {
                None => {
                    assert!(snapshot.contains("counter engine.batches 2"));
                    assert!(snapshot.contains("counter engine.queries"));
                    assert!(snapshot.contains("counter engine.from_cache"));
                    baseline = Some(snapshot);
                }
                Some(expected) => assert_eq!(
                    &snapshot, expected,
                    "counter snapshot diverged at threads={threads} ({strategy:?})"
                ),
            }
        }
    }
}

#[test]
fn metrics_do_not_perturb_batch_results() {
    // Instrumentation observes, never steers: the same batch through an
    // instrumented engine is bit-identical to an uninstrumented one.
    let world = world();
    let queries = scan_queries(&world);
    let plain = engine(&world).resolve_batch(&queries, 4);
    let metrics = Arc::new(MetricsRegistry::new("observer"));
    let instrumented = engine(&world).with_metrics(metrics.clone()).resolve_batch(&queries, 4);
    assert_eq!(plain, instrumented);
    assert_eq!(metrics.counter_value("engine.queries"), queries.len() as u64);
}

#[test]
fn empty_batch_is_a_no_op() {
    // The empty slice early-returns before assignment maps, thread
    // scaffolding, or any metrics traffic.
    let world = world();
    let metrics = Arc::new(MetricsRegistry::new("empty"));
    let engine = engine(&world).with_metrics(metrics.clone());
    let sent_before = engine.network().stats().datagrams_sent;
    let attach_time = metrics.counters_text();
    let results = engine.resolve_batch(&[], 8);
    assert!(results.is_empty());
    // No batch counters appear and nothing moves: the registry still
    // holds only the zero-valued single-query handles registered at
    // attach time.
    assert_eq!(metrics.counters_text(), attach_time, "an empty batch must record nothing");
    assert_eq!(metrics.counter_value("engine.batches"), 0);
    assert!(metrics.counter_snapshot().iter().all(|(_, v)| *v == 0));
    assert_eq!(engine.network().stats().datagrams_sent, sent_before);
}

#[test]
fn batch_with_more_threads_than_queries() {
    // Sparse batches leave most hash-mod buckets empty; the engine must
    // skip the dead buckets (no job submitted) and still answer every
    // position.
    let world = world();
    let mut queries = scan_queries(&world);
    queries.truncate(3);
    let baseline = engine(&world).resolve_batch(&queries, 1);
    let batch = engine(&world).resolve_batch(&queries, 64);
    assert_eq!(batch, baseline);
}

#[test]
fn pool_starts_lazily_and_is_reused_across_batches() {
    // The worker pool spins up on the first multi-threaded batch only —
    // thread count clamps to the distinct-query count, a sequential
    // batch never touches it — and the same workers then serve every
    // subsequent batch (no per-batch spawn).
    let world = world();
    let queries = scan_queries(&world);
    let engine = engine(&world);
    assert_eq!(engine.pool_size(), 0, "no workers before any batch");

    let _ = engine.resolve_batch(&queries, 1);
    assert_eq!(engine.pool_size(), 0, "a sequential batch must not start workers");

    let _ = engine.resolve_batch(&queries, 4);
    assert_eq!(engine.pool_size(), 4, "first threads=4 batch starts exactly 4 workers");

    let _ = engine.resolve_batch(&queries, 4);
    let _ = engine.resolve_batch(&queries, 2);
    assert_eq!(engine.pool_size(), 4, "later batches reuse the pool (never shrink)");

    let _ = engine.resolve_batch(&queries, 6);
    assert_eq!(engine.pool_size(), 6, "a wider batch grows the pool in place");
}

#[test]
fn pool_reuse_across_batches_has_no_state_bleed() {
    // A campaign runs many waves through one engine. Resolving the same
    // wave sequence through one pooled engine must produce exactly what
    // a fresh engine resolving the same sequence sequentially produces:
    // worker reuse may not leak selection or cache state between
    // batches beyond what the (shared, intended) cache itself carries.
    let world = world();
    let queries = scan_queries(&world);
    let waves: Vec<&[Query]> = vec![&queries[..], &queries[..queries.len() / 2], &queries[..]];

    for strategy in [SelectionStrategy::RoundRobin, SelectionStrategy::Random] {
        let sequential_engine = engine_with(&world, strategy);
        let pooled_engine = engine_with(&world, strategy);
        for (w, wave) in waves.iter().enumerate() {
            let sequential = sequential_engine.resolve_batch(wave, 1);
            let pooled = pooled_engine.resolve_batch(wave, 4);
            assert_eq!(sequential, pooled, "wave {w} diverged under {strategy:?}");
        }
        assert_eq!(
            sequential_engine.cache().len(),
            pooled_engine.cache().len(),
            "cache contents diverged under {strategy:?}"
        );
    }
}
