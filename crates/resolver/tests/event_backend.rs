//! The virtual-time event-loop backend's contract, pinned from three
//! directions:
//!
//! 1. **WorkerPool equivalence** — on the zero-latency model the event
//!    loop returns byte-identical results to the pooled backend, for
//!    every selection strategy and thread count (per-zone serialization,
//!    see `resolver::eventloop`'s module docs).
//! 2. **Virtual-time determinism** — with a latency/loss model installed
//!    the batch's results, outcome counters, and per-query virtual
//!    timeline are a pure function of the seed: invariant across the
//!    `RESOLVER_TEST_THREADS` axis and exactly repeatable.
//! 3. **The timeout ladder** — a lame (mute) endpoint burns the full
//!    retransmit budget in virtual time, then NS fallback recovers the
//!    answer from the healthy endpoint.
//!
//! CI runs this suite under the same thread matrix as `engine_batch`:
//! `RESOLVER_TEST_THREADS` extends the default `{1, 2, 4, 8}` axis.

use authserver::{AuthoritativeServer, DelegationRegistry, NsEndpoint, Zone, ZoneSet};
use dns_wire::{DnsName, RData, Record, RecordType};
use ecosystem::{EcosystemConfig, World};
use netsim::{LinkModel, Network, SimClock};
use resolver::{
    EngineBackend, Query, QueryEngine, Resolution, ResolveError, ResolverConfig, SelectionStrategy,
};
use std::net::IpAddr;
use std::sync::Arc;
use telemetry::MetricsRegistry;

fn name(s: &str) -> DnsName {
    DnsName::parse(s).unwrap()
}

fn ip(s: &str) -> IpAddr {
    s.parse().unwrap()
}

/// Thread counts to exercise (the CI matrix hook, same as engine_batch).
fn thread_axis() -> Vec<usize> {
    let mut axis = vec![1, 2, 4, 8];
    if let Ok(extra) = std::env::var("RESOLVER_TEST_THREADS") {
        for tok in extra.split(',') {
            if let Ok(n) = tok.trim().parse::<usize>() {
                if n > 0 && !axis.contains(&n) {
                    axis.push(n);
                }
            }
        }
    }
    axis
}

fn engine_with(world: &World, strategy: SelectionStrategy, backend: EngineBackend) -> QueryEngine {
    QueryEngine::new(
        world.network.clone(),
        world.registry.clone(),
        ResolverConfig { validate: true, strategy, seed: 0xBEEF, backend, ..Default::default() },
    )
}

/// The scanner's wave-1 query shape over the world's day-0 list.
fn scan_queries(world: &World) -> Vec<Query> {
    let mut queries = Vec::new();
    for &id in world.today_list().ranked() {
        let apex = world.domain(id).apex.clone();
        queries.push(Query::new(apex.clone(), RecordType::Https));
        queries.push(Query::new(apex.clone(), RecordType::A));
        queries.push(Query::new(apex.clone(), RecordType::Ns));
        if let Ok(www) = apex.prepend("www") {
            queries.push(Query::new(www, RecordType::Https));
        }
    }
    queries
}

#[test]
fn event_backend_matches_pooled_on_zero_latency() {
    // The tentpole equivalence pin: same world, same queries, and the
    // event loop returns exactly what the pooled backend returns — for
    // stateful selection strategies included, because both backends
    // consume per-zone selection state in batch input order.
    let world = World::build(EcosystemConfig::tiny());
    let queries = scan_queries(&world);
    assert!(queries.len() > 100, "world too small to be meaningful");

    for strategy in
        [SelectionStrategy::RoundRobin, SelectionStrategy::Random, SelectionStrategy::First]
    {
        let pooled: Vec<Result<Resolution, ResolveError>> =
            engine_with(&world, strategy, EngineBackend::Pooled).resolve_batch(&queries, 4);
        for threads in thread_axis() {
            let engine = engine_with(&world, strategy, EngineBackend::EventLoop);
            assert_eq!(engine.backend(), EngineBackend::EventLoop);
            let (batch, timing) = engine.resolve_batch_timed(&queries, threads);
            assert_eq!(batch.len(), pooled.len());
            for (i, (b, p)) in batch.iter().zip(&pooled).enumerate() {
                assert_eq!(
                    b, p,
                    "query #{i} ({:?}) diverged from pooled at threads={threads} ({strategy:?})",
                    queries[i]
                );
            }
            // Zero latency: the whole batch happens in one virtual
            // instant, with no timeout machinery engaged.
            let timing = timing.expect("event backend reports timing");
            assert_eq!(timing.started_ms, timing.finished_ms);
            assert_eq!(timing.stats, resolver::EventLoopStats::default());
        }
    }
}

#[test]
fn event_backend_duplicates_share_one_resolution() {
    let world = World::build(EcosystemConfig::tiny());
    let mut queries = scan_queries(&world);
    queries.truncate(40);
    let doubled: Vec<Query> = queries.iter().chain(queries.iter()).cloned().collect();
    let batch = engine_with(&world, SelectionStrategy::RoundRobin, EngineBackend::EventLoop)
        .resolve_batch(&doubled, 4);
    let n = queries.len();
    for i in 0..n {
        assert_eq!(batch[i], batch[i + n], "position {i} vs its duplicate");
    }
}

/// A ~1200-apex world: big enough that a batch holds >1000 zones in
/// flight at once, small enough to build in test time.
fn wide_world() -> World {
    World::build(EcosystemConfig {
        population: 1_500,
        list_size: 1_200,
        noncf_adopters: vec![(4, "eName"), (3, "Google"), (2, "GoDaddy"), (1, "NSONE")],
        toggling_domains: 8,
        migrating_domains: 4,
        mixed_ns_domains: 6,
        undelegated_domains: 2,
        permanent_mismatch_domains: 2,
        ..EcosystemConfig::default()
    })
}

/// The acceptance workload: HTTPS/A/NS for 1200 apexes = 3600 queries.
fn wide_queries(world: &World) -> Vec<Query> {
    let mut queries = Vec::new();
    for &id in world.today_list().ranked() {
        let apex = world.domain(id).apex.clone();
        queries.push(Query::new(apex.clone(), RecordType::Https));
        queries.push(Query::new(apex.clone(), RecordType::A));
        queries.push(Query::new(apex, RecordType::Ns));
    }
    queries
}

fn lossy_model() -> LinkModel {
    LinkModel::new(0x1055).with_rtt_ms(20).with_loss_permille(10) // 20 ms RTT, 1% loss
}

#[test]
fn lossy_batch_is_thread_count_invariant_and_deeply_concurrent() {
    // The ISSUE's acceptance workload: a 3600-query batch over a
    // 20 ms-RTT, 1%-loss link. Results, the telemetry counter snapshot
    // (timeout/retransmit/drop/fallback counters plus the virtual-time
    // latency histogram), and the virtual timeline must be identical for
    // every worker-thread setting, and one event-loop worker must hold
    // ≥1000 queries in flight at once.
    type Baseline = (Vec<Result<Resolution, ResolveError>>, Vec<(u64, u64)>, String);
    let mut baseline: Option<Baseline> = None;
    for threads in thread_axis() {
        let world = wide_world();
        world.network.set_latency_model(lossy_model());
        let queries = wide_queries(&world);
        assert_eq!(queries.len(), 3_600);
        let metrics = Arc::new(MetricsRegistry::new("lossy"));
        let engine = QueryEngine::new(
            world.network.clone(),
            world.registry.clone(),
            ResolverConfig {
                validate: false,
                strategy: SelectionStrategy::RoundRobin,
                seed: 0xBEEF,
                backend: EngineBackend::EventLoop,
                ..Default::default()
            },
        )
        .with_metrics(metrics.clone());
        let (results, timing) = engine.resolve_batch_timed(&queries, threads);
        let timing = timing.expect("event backend reports timing");
        assert!(
            timing.max_in_flight >= 1_000,
            "one worker must sustain >=1000 in-flight queries, got {}",
            timing.max_in_flight
        );
        // The loss model engaged the timeout machinery (~1% of ~3600+
        // exchanges) and everything still resolved by fallback/retry.
        assert!(timing.stats.drops > 0, "1% loss over 3600 queries must drop something");
        assert_eq!(timing.stats.drops + timing.stats.ns_fallbacks, timing.stats.timeouts);
        assert!(timing.finished_ms > timing.started_ms);
        let snapshot = metrics.counters_text();
        assert!(snapshot.contains("counter engine.drops"));
        assert!(snapshot.contains("det_histogram engine.vt_query_ms"));
        match &baseline {
            None => baseline = Some((results, timing.per_query_ms, snapshot)),
            Some((expected, spans, text)) => {
                assert_eq!(&results, expected, "results diverged at threads={threads}");
                assert_eq!(&timing.per_query_ms, spans, "timeline diverged at threads={threads}");
                assert_eq!(&snapshot, text, "counter snapshot diverged at threads={threads}");
            }
        }
    }
}

#[test]
fn virtual_timeline_is_seeded_and_repeatable() {
    // Two identically-seeded worlds produce byte-identical batches *and*
    // identical per-query completion instants: the virtual clock is part
    // of the determinism contract, not just the results.
    let mut runs = Vec::new();
    for _ in 0..2 {
        let world = wide_world();
        world.network.set_latency_model(lossy_model());
        let queries = wide_queries(&world);
        let engine = QueryEngine::new(
            world.network.clone(),
            world.registry.clone(),
            ResolverConfig {
                validate: false,
                seed: 0xBEEF,
                backend: EngineBackend::EventLoop,
                ..Default::default()
            },
        );
        runs.push(engine.resolve_batch_timed(&queries, 4));
    }
    let (a_results, a_timing) = runs.remove(0);
    let (b_results, b_timing) = runs.remove(0);
    assert_eq!(a_results, b_results);
    let (a_timing, b_timing) = (a_timing.unwrap(), b_timing.unwrap());
    assert_eq!(a_timing.per_query_ms, b_timing.per_query_ms);
    assert_eq!(a_timing.stats, b_timing.stats);
    assert_eq!(
        (a_timing.started_ms, a_timing.finished_ms),
        (b_timing.started_ms, b_timing.finished_ms)
    );
}

/// Two healthy authoritatives for `a.com`; the link model decides which
/// of them actually answers.
fn two_server_world() -> (Network, DelegationRegistry) {
    let net = Network::new(SimClock::new());
    let reg = DelegationRegistry::new();
    for addr in ["10.0.0.1", "10.0.0.2"] {
        let zones = ZoneSet::new();
        let mut z = Zone::new(name("a.com"));
        z.add(Record::new(name("a.com"), 60, RData::A("1.2.3.4".parse().unwrap())));
        zones.insert(z);
        net.bind_datagram(ip(addr), 53, Arc::new(AuthoritativeServer::new(zones)));
    }
    reg.delegate(
        &name("a.com"),
        vec![
            NsEndpoint { name: name("ns1.x.net"), ip: ip("10.0.0.1") },
            NsEndpoint { name: name("ns2.x.net"), ip: ip("10.0.0.2") },
        ],
    );
    (net, reg)
}

#[test]
fn lame_delegation_recovers_via_retransmits_then_fallback() {
    // ns1 is mute (the paper's lame-delegation shape). A `First`-pinned
    // resolver burns the full retransmit budget against it in virtual
    // time, falls back to ns2, and still recovers the answer.
    let (net, reg) = two_server_world();
    net.set_latency_model(LinkModel::new(3).with_rtt_ms(20).with_lame_endpoint(ip("10.0.0.1")));
    let config = ResolverConfig {
        strategy: SelectionStrategy::First,
        validate: false,
        backend: EngineBackend::EventLoop,
        ..Default::default()
    };
    let (attempt_timeout_ms, retransmits) = (config.attempt_timeout_ms, config.retransmits);
    let engine = QueryEngine::new(net.clone(), reg, config);
    let queries = vec![Query::new(name("a.com"), RecordType::A)];
    let (results, timing) = engine.resolve_batch_timed(&queries, 1);
    let res = results[0].as_ref().expect("fallback must recover the answer");
    assert_eq!(res.records.len(), 1);

    let timing = timing.unwrap();
    let attempts = u64::from(retransmits) + 1;
    assert_eq!(timing.stats.drops, attempts, "every attempt against the mute NS is dropped");
    assert_eq!(timing.stats.timeouts, attempts);
    assert_eq!(timing.stats.retransmits, attempts - 1);
    assert_eq!(timing.stats.ns_fallbacks, 1);
    // The virtual cost is exactly the burned budget plus one healthy RTT.
    assert_eq!(timing.finished_ms - timing.started_ms, attempts * attempt_timeout_ms + 20);
    // The shared clock advanced with the batch.
    assert_eq!(net.clock().now_ms().0, timing.finished_ms);
}

#[test]
fn all_endpoints_lame_surfaces_a_timeout_error() {
    // Both NS mute: the query exhausts every ladder rung and reports the
    // distinct timeout failure (`is_timeout`), not a generic lameness —
    // this is what the scanner's RESOLUTION_TIMEOUT flag keys on.
    let (net, reg) = two_server_world();
    net.set_latency_model(
        LinkModel::new(3)
            .with_rtt_ms(20)
            .with_lame_endpoint(ip("10.0.0.1"))
            .with_lame_endpoint(ip("10.0.0.2")),
    );
    let config = ResolverConfig {
        strategy: SelectionStrategy::First,
        validate: false,
        backend: EngineBackend::EventLoop,
        ..Default::default()
    };
    let retransmits = config.retransmits;
    let engine = QueryEngine::new(net, reg, config);
    let queries = vec![Query::new(name("a.com"), RecordType::A)];
    let (results, timing) = engine.resolve_batch_timed(&queries, 1);
    match &results[0] {
        Err(e @ ResolveError::Timeout { attempts, .. }) => {
            assert!(e.is_timeout());
            assert_eq!(*attempts, 2 * (retransmits + 1), "both ladders burned");
        }
        other => panic!("expected a timeout error, got {other:?}"),
    }
    assert_eq!(timing.unwrap().stats.ns_fallbacks, 1);
}

#[test]
fn slow_endpoint_times_out_but_fast_fallback_wins() {
    // ns1 answers — slower than the attempt budget, so its replies are
    // discarded at the deadline exactly like losses. The resolver never
    // sees the late bytes and recovers via ns2.
    let (net, reg) = two_server_world();
    let config = ResolverConfig {
        strategy: SelectionStrategy::First,
        validate: false,
        backend: EngineBackend::EventLoop,
        ..Default::default()
    };
    net.set_latency_model(
        LinkModel::new(3)
            .with_rtt_ms(20)
            .with_slow_endpoint(ip("10.0.0.1"), config.attempt_timeout_ms * 2),
    );
    let retransmits = config.retransmits;
    let engine = QueryEngine::new(net, reg, config);
    let queries = vec![Query::new(name("a.com"), RecordType::A)];
    let (results, timing) = engine.resolve_batch_timed(&queries, 1);
    assert!(results[0].is_ok(), "the fast second NS must win");
    let stats = timing.unwrap().stats;
    // Late replies are timeouts, not drops.
    assert_eq!(stats.drops, 0);
    assert_eq!(stats.timeouts, u64::from(retransmits) + 1);
    assert_eq!(stats.ns_fallbacks, 1);
}
