//! Eviction-policy invariants for the bounded [`RecordCache`]:
//!
//! 1. **Capacity bound** — for any insert sequence, under either
//!    policy, no shard ever holds more than its capacity.
//! 2. **No stale serves** — interleaved inserts, lookups, and clock
//!    advances never observe an answer a shadow TTL model says is dead;
//!    eviction reclaims entries but never resurrects them.
//! 3. **LRU inclusion** — on a fixed replayed trace, the TtlSweepLru
//!    hit count is monotone non-decreasing in capacity (a bigger LRU
//!    cache's contents are a superset of a smaller one's, shard by
//!    shard).
//! 4. **Purge-then-re-resolve** — `purge_expired` reclaims dead entries
//!    end-to-end through a real engine, and the next resolution goes
//!    recursive again and re-learns the same records.

use dns_wire::{DnsName, RData, Record, RecordType};
use ecosystem::{EcosystemConfig, World};
use netsim::Timestamp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resolver::{EvictionPolicy, QueryEngine, RecordCache, ResolverConfig};
use std::collections::HashMap;
use std::net::Ipv4Addr;

const SHARDS: usize = 4;

fn name_of(d: u16) -> DnsName {
    DnsName::parse(&format!("domain-{d}.evict-prop.example")).expect("valid name")
}

fn a_record(d: u16, ttl: u32) -> Record {
    Record::new(name_of(d), ttl, RData::A(Ipv4Addr::new(192, 0, (d >> 8) as u8, d as u8)))
}

fn policy_of(pick: u8) -> EvictionPolicy {
    if pick == 0 {
        EvictionPolicy::TtlSweepLru
    } else {
        EvictionPolicy::S3Fifo
    }
}

/// One scripted operation for the no-stale-serve model checker.
#[derive(Debug, Clone)]
enum Op {
    /// Insert an A RRset for domain `d` with TTL `ttl` seconds.
    Insert { d: u16, ttl: u32 },
    /// Look up domain `d`.
    Get { d: u16 },
    /// Advance the scripted clock.
    Advance { secs: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..64, 1u32..400).prop_map(|(d, ttl)| Op::Insert { d, ttl }),
        (0u16..64).prop_map(|d| Op::Get { d }),
        (1u32..300).prop_map(|secs| Op::Advance { secs }),
    ]
}

proptest! {
    #[test]
    fn bounded_shard_never_exceeds_capacity(
        inserts in proptest::collection::vec((0u16..256, 30u32..600), 1..120),
        cap in 1usize..24,
        policy_pick in 0u8..2,
    ) {
        let cache = RecordCache::with_eviction(SHARDS, None, cap, policy_of(policy_pick));
        let now = Timestamp(0);
        for &(d, ttl) in &inserts {
            cache.insert_positive(&name_of(d), RecordType::A, vec![a_record(d, ttl)], vec![], now);
            // The bound holds after *every* insert, not just at the end.
            for (shard, len) in cache.shard_lens().iter().enumerate() {
                prop_assert!(
                    *len <= cap,
                    "shard {} holds {} entries over capacity {}",
                    shard, len, cap
                );
            }
        }
        prop_assert!(cache.len() <= cap * SHARDS);
        prop_assert_eq!(cache.capacity_per_shard(), Some(cap));
    }

    #[test]
    fn eviction_never_serves_stale_answers(
        ops in proptest::collection::vec(arb_op(), 1..150),
        cap in 1usize..8,
        policy_pick in 0u8..2,
    ) {
        let cache = RecordCache::with_eviction(SHARDS, None, cap, policy_of(policy_pick));
        // Shadow TTL model: the expiry each domain's latest insert
        // promised. The cache may hold any *subset* of the live shadow
        // entries (eviction shrinks it), but must never serve beyond one.
        let mut shadow: HashMap<u16, Timestamp> = HashMap::new();
        let mut now = Timestamp(0);
        for op in &ops {
            match *op {
                Op::Insert { d, ttl } => {
                    cache.insert_positive(
                        &name_of(d), RecordType::A, vec![a_record(d, ttl)], vec![], now,
                    );
                    shadow.insert(d, now.plus(ttl as u64));
                }
                Op::Get { d } => {
                    if cache.get(&name_of(d), RecordType::A, now).is_some() {
                        let expires = shadow.get(&d).copied();
                        prop_assert!(
                            expires.is_some_and(|e| e > now),
                            "served domain {} at t={} but its newest insert expired at {:?}",
                            d, now.0, expires
                        );
                    }
                }
                Op::Advance { secs } => now = now.plus(secs as u64),
            }
        }
        // And the sweep-everything path agrees with the shadow model:
        // after a purge, nothing dead remains resident.
        cache.purge_expired(now);
        for (&d, &expires) in &shadow {
            if expires <= now {
                prop_assert!(cache.get(&name_of(d), RecordType::A, now).is_none());
            }
        }
    }
}

#[test]
fn lru_hit_count_is_monotone_in_capacity_on_a_fixed_trace() {
    // A skewed, seeded reference trace (quadratic bias toward low ids)
    // replayed verbatim against growing capacities. TTLs are long and
    // the clock never advances, so expiry can't interfere: pure LRU
    // inclusion must make the hit count monotone non-decreasing.
    let mut rng = StdRng::seed_from_u64(0xE71C7);
    let trace: Vec<u16> = (0..4_000)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            (u * u * 300.0) as u16
        })
        .collect();
    let mut hit_counts = Vec::new();
    for cap in [2usize, 4, 8, 32, 1_024] {
        let cache = RecordCache::with_eviction(SHARDS, None, cap, EvictionPolicy::TtlSweepLru);
        let now = Timestamp(0);
        let mut hits = 0u64;
        for &d in &trace {
            if cache.get(&name_of(d), RecordType::A, now).is_some() {
                hits += 1;
            } else {
                cache.insert_positive(
                    &name_of(d),
                    RecordType::A,
                    vec![a_record(d, 3_600)],
                    vec![],
                    now,
                );
            }
        }
        hit_counts.push((cap, hits));
    }
    for pair in hit_counts.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "LRU inclusion violated: cap {} hit {} but cap {} hit {}",
            pair[0].0,
            pair[0].1,
            pair[1].0,
            pair[1].1
        );
    }
    let first = hit_counts.first().unwrap().1;
    let last = hit_counts.last().unwrap().1;
    assert!(last > first, "the capacity range must actually matter ({first} vs {last})");
}

#[test]
fn purge_expired_reclaims_and_next_resolution_relearns() {
    let world = World::build(EcosystemConfig::tiny());
    let engine = QueryEngine::new(
        world.network.clone(),
        world.registry.clone(),
        ResolverConfig { validate: false, ..ResolverConfig::default() },
    );
    let apex = world.domain(world.today_list_shared().ranked()[0]).apex.clone();

    let first = engine.resolve(&apex, RecordType::Https).expect("apex resolves");
    assert!(!first.from_cache);
    let warm = engine.resolve(&apex, RecordType::Https).expect("apex resolves");
    assert!(warm.from_cache, "the second lookup must come from cache");

    let cache = engine.cache();
    let len_before = cache.len();
    assert!(len_before > 0);
    assert!(cache.approx_bytes() > 0, "resident entries must account bytes");
    assert_eq!(cache.purge_expired(world.clock.now()), 0, "nothing is dead yet");

    // Far past every TTL the tiny world hands out.
    world.clock.advance(7 * 86_400);
    let purged = cache.purge_expired(world.clock.now());
    assert!(purged >= 1, "a week must expire the warm entries");
    assert!(cache.len() < len_before, "purge must shrink the resident set");

    let relearned = engine.resolve(&apex, RecordType::Https).expect("apex re-resolves");
    assert!(!relearned.from_cache, "purged answers must be fetched recursively again");
    assert_eq!(relearned.records, first.records, "re-resolution must re-learn the same RRset");
    assert!(cache.stats().swept >= purged, "purges are counted in the swept telemetry");
}
