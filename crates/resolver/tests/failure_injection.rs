//! Failure-injection tests: lame delegations, malformed authority
//! responses, total blackouts, and strategy-dependent behaviour.

use authserver::{AuthoritativeServer, DelegationRegistry, NsEndpoint, Zone, ZoneSet};
use dns_wire::{DnsName, RData, Record, RecordType};
use netsim::{DatagramService, NetError, Network, SimClock, Timestamp};
use resolver::{RecursiveResolver, ResolveError, ResolverConfig, SelectionStrategy};
use std::net::IpAddr;
use std::sync::Arc;

fn name(s: &str) -> DnsName {
    DnsName::parse(s).unwrap()
}

fn ip(s: &str) -> IpAddr {
    s.parse().unwrap()
}

/// A server that returns unparseable bytes.
struct GarbageServer;
impl DatagramService for GarbageServer {
    fn handle(&self, _request: &[u8], _now: Timestamp) -> Result<Vec<u8>, NetError> {
        Ok(vec![0xFF; 9])
    }
}

/// A server that serves a zone it is not delegated for (lame: REFUSED).
fn lame_server() -> Arc<AuthoritativeServer> {
    let zones = ZoneSet::new();
    let mut z = Zone::new(name("unrelated.example"));
    z.add(Record::new(name("unrelated.example"), 60, RData::A("9.9.9.9".parse().unwrap())));
    zones.insert(z);
    Arc::new(AuthoritativeServer::new(zones))
}

fn good_server() -> Arc<AuthoritativeServer> {
    let zones = ZoneSet::new();
    let mut z = Zone::new(name("a.com"));
    z.add(Record::new(name("a.com"), 60, RData::A("1.2.3.4".parse().unwrap())));
    zones.insert(z);
    Arc::new(AuthoritativeServer::new(zones))
}

fn world_with(
    first: Arc<dyn DatagramService>,
    second: Option<Arc<dyn DatagramService>>,
) -> (Network, DelegationRegistry) {
    let net = Network::new(SimClock::new());
    let reg = DelegationRegistry::new();
    net.bind_datagram(ip("10.0.0.1"), 53, first);
    let mut eps = vec![NsEndpoint { name: name("ns1.x.net"), ip: ip("10.0.0.1") }];
    if let Some(svc) = second {
        net.bind_datagram(ip("10.0.0.2"), 53, svc);
        eps.push(NsEndpoint { name: name("ns2.x.net"), ip: ip("10.0.0.2") });
    }
    reg.delegate(&name("a.com"), eps);
    (net, reg)
}

fn resolver_first(net: &Network, reg: &DelegationRegistry) -> RecursiveResolver {
    RecursiveResolver::new(
        net.clone(),
        reg.clone(),
        ResolverConfig {
            strategy: SelectionStrategy::First,
            validate: false,
            ..Default::default()
        },
    )
}

#[test]
fn lame_first_server_fails_over() {
    let (net, reg) = world_with(lame_server(), Some(good_server()));
    let r = resolver_first(&net, &reg);
    let res = r.resolve(&name("a.com"), RecordType::A).unwrap();
    assert_eq!(res.records.len(), 1);
}

#[test]
fn all_lame_is_an_error() {
    let (net, reg) = world_with(lame_server(), Some(lame_server()));
    let r = resolver_first(&net, &reg);
    assert!(matches!(r.resolve(&name("a.com"), RecordType::A), Err(ResolveError::Lame(_))));
}

#[test]
fn garbage_response_fails_over_to_good_server() {
    let (net, reg) = world_with(Arc::new(GarbageServer), Some(good_server()));
    let r = resolver_first(&net, &reg);
    let res = r.resolve(&name("a.com"), RecordType::A).unwrap();
    assert_eq!(res.records.len(), 1);
}

#[test]
fn all_garbage_is_malformed_error() {
    let (net, reg) = world_with(Arc::new(GarbageServer), Some(Arc::new(GarbageServer)));
    let r = resolver_first(&net, &reg);
    assert!(matches!(r.resolve(&name("a.com"), RecordType::A), Err(ResolveError::Malformed)));
}

#[test]
fn total_blackout_is_network_error() {
    let (net, reg) = world_with(good_server(), None);
    net.set_unreachable(ip("10.0.0.1"));
    let r = resolver_first(&net, &reg);
    assert!(matches!(
        r.resolve(&name("a.com"), RecordType::A),
        Err(ResolveError::Network(NetError::Unreachable(_)))
    ));
    // Reachability restored: resolution works again (nothing was
    // negatively cached from a network error).
    net.set_reachable(ip("10.0.0.1"));
    assert!(r.resolve(&name("a.com"), RecordType::A).is_ok());
}

#[test]
fn blackout_after_cache_population_serves_from_cache() {
    let (net, reg) = world_with(good_server(), None);
    let r = resolver_first(&net, &reg);
    let _ = r.resolve(&name("a.com"), RecordType::A).unwrap();
    net.set_unreachable(ip("10.0.0.1"));
    // Warm cache masks the outage until the TTL expires.
    let res = r.resolve(&name("a.com"), RecordType::A).unwrap();
    assert!(res.from_cache);
    net.clock().advance(61);
    assert!(r.resolve(&name("a.com"), RecordType::A).is_err());
}

#[test]
fn strategies_produce_different_failure_exposure() {
    // First endpoint dead, second fine: `First` pays a failover on every
    // cold resolve; round-robin alternates.
    let (net, reg) = world_with(good_server(), Some(good_server()));
    net.set_unreachable(ip("10.0.0.1"));
    for strategy in
        [SelectionStrategy::First, SelectionStrategy::RoundRobin, SelectionStrategy::Random]
    {
        let r = RecursiveResolver::new(
            net.clone(),
            reg.clone(),
            ResolverConfig { strategy, validate: false, seed: 3, ..Default::default() },
        );
        let res = r.resolve(&name("a.com"), RecordType::A).unwrap();
        assert_eq!(res.records.len(), 1, "{strategy:?} must succeed via failover");
    }
}
