//! End-to-end resolver tests against a three-level signed hierarchy
//! (root → com → a.com) on the simulated network.

use authserver::{AuthoritativeServer, DelegationRegistry, NsEndpoint, Zone, ZoneSet};
use dns_wire::{DnsName, RData, Rcode, Record, RecordType, SvcParam, SvcbRdata};
use dnssec::{ValidationState, ZoneKeys};
use netsim::{Network, SimClock};
use resolver::{RecursiveResolver, ResolveError, ResolverConfig, SelectionStrategy};
use std::net::IpAddr;
use std::sync::Arc;

fn name(s: &str) -> DnsName {
    DnsName::parse(s).unwrap()
}

fn ip(s: &str) -> IpAddr {
    s.parse().unwrap()
}

/// Build a world: root + com + a.com zones, a.com signed with DS
/// linked per `link_ds`. Returns (network, registry, zoneset of a.com).
fn world(link_ds: bool) -> (Network, DelegationRegistry, ZoneSet) {
    let clock = SimClock::new();
    clock.advance(1000);
    let net = Network::new(clock);
    let registry = DelegationRegistry::new();

    let root_keys = ZoneKeys::derive(&DnsName::root(), 0);
    let com_keys = ZoneKeys::derive(&name("com"), 0);
    let a_keys = ZoneKeys::derive(&name("a.com"), 0);

    // Root zone (trust anchor) serving DS for com.
    let root_set = ZoneSet::new();
    let mut root_zone = Zone::new(DnsName::root());
    root_zone.enable_signing(root_keys, 0, u32::MAX - 1);
    root_zone.add(com_keys.ds_record(300));
    root_set.insert(root_zone);
    net.bind_datagram(ip("198.41.0.4"), 53, Arc::new(AuthoritativeServer::new(root_set)));
    registry.delegate(
        &DnsName::root(),
        vec![NsEndpoint { name: name("a.root-servers.net"), ip: ip("198.41.0.4") }],
    );

    // com zone serving DS for a.com (when linked).
    let com_set = ZoneSet::new();
    let mut com_zone = Zone::new(name("com"));
    com_zone.enable_signing(com_keys, 0, u32::MAX - 1);
    if link_ds {
        com_zone.add(a_keys.ds_record(300));
    }
    com_set.insert(com_zone);
    net.bind_datagram(ip("192.5.6.30"), 53, Arc::new(AuthoritativeServer::new(com_set)));
    registry.delegate(
        &name("com"),
        vec![NsEndpoint { name: name("a.gtld-servers.net"), ip: ip("192.5.6.30") }],
    );

    // a.com zone, signed.
    let a_set = ZoneSet::new();
    let mut a_zone = Zone::new(name("a.com"));
    a_zone.enable_signing(a_keys, 0, u32::MAX - 1);
    a_zone.add(Record::new(name("a.com"), 300, RData::A("1.2.3.4".parse().unwrap())));
    a_zone.add(Record::new(
        name("a.com"),
        300,
        RData::Https(SvcbRdata::service_self(vec![SvcParam::Alpn(vec![b"h2".to_vec()])])),
    ));
    a_zone.add(Record::new(name("www.a.com"), 300, RData::Cname(name("a.com"))));
    a_set.insert(a_zone);
    net.bind_datagram(ip("173.245.58.1"), 53, Arc::new(AuthoritativeServer::new(a_set.clone())));
    registry.delegate(
        &name("a.com"),
        vec![NsEndpoint { name: name("ns1.cloudflare.com"), ip: ip("173.245.58.1") }],
    );

    (net, registry, a_set)
}

fn resolver_of(net: &Network, reg: &DelegationRegistry) -> RecursiveResolver {
    RecursiveResolver::new(net.clone(), reg.clone(), ResolverConfig::default())
}

#[test]
fn resolves_https_with_secure_validation() {
    let (net, reg, _) = world(true);
    let r = resolver_of(&net, &reg);
    let res = r.resolve(&name("a.com"), RecordType::Https).unwrap();
    assert_eq!(res.rcode, Rcode::NoError);
    assert_eq!(res.records.len(), 1);
    assert_eq!(res.rrsigs.len(), 1);
    assert_eq!(res.validation, Some(ValidationState::Secure));
    assert!(res.ad());
    assert!(!res.from_cache);
}

#[test]
fn missing_ds_gives_insecure_no_ad() {
    let (net, reg, _) = world(false);
    let r = resolver_of(&net, &reg);
    let res = r.resolve(&name("a.com"), RecordType::Https).unwrap();
    assert_eq!(res.validation, Some(ValidationState::Insecure));
    assert!(!res.ad());
    assert_eq!(res.rrsigs.len(), 1); // signed but not validatable
}

#[test]
fn second_resolve_hits_cache() {
    let (net, reg, _) = world(true);
    let r = resolver_of(&net, &reg);
    let _ = r.resolve(&name("a.com"), RecordType::Https).unwrap();
    let sent_before = net.stats().datagrams_sent;
    let res = r.resolve(&name("a.com"), RecordType::Https).unwrap();
    assert!(res.from_cache);
    // Validation uses cached DNSKEY/DS too: no new traffic at all.
    assert_eq!(net.stats().datagrams_sent, sent_before);
}

#[test]
fn cache_expires_with_virtual_time() {
    let (net, reg, a_set) = world(true);
    let r = resolver_of(&net, &reg);
    let _ = r.resolve(&name("a.com"), RecordType::Https).unwrap();
    // Mutate the zone while the cache is warm.
    a_set.with_zone(&name("a.com"), |z| {
        z.set(
            name("a.com"),
            RecordType::Https,
            vec![Record::new(
                name("a.com"),
                300,
                RData::Https(SvcbRdata::service_self(vec![SvcParam::Alpn(vec![b"h3".to_vec()])])),
            )],
        );
    });
    // Warm cache still serves the old record.
    let res = r.resolve(&name("a.com"), RecordType::Https).unwrap();
    assert!(res.from_cache);
    match &res.records[0].rdata {
        RData::Https(rd) => assert_eq!(rd.alpn().unwrap(), vec!["h2"]),
        other => panic!("{other:?}"),
    }
    // After TTL expiry the new record is fetched.
    net.clock().advance(301);
    let res = r.resolve(&name("a.com"), RecordType::Https).unwrap();
    assert!(!res.from_cache);
    match &res.records[0].rdata {
        RData::Https(rd) => assert_eq!(rd.alpn().unwrap(), vec!["h3"]),
        other => panic!("{other:?}"),
    }
}

#[test]
fn chases_cname_for_https() {
    let (net, reg, _) = world(true);
    let r = resolver_of(&net, &reg);
    let res = r.resolve(&name("www.a.com"), RecordType::Https).unwrap();
    assert_eq!(res.chain.len(), 1);
    assert_eq!(res.records.len(), 1);
    assert_eq!(res.records[0].name, name("a.com"));
}

#[test]
fn nxdomain_and_negative_cache() {
    let (net, reg, _) = world(true);
    let r = resolver_of(&net, &reg);
    let res = r.resolve(&name("missing.a.com"), RecordType::A).unwrap();
    assert_eq!(res.rcode, Rcode::NxDomain);
    let sent = net.stats().datagrams_sent;
    let res2 = r.resolve(&name("missing.a.com"), RecordType::A).unwrap();
    assert_eq!(res2.rcode, Rcode::NxDomain);
    assert!(res2.from_cache);
    assert_eq!(net.stats().datagrams_sent, sent);
}

#[test]
fn nodata_is_noerror_empty() {
    let (net, reg, _) = world(true);
    let r = resolver_of(&net, &reg);
    let res = r.resolve(&name("a.com"), RecordType::Aaaa).unwrap();
    assert_eq!(res.rcode, Rcode::NoError);
    assert!(res.records.is_empty());
}

#[test]
fn failover_to_second_ns() {
    let (net, reg, _) = world(true);
    // Put a dead endpoint first in the list.
    reg.delegate(
        &name("a.com"),
        vec![
            NsEndpoint { name: name("ns-dead.x.net"), ip: ip("10.99.99.99") },
            NsEndpoint { name: name("ns1.cloudflare.com"), ip: ip("173.245.58.1") },
        ],
    );
    let r = RecursiveResolver::new(
        net.clone(),
        reg.clone(),
        ResolverConfig { strategy: SelectionStrategy::First, ..Default::default() },
    );
    let res = r.resolve(&name("a.com"), RecordType::Https).unwrap();
    assert_eq!(res.records.len(), 1);
}

#[test]
fn no_authority_error() {
    let clock = SimClock::new();
    let net = Network::new(clock);
    let reg = DelegationRegistry::new();
    let r = resolver_of(&net, &reg);
    assert!(matches!(r.resolve(&name("x.test"), RecordType::A), Err(ResolveError::NoAuthority(_))));
}

#[test]
fn resolver_as_datagram_service_sets_ad() {
    let (net, reg, _) = world(true);
    let r = Arc::new(resolver_of(&net, &reg));
    net.bind_datagram(ip("8.8.8.8"), 53, r);
    let q = dns_wire::Message::query_dnssec(77, name("a.com"), RecordType::Https);
    let resp_bytes = net.send_datagram(ip("8.8.8.8"), 53, &q.encode()).unwrap();
    let resp = dns_wire::Message::decode(&resp_bytes).unwrap();
    assert_eq!(resp.id, 77);
    assert!(resp.flags.ad);
    assert_eq!(resp.answers_of(RecordType::Https).len(), 1);
    assert_eq!(resp.answers_of(RecordType::Rrsig).len(), 1);
}

#[test]
fn unsigned_zone_resolves_without_ad() {
    let (net, reg, a_set) = world(true);
    a_set.with_zone(&name("a.com"), |z| z.disable_signing());
    let r = resolver_of(&net, &reg);
    let res = r.resolve(&name("a.com"), RecordType::Https).unwrap();
    assert_eq!(res.validation, Some(ValidationState::Unsigned));
    assert!(!res.ad());
    assert!(res.rrsigs.is_empty());
}

#[test]
fn mixed_provider_ns_set_yields_intermittent_https() {
    // §4.2.3: a domain delegates to two providers; only one serves the
    // HTTPS record. Whether a resolver sees it depends on NS selection.
    let (net, reg, _) = world(true);

    // Second provider: same A record, no HTTPS record.
    let other_set = ZoneSet::new();
    let mut other_zone = Zone::new(name("a.com"));
    other_zone.add(Record::new(name("a.com"), 300, RData::A("1.2.3.4".parse().unwrap())));
    other_set.insert(other_zone);
    net.bind_datagram(ip("10.7.7.7"), 53, Arc::new(AuthoritativeServer::new(other_set)));
    reg.delegate(
        &name("a.com"),
        vec![
            NsEndpoint { name: name("ns1.cloudflare.com"), ip: ip("173.245.58.1") },
            NsEndpoint { name: name("ns1.other.net"), ip: ip("10.7.7.7") },
        ],
    );

    let r = RecursiveResolver::new(
        net.clone(),
        reg.clone(),
        ResolverConfig {
            strategy: SelectionStrategy::RoundRobin,
            validate: false,
            ..Default::default()
        },
    );
    let mut seen = Vec::new();
    for _ in 0..4 {
        let res = r.resolve(&name("a.com"), RecordType::Https).unwrap();
        seen.push(res.is_positive());
        net.clock().advance(301); // expire cache between observations
    }
    // Round-robin alternates between the providers: both outcomes occur.
    assert!(seen.contains(&true), "HTTPS record never observed: {seen:?}");
    assert!(seen.contains(&false), "HTTPS record always observed: {seen:?}");
}
