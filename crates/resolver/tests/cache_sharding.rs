//! Property test pinning the sharded cache's behavioural invariance:
//! for any scripted sequence of inserts, lookups, clock advances, and
//! flushes, a 1-shard cache and a 16-shard cache return the same
//! answers and aggregate the same statistics.

use dns_wire::{DnsName, RData, Rcode, Record, RecordType};
use netsim::Timestamp;
use proptest::prelude::*;
use resolver::RecordCache;
use std::net::Ipv4Addr;

/// One scripted cache operation over a small universe of owner names.
#[derive(Debug, Clone)]
enum Op {
    /// Insert an A RRset for domain `d` with TTL `ttl`.
    InsertPositive { d: u8, ttl: u32 },
    /// Insert an NXDOMAIN entry for domain `d` with TTL `ttl`.
    InsertNegative { d: u8, ttl: u32 },
    /// Look up domain `d` (both record types).
    Get { d: u8 },
    /// Advance the scripted clock.
    Advance { secs: u32 },
    /// Flush everything.
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, 0u32..600).prop_map(|(d, ttl)| Op::InsertPositive { d, ttl }),
        (0u8..12, 0u32..600).prop_map(|(d, ttl)| Op::InsertNegative { d, ttl }),
        (0u8..12).prop_map(|d| Op::Get { d }),
        (1u32..400).prop_map(|secs| Op::Advance { secs }),
        Just(Op::Flush),
    ]
}

fn name_of(d: u8) -> DnsName {
    DnsName::parse(&format!("domain-{d}.shard-prop.example")).expect("valid name")
}

fn a_record(d: u8, ttl: u32) -> Record {
    Record::new(name_of(d), ttl, RData::A(Ipv4Addr::new(192, 0, 2, d)))
}

proptest! {
    #[test]
    fn shard_count_does_not_change_behaviour(ops in proptest::collection::vec(arb_op(), 1..100)) {
        let one = RecordCache::with_shards(1);
        let sixteen = RecordCache::with_shards(16);
        let mut now = Timestamp(0);
        for op in &ops {
            match *op {
                Op::InsertPositive { d, ttl } => {
                    let n = name_of(d);
                    one.insert_positive(&n, RecordType::A, vec![a_record(d, ttl)], vec![], now);
                    sixteen.insert_positive(&n, RecordType::A, vec![a_record(d, ttl)], vec![], now);
                }
                Op::InsertNegative { d, ttl } => {
                    let n = name_of(d);
                    one.insert_negative(&n, RecordType::Https, Rcode::NxDomain, ttl, now);
                    sixteen.insert_negative(&n, RecordType::Https, Rcode::NxDomain, ttl, now);
                }
                Op::Get { d } => {
                    let n = name_of(d);
                    prop_assert_eq!(
                        one.get(&n, RecordType::A, now),
                        sixteen.get(&n, RecordType::A, now)
                    );
                    prop_assert_eq!(
                        one.get(&n, RecordType::Https, now),
                        sixteen.get(&n, RecordType::Https, now)
                    );
                    prop_assert_eq!(
                        one.age(&n, RecordType::A, now),
                        sixteen.age(&n, RecordType::A, now)
                    );
                }
                Op::Advance { secs } => now = now.plus(secs as u64),
                Op::Flush => {
                    one.flush();
                    sixteen.flush();
                }
            }
            // Aggregate views agree after every step, not just at the end.
            prop_assert_eq!(one.len(), sixteen.len());
        }
        prop_assert_eq!(one.stats(), sixteen.stats());
        prop_assert_eq!(one.is_empty(), sixteen.is_empty());
    }
}
