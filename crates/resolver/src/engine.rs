//! The shared query engine: one resolution front-end for every consumer.
//!
//! The scanner, the browser testbed, and the benches all used to
//! hand-roll their own query loops against a [`RecursiveResolver`]. The
//! [`QueryEngine`] replaces those loops with one object that owns the
//! resolver (and through it the sharded [`RecordCache`]) and exposes two
//! paths:
//!
//! - [`QueryEngine::resolve`] — the existing single-query path,
//!   unchanged semantics;
//! - [`QueryEngine::resolve_batch`] — resolve many queries with a
//!   deterministic worker fan-out over the simulated network.
//!
//! ## The persistent worker pool
//!
//! Multi-threaded batches run on a [`WorkerPool`](crate::pool): `threads`
//! long-lived workers (with per-worker FIFO queues) that the engine
//! starts lazily on the first batch that needs them and then reuses for
//! every subsequent wave, day, and vantage. The previous implementation
//! spawned and joined scoped OS threads per batch, which cost 25–35% of
//! batch latency on a single-CPU host; a campaign pays the thread-spawn
//! tax at most once per engine now. Two supporting structures keep the
//! hot path allocation-light:
//!
//! - deduplication and partitioning borrow the input queries (no
//!   per-query key `String`s); the zone-affinity walk renders each name
//!   into one reused buffer and matches delegated apexes as borrowed
//!   suffix slices of it;
//! - because pool workers outlive the batch (the workspace forbids the
//!   `unsafe` lifetime juggling scoped threads rely on), jobs must own
//!   their queries; a cross-batch intern table hands out `Arc<Query>`
//!   clones so each distinct query is deep-copied at most once per
//!   engine, not once per batch.
//!
//! A panicking job is caught inside its worker's loop: the submitting
//! batch observes the dropped result channel and propagates the panic,
//! while the worker itself survives to serve the next batch — one
//! poisoned query cannot wedge a campaign.
//!
//! ## Batch semantics and the determinism contract
//!
//! `resolve_batch(queries, threads)` returns one result per input query,
//! **in input order**, and is deterministic in the following sense:
//!
//! 1. **Deduplication.** Queries are deduplicated on `(owner name,
//!    record type)` before the fan-out; each distinct query is resolved
//!    exactly once per batch and duplicate positions receive a clone of
//!    that single resolution. Whether a duplicate "would have" hit the
//!    cache therefore does not depend on scheduling.
//! 2. **Zone-affinity assignment.** Distinct queries are assigned to
//!    pool workers by a stable hash of their authoritative zone apex
//!    (from the delegation registry), and each worker's FIFO queue
//!    resolves its queries in input order. There is no work stealing.
//!    All queries against one zone therefore resolve on one worker, in
//!    input order, and both
//!    stateful selection strategies keep their state **per zone**:
//!    [`SelectionStrategy::RoundRobin`](crate::SelectionStrategy) uses
//!    per-zone rotation counters, and
//!    [`SelectionStrategy::Random`](crate::SelectionStrategy) draws
//!    from a per-zone RNG seeded from `(seed, zone key)`. Each zone
//!    consumes its selection state in the same sequence for **every
//!    thread count**; this is what keeps the paper's §4.2.3
//!    mixed-provider flapping reproducible under a parallel scanner,
//!    including randomized-selection vantage points.
//! 3. **Time is frozen.** The simulated clock does not advance during a
//!    batch, so every query sees the same `now` and cache-expiry
//!    decisions are interleaving-independent. Cache entries written by
//!    concurrent workers for the same RRset are byte-identical, so
//!    last-writer-wins races cannot change any answer.
//!
//! Under those rules a batch's results match a sequential resolution of
//! the same distinct queries, independent of thread count. The residual
//! caveat: a query whose resolution *crosses* zones (a CNAME chase, or
//! the DS/DNSKEY walk into an ancestor zone) can consume another
//! worker's zone selection state concurrently; this only matters when
//! that other zone's endpoints serve divergent data for the same name,
//! which does not occur in the modelled ecosystem (divergence is
//! confined to apex zones with mixed NS sets, and every query for an
//! apex zone shares a worker — shared ancestor zones serve identical
//! data from every endpoint, so pick order cannot change an answer).
//!
//! ## Telemetry
//!
//! An engine can carry a [`telemetry::MetricsRegistry`]
//! ([`QueryEngine::with_metrics`]); resolution behaviour is identical
//! with or without one — instrumentation observes batch *outcomes*,
//! never steers them. Per the telemetry crate's determinism split:
//!
//! - **Counters** (`engine.queries`, `engine.distinct`,
//!   `engine.coalesced`, `engine.from_cache`, `engine.answers_*`,
//!   `engine.failures`, …) are derived from results, which the batch
//!   contract makes thread-count-invariant — so counter snapshots are
//!   byte-identical across thread counts (pinned in the determinism
//!   suite).
//! - **Histograms** (`engine.batch_us`, `engine.query_us`,
//!   `engine.queue_depth`, `engine.authority_datagrams`) are
//!   wall-clock/scheduling observations for perf work only.

use crate::cache::{fnv1a, RecordCache};
use crate::eventloop::{self, EventLoopStats};
use crate::pool::WorkerPool;
use crate::resolver::{RecursiveResolver, Resolution, ResolveError, ResolverConfig};
use authserver::DelegationRegistry;
use dns_wire::{DnsName, RecordType};
use netsim::Network;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::{mpsc, Arc};
use std::time::Instant;
use telemetry::MetricsRegistry;

/// One query in a batch: an owner name and a record type.
///
/// Equality and hashing fold ASCII case in the owner name (via
/// [`DnsName`]'s RFC 1035 semantics), so batch deduplication coalesces
/// `A.Example`/`a.example` without rendering key strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// Owner name to resolve.
    pub name: DnsName,
    /// Record type to resolve.
    pub rtype: RecordType,
}

impl Query {
    /// Construct a query.
    pub fn new(name: DnsName, rtype: RecordType) -> Query {
        Query { name, rtype }
    }
}

/// Which machinery `resolve_batch` uses for the distinct queries. Both
/// backends honour the same determinism contract and return identical
/// results on the zero-latency network model (pinned by the
/// `event_backend` suite); they differ in what they can express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineBackend {
    /// The persistent [`WorkerPool`]: `threads` OS workers with
    /// zone-affinity FIFO queues. Real parallelism, but each query is a
    /// synchronous call — the network must be zero-latency.
    #[default]
    Pooled,
    /// The virtual-time event loop ([`crate::eventloop`]): one worker
    /// drives every query as a state machine over the timer queue, so
    /// latency/loss models, timeouts, retransmits, and NS fallback all
    /// work — and `threads` is ignored (determinism by construction).
    EventLoop,
}

/// Virtual-time accounting for one event-loop batch (`None` from the
/// pooled backend, which does not run in virtual time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchTiming {
    /// Virtual ms when the batch started.
    pub started_ms: u64,
    /// Virtual ms when the last query completed.
    pub finished_ms: u64,
    /// Peak number of concurrently in-flight queries.
    pub max_in_flight: usize,
    /// Aggregated timeout/retransmit/drop/fallback counters.
    pub stats: EventLoopStats,
    /// Per input query: virtual `(start, completion)` instants in ms
    /// (duplicates share their distinct query's span).
    pub per_query_ms: Vec<(u64, u64)>,
}

/// Instrument handles for the single-query path, resolved from the
/// registry once at attach time so each `resolve()` records through
/// held `Arc`s instead of re-locking the registry's name maps.
struct SingleQueryMetrics {
    latency: Arc<telemetry::Histogram>,
    queries: Arc<telemetry::Counter>,
    from_cache: Arc<telemetry::Counter>,
    failures: Arc<telemetry::Counter>,
}

/// The shared, batch-capable resolution engine.
pub struct QueryEngine {
    resolver: Arc<RecursiveResolver>,
    backend: EngineBackend,
    metrics: Option<Arc<MetricsRegistry>>,
    single: Option<SingleQueryMetrics>,
    /// The persistent batch workers (module docs): empty until the first
    /// multi-threaded batch, then reused for the engine's lifetime. The
    /// lock is held only while growing the pool and enqueuing jobs —
    /// result collection happens outside it.
    pool: Mutex<WorkerPool>,
    /// Cross-batch `Arc<Query>` intern table: pool jobs must own their
    /// queries, and a campaign re-resolves the same names every day, so
    /// each distinct query is deep-copied once per engine rather than
    /// once per batch. Bounded by the distinct queries the engine ever
    /// sees (the scanner's shape: a few per listed domain).
    interned: Mutex<HashSet<Arc<Query>>>,
}

impl QueryEngine {
    /// Build an engine with its own resolver on `network`/`registry`.
    pub fn new(
        network: Network,
        registry: DelegationRegistry,
        config: ResolverConfig,
    ) -> QueryEngine {
        QueryEngine::from_resolver(Arc::new(RecursiveResolver::new(network, registry, config)))
    }

    /// Wrap an existing shared resolver (e.g. one also bound to the
    /// network as a public-resolver datagram service).
    pub fn from_resolver(resolver: Arc<RecursiveResolver>) -> QueryEngine {
        let backend = resolver.config().backend;
        QueryEngine {
            resolver,
            backend,
            metrics: None,
            single: None,
            pool: Mutex::new(WorkerPool::new()),
            interned: Mutex::new(HashSet::new()),
        }
    }

    /// Select the batch backend (builder style), overriding whatever the
    /// resolver config chose.
    pub fn with_backend(mut self, backend: EngineBackend) -> QueryEngine {
        self.backend = backend;
        self
    }

    /// The batch backend this engine dispatches to.
    pub fn backend(&self) -> EngineBackend {
        self.backend
    }

    /// Number of live pool workers (0 until the first multi-threaded
    /// batch; grows to the largest thread count any batch has used).
    pub fn pool_size(&self) -> usize {
        self.pool.lock().size()
    }

    /// Attach a metrics registry (builder style). Resolution results are
    /// bit-identical with or without one; see the module docs.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> QueryEngine {
        self.single = Some(SingleQueryMetrics {
            latency: metrics.histogram("engine.single_us"),
            queries: metrics.counter("engine.single_queries"),
            from_cache: metrics.counter("engine.single_from_cache"),
            failures: metrics.counter("engine.single_failures"),
        });
        self.metrics = Some(metrics);
        self
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// The underlying resolver.
    pub fn resolver(&self) -> &Arc<RecursiveResolver> {
        &self.resolver
    }

    /// The resolver's sharded cache.
    pub fn cache(&self) -> &RecordCache {
        self.resolver.cache()
    }

    /// The simulated network handle.
    pub fn network(&self) -> &Network {
        self.resolver.network()
    }

    /// Resolve one query at the current simulated time.
    pub fn resolve(&self, name: &DnsName, rtype: RecordType) -> Result<Resolution, ResolveError> {
        let Some(single) = &self.single else {
            return self.resolver.resolve(name, rtype);
        };
        let start = Instant::now();
        let result = self.resolver.resolve(name, rtype);
        single.latency.record_duration(start.elapsed());
        single.queries.inc();
        match &result {
            Ok(res) if res.from_cache => single.from_cache.inc(),
            Ok(_) => {}
            Err(_) => single.failures.inc(),
        }
        result
    }

    /// Resolve a batch of queries with `threads` workers, returning one
    /// result per query in input order. See the module docs for the
    /// determinism contract. On the [`EngineBackend::EventLoop`] backend
    /// `threads` is ignored (one worker drives everything in virtual
    /// time and is thread-count invariant by construction).
    pub fn resolve_batch(
        &self,
        queries: &[Query],
        threads: usize,
    ) -> Vec<Result<Resolution, ResolveError>> {
        self.resolve_batch_timed(queries, threads).0
    }

    /// [`resolve_batch`](Self::resolve_batch), additionally returning
    /// the batch's virtual-time accounting when the event-loop backend
    /// ran it (`None` from the pooled backend).
    pub fn resolve_batch_timed(
        &self,
        queries: &[Query],
        threads: usize,
    ) -> (Vec<Result<Resolution, ResolveError>>, Option<BatchTiming>) {
        // An empty batch does no work: no assignment maps, no thread
        // scaffolding, no metrics traffic.
        if queries.is_empty() {
            return (Vec::new(), None);
        }
        let batch_start = self.metrics.as_ref().map(|_| Instant::now());
        let datagrams_before = self.metrics.as_ref().map(|_| self.network().stats().datagrams_sent);
        let query_us = self.metrics.as_ref().map(|m| m.histogram("engine.query_us"));

        // Deduplicate, preserving first-occurrence order. The map
        // borrows the input queries — `Query`'s case-folding `Hash`/`Eq`
        // replaces the `(String, u16)` key this used to allocate per
        // input.
        let mut index_of: HashMap<&Query, usize> = HashMap::with_capacity(queries.len());
        let mut distinct: Vec<&Query> = Vec::new();
        let mut positions: Vec<usize> = Vec::with_capacity(queries.len());
        for q in queries {
            let next = distinct.len();
            let idx = *index_of.entry(q).or_insert_with(|| {
                distinct.push(q);
                next
            });
            positions.push(idx);
        }

        let threads = threads.clamp(1, distinct.len());
        let mut resolved: Vec<Option<Result<Resolution, ResolveError>>> =
            vec![None; distinct.len()];
        let mut timing: Option<BatchTiming> = None;

        if self.backend == EngineBackend::EventLoop {
            // Per-zone serialization groups: the same partition key the
            // pooled path buckets on (authoritative apex of each name),
            // interned to dense ids in first-appearance order.
            let registry = self.resolver.registry();
            let mut zone_ids: HashMap<String, usize> = HashMap::new();
            let mut zone_index = Vec::with_capacity(distinct.len());
            let mut key_buf = String::new();
            for q in &distinct {
                key_buf.clear();
                q.name.write_key(&mut key_buf);
                let apex = registry.authority_apex_of_key(&key_buf).unwrap_or(key_buf.as_str());
                let next = zone_ids.len();
                let id = match zone_ids.get(apex) {
                    Some(&id) => id,
                    None => {
                        zone_ids.insert(apex.to_string(), next);
                        next
                    }
                };
                zone_index.push(id);
            }
            let zone_count = zone_ids.len();
            let outcome = eventloop::drive(&self.resolver, &distinct, &zone_index, zone_count);
            if let Some(m) = &self.metrics {
                // All four counters and the virtual-time latency
                // histogram are outcome-derived (seeded virtual time),
                // so they live on the byte-identical side of the
                // determinism split alongside the batch counters.
                m.counter("engine.timeouts").add(outcome.stats.timeouts);
                m.counter("engine.retransmits").add(outcome.stats.retransmits);
                m.counter("engine.drops").add(outcome.stats.drops);
                m.counter("engine.ns_fallbacks").add(outcome.stats.ns_fallbacks);
                let vt = m.det_histogram("engine.vt_query_ms");
                for &(start, end) in &outcome.spans {
                    vt.record(end - start);
                }
                m.histogram("engine.queue_depth").record(distinct.len() as u64);
            }
            timing = Some(BatchTiming {
                started_ms: outcome.started_ms,
                finished_ms: outcome.finished_ms,
                max_in_flight: outcome.max_in_flight,
                stats: outcome.stats,
                per_query_ms: positions.iter().map(|&i| outcome.spans[i]).collect(),
            });
            for (slot, result) in outcome.results.into_iter().enumerate() {
                resolved[slot] = Some(result);
            }
        } else if threads == 1 {
            if let Some(m) = &self.metrics {
                m.histogram("engine.queue_depth").record(distinct.len() as u64);
            }
            for (slot, q) in resolved.iter_mut().zip(&distinct) {
                *slot = Some(timed_resolve(&self.resolver, q, query_us.as_deref()));
            }
        } else {
            // Zone-affinity partition: every query for one zone lands on
            // one worker (see the module docs). Each name is rendered
            // into one reused buffer and its delegated apex matched as a
            // borrowed suffix slice — no per-query key `String`. The
            // intern table hands each work item an `Arc<Query>` so pool
            // jobs own their queries without a per-batch deep copy.
            let mut buckets: Vec<Vec<(usize, Arc<Query>)>> = vec![Vec::new(); threads];
            {
                let mut interned = self.interned.lock();
                let registry = self.resolver.registry();
                let mut key_buf = String::new();
                for (i, q) in distinct.iter().enumerate() {
                    key_buf.clear();
                    q.name.write_key(&mut key_buf);
                    let apex = registry.authority_apex_of_key(&key_buf).unwrap_or(key_buf.as_str());
                    let bucket = (fnv1a(apex) % threads as u64) as usize;
                    let query = match interned.get(*q) {
                        Some(a) => Arc::clone(a),
                        None => {
                            let a = Arc::new((*q).clone());
                            interned.insert(Arc::clone(&a));
                            a
                        }
                    };
                    buckets[bucket].push((i, query));
                }
            }
            if let Some(m) = &self.metrics {
                let depth = m.histogram("engine.queue_depth");
                for bucket in buckets.iter().filter(|bucket| !bucket.is_empty()) {
                    depth.record(bucket.len() as u64);
                }
            }
            // Submit one job per non-empty bucket to its worker's FIFO
            // queue (empty hash-mod buckets get no job at all), then
            // collect chunks outside the pool lock. A worker that dies
            // mid-batch drops its result sender, which surfaces here as
            // a disconnect before every chunk arrived.
            let (results_tx, results_rx) =
                mpsc::channel::<Vec<(usize, Result<Resolution, ResolveError>)>>();
            let mut jobs = 0usize;
            {
                let mut pool = self.pool.lock();
                pool.ensure(threads);
                for (worker, bucket) in buckets.into_iter().enumerate() {
                    if bucket.is_empty() {
                        continue;
                    }
                    jobs += 1;
                    let resolver = Arc::clone(&self.resolver);
                    let query_us = query_us.clone();
                    let results = results_tx.clone();
                    pool.submit(
                        worker,
                        Box::new(move || {
                            let mut chunk = Vec::with_capacity(bucket.len());
                            for (slot, q) in &bucket {
                                chunk.push((
                                    *slot,
                                    timed_resolve(&resolver, q, query_us.as_deref()),
                                ));
                            }
                            let _ = results.send(chunk);
                        }),
                    );
                }
            }
            drop(results_tx);
            for _ in 0..jobs {
                let chunk = results_rx.recv().unwrap_or_else(|_| panic!("batch worker panicked"));
                for (i, result) in chunk {
                    resolved[i] = Some(result);
                }
            }
        }

        if let Some(metrics) = &self.metrics {
            self.record_batch_outcomes(metrics, queries.len(), &resolved);
            if let Some(start) = batch_start {
                metrics.histogram("engine.batch_us").record_duration(start.elapsed());
            }
            if let Some(before) = datagrams_before {
                // Approximate under concurrently batching engines on one
                // shared network; exact for the (sequential) campaigns.
                let sent = self.network().stats().datagrams_sent.saturating_sub(before);
                metrics.histogram("engine.authority_datagrams").record(sent);
            }
        }

        // Hand each resolution to its consumers, cloning only for true
        // duplicates: the common all-distinct batch moves every result.
        let mut remaining = vec![0usize; resolved.len()];
        for &idx in &positions {
            remaining[idx] += 1;
        }
        let results = positions
            .into_iter()
            .map(|idx| {
                remaining[idx] -= 1;
                let slot = &mut resolved[idx];
                if remaining[idx] == 0 { slot.take() } else { slot.clone() }
                    .expect("every distinct query resolved")
            })
            .collect();
        (results, timing)
    }

    /// Record the deterministic counter class for one finished batch.
    /// Everything here is derived from the batch's *outcomes* — input
    /// size, dedup shape, and per-distinct-query results — all of which
    /// the determinism contract makes thread-count-invariant, so the
    /// registry's counter snapshot is too (pinned by the determinism
    /// suite).
    fn record_batch_outcomes(
        &self,
        metrics: &MetricsRegistry,
        inputs: usize,
        resolved: &[Option<Result<Resolution, ResolveError>>],
    ) {
        metrics.counter("engine.batches").inc();
        metrics.counter("engine.queries").add(inputs as u64);
        metrics.counter("engine.distinct").add(resolved.len() as u64);
        metrics.counter("engine.coalesced").add((inputs - resolved.len()) as u64);
        let (mut from_cache, mut positive, mut negative, mut failures) = (0u64, 0u64, 0u64, 0u64);
        for result in resolved.iter().flatten() {
            match result {
                Ok(res) => {
                    if res.from_cache {
                        from_cache += 1;
                    }
                    if res.is_positive() {
                        positive += 1;
                    } else {
                        negative += 1;
                    }
                }
                Err(_) => failures += 1,
            }
        }
        metrics.counter("engine.from_cache").add(from_cache);
        metrics.counter("engine.answers_positive").add(positive);
        metrics.counter("engine.answers_negative").add(negative);
        metrics.counter("engine.failures").add(failures);
    }
}

/// Resolve one distinct query, recording its wall-clock latency when a
/// histogram is attached (the observational class: never compared for
/// determinism).
fn timed_resolve(
    resolver: &RecursiveResolver,
    q: &Query,
    latency: Option<&telemetry::Histogram>,
) -> Result<Resolution, ResolveError> {
    match latency {
        Some(hist) => {
            let start = Instant::now();
            let result = resolver.resolve(&q.name, q.rtype);
            hist.record_duration(start.elapsed());
            result
        }
        None => resolver.resolve(&q.name, q.rtype),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_eq_and_hash_fold_case() {
        // Dedup now keys maps on borrowed `&Query`, so the case-folding
        // the old `(String, u16)` key provided must live in `Eq`/`Hash`.
        let a = Query::new(DnsName::parse("A.Example").unwrap(), RecordType::Https);
        let b = Query::new(DnsName::parse("a.example").unwrap(), RecordType::Https);
        assert_eq!(a, b);
        let mut dedup: HashMap<&Query, usize> = HashMap::new();
        dedup.insert(&a, 0);
        assert_eq!(dedup.get(&b), Some(&0));
        let c = Query::new(DnsName::parse("a.example").unwrap(), RecordType::A);
        assert_ne!(a, c);
        assert!(!dedup.contains_key(&c));
    }
}
