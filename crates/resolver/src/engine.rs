//! The shared query engine: one resolution front-end for every consumer.
//!
//! The scanner, the browser testbed, and the benches all used to
//! hand-roll their own query loops against a [`RecursiveResolver`]. The
//! [`QueryEngine`] replaces those loops with one object that owns the
//! resolver (and through it the sharded [`RecordCache`]) and exposes two
//! paths:
//!
//! - [`QueryEngine::resolve`] — the existing single-query path,
//!   unchanged semantics;
//! - [`QueryEngine::resolve_batch`] — resolve many queries with a
//!   deterministic worker fan-out over the simulated network.
//!
//! ## Batch semantics and the determinism contract
//!
//! `resolve_batch(queries, threads)` returns one result per input query,
//! **in input order**, and is deterministic in the following sense:
//!
//! 1. **Deduplication.** Queries are deduplicated on `(owner name,
//!    record type)` before the fan-out; each distinct query is resolved
//!    exactly once per batch and duplicate positions receive a clone of
//!    that single resolution. Whether a duplicate "would have" hit the
//!    cache therefore does not depend on scheduling.
//! 2. **Zone-affinity assignment.** Distinct queries are assigned to
//!    workers by a stable hash of their authoritative zone apex (from
//!    the delegation registry), and each worker resolves its queries in
//!    input order. There is no work stealing. All queries against one
//!    zone therefore resolve on one worker, in input order, and both
//!    stateful selection strategies keep their state **per zone**:
//!    [`SelectionStrategy::RoundRobin`](crate::SelectionStrategy) uses
//!    per-zone rotation counters, and
//!    [`SelectionStrategy::Random`](crate::SelectionStrategy) draws
//!    from a per-zone RNG seeded from `(seed, zone key)`. Each zone
//!    consumes its selection state in the same sequence for **every
//!    thread count**; this is what keeps the paper's §4.2.3
//!    mixed-provider flapping reproducible under a parallel scanner,
//!    including randomized-selection vantage points.
//! 3. **Time is frozen.** The simulated clock does not advance during a
//!    batch, so every query sees the same `now` and cache-expiry
//!    decisions are interleaving-independent. Cache entries written by
//!    concurrent workers for the same RRset are byte-identical, so
//!    last-writer-wins races cannot change any answer.
//!
//! Under those rules a batch's results match a sequential resolution of
//! the same distinct queries, independent of thread count. The residual
//! caveat: a query whose resolution *crosses* zones (a CNAME chase, or
//! the DS/DNSKEY walk into an ancestor zone) can consume another
//! worker's zone selection state concurrently; this only matters when
//! that other zone's endpoints serve divergent data for the same name,
//! which does not occur in the modelled ecosystem (divergence is
//! confined to apex zones with mixed NS sets, and every query for an
//! apex zone shares a worker — shared ancestor zones serve identical
//! data from every endpoint, so pick order cannot change an answer).

use crate::cache::{fnv1a, RecordCache};
use crate::resolver::{RecursiveResolver, Resolution, ResolveError, ResolverConfig};
use authserver::DelegationRegistry;
use dns_wire::{DnsName, RecordType};
use netsim::Network;
use std::collections::HashMap;
use std::sync::Arc;

/// One query in a batch: an owner name and a record type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// Owner name to resolve.
    pub name: DnsName,
    /// Record type to resolve.
    pub rtype: RecordType,
}

impl Query {
    /// Construct a query.
    pub fn new(name: DnsName, rtype: RecordType) -> Query {
        Query { name, rtype }
    }

    fn key(&self) -> (String, u16) {
        (self.name.key(), self.rtype.code())
    }
}

/// The shared, batch-capable resolution engine.
pub struct QueryEngine {
    resolver: Arc<RecursiveResolver>,
}

impl QueryEngine {
    /// Build an engine with its own resolver on `network`/`registry`.
    pub fn new(
        network: Network,
        registry: DelegationRegistry,
        config: ResolverConfig,
    ) -> QueryEngine {
        QueryEngine { resolver: Arc::new(RecursiveResolver::new(network, registry, config)) }
    }

    /// Wrap an existing shared resolver (e.g. one also bound to the
    /// network as a public-resolver datagram service).
    pub fn from_resolver(resolver: Arc<RecursiveResolver>) -> QueryEngine {
        QueryEngine { resolver }
    }

    /// The underlying resolver.
    pub fn resolver(&self) -> &Arc<RecursiveResolver> {
        &self.resolver
    }

    /// The resolver's sharded cache.
    pub fn cache(&self) -> &RecordCache {
        self.resolver.cache()
    }

    /// The simulated network handle.
    pub fn network(&self) -> &Network {
        self.resolver.network()
    }

    /// Resolve one query at the current simulated time.
    pub fn resolve(&self, name: &DnsName, rtype: RecordType) -> Result<Resolution, ResolveError> {
        self.resolver.resolve(name, rtype)
    }

    /// Resolve a batch of queries with `threads` workers, returning one
    /// result per query in input order. See the module docs for the
    /// determinism contract.
    pub fn resolve_batch(
        &self,
        queries: &[Query],
        threads: usize,
    ) -> Vec<Result<Resolution, ResolveError>> {
        // Deduplicate, preserving first-occurrence order.
        let mut index_of: HashMap<(String, u16), usize> = HashMap::new();
        let mut distinct: Vec<&Query> = Vec::new();
        let mut positions: Vec<usize> = Vec::with_capacity(queries.len());
        for q in queries {
            let next = distinct.len();
            let idx = *index_of.entry(q.key()).or_insert_with(|| {
                distinct.push(q);
                next
            });
            positions.push(idx);
        }

        let threads = threads.clamp(1, distinct.len().max(1));
        let mut resolved: Vec<Option<Result<Resolution, ResolveError>>> =
            vec![None; distinct.len()];

        if threads == 1 {
            for (slot, q) in resolved.iter_mut().zip(&distinct) {
                *slot = Some(self.resolver.resolve(&q.name, q.rtype));
            }
        } else {
            // Zone-affinity partition: every query for one zone lands on
            // one worker (see the module docs). Buckets the hash-mod
            // partition leaves empty are skipped — a scoped spawn costs
            // 25–35% on a single-CPU host, so dead workers are pure waste.
            let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); threads];
            for (i, q) in distinct.iter().enumerate() {
                assignment[(fnv1a(&self.affinity_key(q)) % threads as u64) as usize].push(i);
            }
            let chunks: Vec<Vec<(usize, Result<Resolution, ResolveError>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = assignment
                        .iter()
                        .filter(|indices| !indices.is_empty())
                        .map(|indices| {
                            let resolver = &self.resolver;
                            let distinct = &distinct;
                            scope.spawn(move || {
                                indices
                                    .iter()
                                    .map(|&i| {
                                        let q = distinct[i];
                                        (i, resolver.resolve(&q.name, q.rtype))
                                    })
                                    .collect()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
                });
            for (i, result) in chunks.into_iter().flatten() {
                resolved[i] = Some(result);
            }
        }

        // Hand each resolution to its consumers, cloning only for true
        // duplicates: the common all-distinct batch moves every result.
        let mut remaining = vec![0usize; resolved.len()];
        for &idx in &positions {
            remaining[idx] += 1;
        }
        positions
            .into_iter()
            .map(|idx| {
                remaining[idx] -= 1;
                let slot = &mut resolved[idx];
                if remaining[idx] == 0 { slot.take() } else { slot.clone() }
                    .expect("every distinct query resolved")
            })
            .collect()
    }

    /// The worker-affinity key of a query: the apex of its authoritative
    /// zone when the registry knows one, else the owner name itself.
    fn affinity_key(&self, q: &Query) -> String {
        self.resolver
            .registry()
            .find_authority(&q.name)
            .map(|(apex, _)| apex.key())
            .unwrap_or_else(|| q.name.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_key_folds_case() {
        let a = Query::new(DnsName::parse("A.Example").unwrap(), RecordType::Https);
        let b = Query::new(DnsName::parse("a.example").unwrap(), RecordType::Https);
        assert_eq!(a.key(), b.key());
        let c = Query::new(DnsName::parse("a.example").unwrap(), RecordType::A);
        assert_ne!(a.key(), c.key());
    }
}
