//! The virtual-time event-loop resolution backend.
//!
//! One worker thread drives every in-flight query of a batch to
//! completion as a per-query state machine (a hand-rolled future): send
//! → await reply or timeout → retransmit within the configured budget →
//! fall back to the next NS in the existing [`NsSelector`] order. Sends
//! go through [`Network::send_datagram_scheduled`], so each exchange is
//! a *scheduled delivery* in virtual milliseconds; the loop owns the one
//! timer queue (a `BinaryHeap` keyed by `(delivery instant, sequence)`)
//! and advances the shared [`SimClock`](netsim::SimClock) monotonically
//! as it pops events. Nothing here spawns a thread and nothing blocks:
//! with a 20 ms RTT model, thousands of queries overlap their waits and
//! a 3600-query batch finishes in a handful of virtual RTTs.
//!
//! ## Determinism and WorkerPool equivalence
//!
//! The loop is single-threaded over seeded draws, so a batch's results
//! *and* its virtual timeline (per-query completion instants, timeout/
//! retransmit counts) are a pure function of the seed — the `threads`
//! argument of `resolve_batch` is simply ignored. Equivalence with the
//! [`WorkerPool`](crate::pool::WorkerPool) backend on the zero-latency
//! model comes from **per-zone serialization**: queries are grouped by
//! authoritative zone apex (the same partition key the pool's
//! zone-affinity buckets use) and at most one query per zone is in
//! flight at a time, in batch input order. Each zone therefore consumes
//! its NS-selection state (round-robin counters, per-zone RNG streams)
//! in exactly the per-worker FIFO order the pool produces, so the two
//! backends return byte-identical results — pinned by the
//! `event_backend` determinism suite. Concurrency comes from the number
//! of *distinct zones* in flight, which is the scanner's natural shape
//! (one zone per scanned apex).
//!
//! DNSSEC chain fetches (DNSKEY/DS) issued mid-validation use the
//! synchronous zero-latency network path, exactly as the `WorkerPool`
//! backend does — a documented simplification: the latency model shapes
//! the *measurement* queries (HTTPS/A/NS and CNAME chases), not the
//! validation walk.

use crate::engine::Query;
use crate::resolver::{
    extract_rrset, extract_rrsigs, AuthorityReply, RecursiveResolver, Resolution, ResolveError,
};
use dns_wire::{DnsName, Message, RData, Rcode, RecordType};
use netsim::{NetError, ScheduledDelivery, TimeMs};
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::net::IpAddr;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Deterministic outcome counters for one event-loop batch: every field
/// is derived from seeded virtual-time outcomes, so all of them sit on
/// the byte-identical side of the telemetry determinism split.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EventLoopStats {
    /// Attempts that waited out the full timeout budget without a reply
    /// (lost exchanges plus replies that arrived past the deadline).
    pub timeouts: u64,
    /// Retransmissions sent after a timed-out attempt.
    pub retransmits: u64,
    /// Exchanges the link model dropped in flight.
    pub drops: u64,
    /// Fallbacks to a lower-preference NS endpoint.
    pub ns_fallbacks: u64,
}

impl EventLoopStats {
    fn absorb(&mut self, other: &EventLoopStats) {
        self.timeouts += other.timeouts;
        self.retransmits += other.retransmits;
        self.drops += other.drops;
        self.ns_fallbacks += other.ns_fallbacks;
    }
}

/// Everything `drive` hands back to the engine.
pub(crate) struct DriveOutcome {
    /// One result per distinct query, in distinct (input) order.
    pub results: Vec<Result<Resolution, ResolveError>>,
    /// Per distinct query: virtual `(start, completion)` instants in ms.
    pub spans: Vec<(u64, u64)>,
    /// Aggregated outcome counters, summed in distinct-query order.
    pub stats: EventLoopStats,
    /// Peak number of concurrently in-flight (suspended) queries.
    pub max_in_flight: usize,
    /// Virtual time when the batch started / when the last query finished.
    pub started_ms: u64,
    pub finished_ms: u64,
}

/// A reply (or failure) parked until its delivery instant.
enum SlotState {
    Pending,
    Ready(Result<Vec<u8>, NetError>),
}

/// One scheduled delivery in the loop's timer queue. Ordering is by
/// `(delivery instant, schedule sequence)` only — the sequence number
/// makes simultaneous deliveries (everything, on the zero-latency
/// model) fire in schedule order, which is what makes the zero-latency
/// schedule a faithful replay of the synchronous backend.
struct Event {
    at: u64,
    seq: u64,
    task: usize,
    slot: Rc<RefCell<SlotState>>,
    payload: Result<Vec<u8>, NetError>,
}

impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Event) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Loop-shared state: the timer queue and its sequence counter.
struct Core {
    events: RefCell<BinaryHeap<Reverse<Event>>>,
    seq: Cell<u64>,
}

impl Core {
    fn push_event(
        &self,
        at: TimeMs,
        task: usize,
        slot: &Rc<RefCell<SlotState>>,
        payload: Result<Vec<u8>, NetError>,
    ) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        self.events.borrow_mut().push(Reverse(Event {
            at: at.0,
            seq,
            task,
            slot: Rc::clone(slot),
            payload,
        }));
    }
}

/// The await point: resolves once the loop delivers the parked reply.
struct ExchangeFuture {
    slot: Rc<RefCell<SlotState>>,
}

impl Future for ExchangeFuture {
    type Output = Result<Vec<u8>, NetError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut slot = self.slot.borrow_mut();
        match std::mem::replace(&mut *slot, SlotState::Pending) {
            SlotState::Ready(result) => Poll::Ready(result),
            SlotState::Pending => Poll::Pending,
        }
    }
}

/// Readiness is driver-managed (the loop knows exactly which task each
/// popped event unblocks), so wakeups have nothing to do.
struct NoopWake;
impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

/// Per-task handle into the loop: schedules exchanges and records the
/// task's outcome counters.
struct TaskCtx {
    core: Rc<Core>,
    resolver: Arc<RecursiveResolver>,
    stats: Rc<RefCell<EventLoopStats>>,
    task: usize,
    attempt_timeout_ms: u64,
    retransmits: u32,
}

impl TaskCtx {
    /// Send one datagram and obtain the future of its reply. The fate is
    /// decided now (the network computes replies eagerly); what the
    /// future models is *when* the task may look: a surviving reply at
    /// its delivery instant, anything else as a timeout at the deadline.
    fn exchange(&self, ip: IpAddr, wire: &[u8], attempt: u32) -> ExchangeFuture {
        let network = self.resolver.network();
        let now = network.clock().now_ms();
        let deadline = now.plus(self.attempt_timeout_ms);
        let slot = Rc::new(RefCell::new(SlotState::Pending));
        match network.send_datagram_scheduled(ip, 53, wire, attempt) {
            ScheduledDelivery::Failed(e) => {
                // Synchronous failure (unreachable/refused): ready
                // immediately, zero virtual time — same as the sync path.
                *slot.borrow_mut() = SlotState::Ready(Err(e));
            }
            ScheduledDelivery::Reply { at, bytes } if at <= deadline => {
                self.core.push_event(at, self.task, &slot, Ok(bytes));
            }
            ScheduledDelivery::Reply { .. } => {
                // The server answered, but slower than the attempt
                // budget: the reply is discarded and the attempt times
                // out — how a lame/slow authoritative looks from here.
                self.core.push_event(deadline, self.task, &slot, Err(NetError::Timeout));
            }
            ScheduledDelivery::Dropped => {
                self.stats.borrow_mut().drops += 1;
                self.core.push_event(deadline, self.task, &slot, Err(NetError::Timeout));
            }
        }
        ExchangeFuture { slot }
    }
}

/// Async mirror of [`RecursiveResolver::query_authority`]: same
/// selection, same Refused/Malformed/network-error classification, plus
/// the timeout → retransmit → NS-fallback ladder that only exists in
/// virtual time. On the zero-latency model no attempt can time out, so
/// the observable exchange sequence is identical to the sync path.
async fn query_authority_async(
    ctx: &TaskCtx,
    name: &DnsName,
    rtype: RecordType,
) -> Result<AuthorityReply, ResolveError> {
    let r = &ctx.resolver;
    let (apex, endpoints) =
        r.registry().find_authority(name).ok_or_else(|| ResolveError::NoAuthority(name.clone()))?;
    let order = r.selector().pick_order(&apex.key(), &endpoints);
    if order.is_empty() {
        return Err(ResolveError::NoAuthority(name.clone()));
    }
    let id = r.next_query_id();
    let wire = Message::query_dnssec(id, name.clone(), rtype).encode();
    let mut last_err = ResolveError::Lame(apex.clone());
    let mut timed_out_total = 0u32;
    for (ep_index, ep) in order.iter().enumerate() {
        if ep_index > 0 {
            ctx.stats.borrow_mut().ns_fallbacks += 1;
        }
        let mut attempt = 0u32;
        loop {
            match ctx.exchange(ep.ip, &wire, attempt).await {
                Ok(bytes) => match AuthorityReply::parse(&bytes) {
                    Some(resp) if resp.rcode == Rcode::Refused => {
                        last_err = ResolveError::Lame(apex.clone());
                        break;
                    }
                    Some(resp) => return Ok(resp),
                    None => {
                        last_err = ResolveError::Malformed;
                        break;
                    }
                },
                Err(NetError::Timeout) => {
                    ctx.stats.borrow_mut().timeouts += 1;
                    timed_out_total += 1;
                    last_err =
                        ResolveError::Timeout { zone: apex.clone(), attempts: timed_out_total };
                    if attempt >= ctx.retransmits {
                        break; // budget exhausted: fall back to the next NS
                    }
                    attempt += 1;
                    ctx.stats.borrow_mut().retransmits += 1;
                }
                Err(e) => {
                    last_err = ResolveError::Network(e);
                    break;
                }
            }
        }
    }
    Err(last_err)
}

/// Async mirror of [`RecursiveResolver::resolve`]: cache lookups, CNAME
/// chasing, negative caching, and the `finish`/validation step are the
/// *same code* (synchronous methods on the resolver); only the
/// authoritative round is awaited through the event loop.
async fn resolve_async(
    ctx: TaskCtx,
    name: DnsName,
    rtype: RecordType,
) -> Result<Resolution, ResolveError> {
    use crate::cache::CachedAnswer;
    let r = Arc::clone(&ctx.resolver);
    let now = r.network().clock().now();
    let mut chain = Vec::new();
    let mut current = name;
    let mut from_cache = true;

    for _ in 0..=r.config().max_cname_chain {
        if let Some(ans) = r.cache().get(&current, rtype, now) {
            return Ok(r.finish(chain, ans, from_cache, now));
        }
        if rtype != RecordType::Cname {
            if let Some(CachedAnswer::Positive { records, .. }) =
                r.cache().get(&current, RecordType::Cname, now)
            {
                if let Some(rec) = records.first() {
                    if let RData::Cname(target) = &rec.rdata {
                        chain.push(rec.clone());
                        current = target.clone();
                        continue;
                    }
                }
            }
        }
        from_cache = false;

        let resp = query_authority_async(&ctx, &current, rtype).await?;
        match resp.rcode {
            Rcode::NoError => {}
            Rcode::NxDomain => {
                let ttl = resp.negative_ttl(r.config().default_negative_ttl);
                r.cache().insert_negative(&current, rtype, Rcode::NxDomain, ttl, now);
                return Ok(Resolution {
                    chain,
                    records: Vec::new(),
                    rrsigs: Vec::new(),
                    rcode: Rcode::NxDomain,
                    validation: None,
                    from_cache: false,
                });
            }
            other => {
                return Ok(Resolution {
                    chain,
                    records: Vec::new(),
                    rrsigs: Vec::new(),
                    rcode: other,
                    validation: None,
                    from_cache: false,
                });
            }
        }

        r.cache_answer_sections(&resp.answers, now);

        let records = extract_rrset(&resp.answers, &current, rtype);
        if !records.is_empty() {
            let rrsigs = extract_rrsigs(&resp.answers, &current, rtype);
            return Ok(r.finish(chain, CachedAnswer::Positive { records, rrsigs }, false, now));
        }
        let cname =
            resp.answers.iter().find(|rec| rec.rtype == RecordType::Cname && rec.name == current);
        if let Some(rec) = cname {
            if let RData::Cname(target) = &rec.rdata {
                chain.push(rec.clone());
                current = target.clone();
                continue;
            }
        }
        let ttl = resp.negative_ttl(r.config().default_negative_ttl);
        r.cache().insert_negative(&current, rtype, Rcode::NoError, ttl, now);
        return Ok(Resolution {
            chain,
            records: Vec::new(),
            rrsigs: Vec::new(),
            rcode: Rcode::NoError,
            validation: None,
            from_cache: false,
        });
    }
    Err(ResolveError::ChainTooLong)
}

/// Drive a batch of distinct queries to completion on the current
/// thread. `zone_index[i]` is the serialization group of `distinct[i]`
/// (its authoritative zone apex, interned to `0..zone_count` in
/// first-appearance order); at most one query per group is in flight.
pub(crate) fn drive(
    resolver: &Arc<RecursiveResolver>,
    distinct: &[&Query],
    zone_index: &[usize],
    zone_count: usize,
) -> DriveOutcome {
    assert_eq!(distinct.len(), zone_index.len());
    let clock = resolver.network().clock().clone();
    let core = Rc::new(Core { events: RefCell::new(BinaryHeap::new()), seq: Cell::new(0) });
    let waker = Waker::from(Arc::new(NoopWake));
    let mut poll_cx = Context::from_waker(&waker);
    let attempt_timeout_ms = resolver.config().attempt_timeout_ms;
    let retransmits = resolver.config().retransmits;

    let n = distinct.len();
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); zone_count];
    for (slot, &zone) in zone_index.iter().enumerate() {
        queues[zone].push_back(slot);
    }

    let mut results: Vec<Option<Result<Resolution, ResolveError>>> = (0..n).map(|_| None).collect();
    let mut spans = vec![(0u64, 0u64); n];
    let mut stats_of: Vec<Option<Rc<RefCell<EventLoopStats>>>> = (0..n).map(|_| None).collect();
    type TaskFuture = Pin<Box<dyn Future<Output = Result<Resolution, ResolveError>>>>;
    let mut active: HashMap<usize, TaskFuture> = HashMap::new();

    // Initial admission: the head query of every zone, in zone order
    // (zones are numbered by first appearance in the distinct list).
    let mut admit: VecDeque<usize> = queues.iter_mut().filter_map(VecDeque::pop_front).collect();
    let started_ms = clock.now_ms().0;
    let mut max_in_flight = 0usize;

    while !admit.is_empty() || !active.is_empty() {
        // Admit and run every unblocked task up to its first await.
        while let Some(slot) = admit.pop_front() {
            let stats = Rc::new(RefCell::new(EventLoopStats::default()));
            stats_of[slot] = Some(Rc::clone(&stats));
            spans[slot].0 = clock.now_ms().0;
            let ctx = TaskCtx {
                core: Rc::clone(&core),
                resolver: Arc::clone(resolver),
                stats,
                task: slot,
                attempt_timeout_ms,
                retransmits,
            };
            let q = distinct[slot];
            let mut fut: TaskFuture = Box::pin(resolve_async(ctx, q.name.clone(), q.rtype));
            match fut.as_mut().poll(&mut poll_cx) {
                Poll::Ready(result) => {
                    spans[slot].1 = clock.now_ms().0;
                    results[slot] = Some(result);
                    if let Some(next) = queues[zone_index[slot]].pop_front() {
                        admit.push_back(next);
                    }
                }
                Poll::Pending => {
                    active.insert(slot, fut);
                    max_in_flight = max_in_flight.max(active.len());
                }
            }
        }
        if active.is_empty() {
            break;
        }
        // Fire the next delivery and resume the task waiting on it.
        let Reverse(event) =
            core.events.borrow_mut().pop().expect("suspended task without a scheduled event");
        clock.set_ms(TimeMs(event.at));
        *event.slot.borrow_mut() = SlotState::Ready(event.payload);
        let mut fut = active.remove(&event.task).expect("delivery for an unknown task");
        match fut.as_mut().poll(&mut poll_cx) {
            Poll::Ready(result) => {
                spans[event.task].1 = clock.now_ms().0;
                results[event.task] = Some(result);
                if let Some(next) = queues[zone_index[event.task]].pop_front() {
                    admit.push_back(next);
                }
            }
            Poll::Pending => {
                active.insert(event.task, fut);
            }
        }
    }

    let mut stats = EventLoopStats::default();
    for s in stats_of.iter().flatten() {
        stats.absorb(&s.borrow());
    }
    DriveOutcome {
        results: results.into_iter().map(|r| r.expect("every query driven")).collect(),
        spans,
        stats,
        max_in_flight,
        started_ms,
        finished_ms: clock.now_ms().0,
    }
}
