//! Name-server selection: which of a zone's NS endpoints a resolver
//! queries. Public resolvers use different strategies (fastest, rotated,
//! random); the paper's §4.2.3 shows that with mixed-provider NS sets the
//! strategy decides whether a client sees the HTTPS record at all, so the
//! strategy is pluggable and an ablation axis.

use authserver::NsEndpoint;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Strategy for picking an NS endpoint from a zone's delegation set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Always the first listed endpoint (deterministic, models a
    /// resolver pinned to its measured-fastest server).
    First,
    /// Rotate through endpoints per zone (models per-query rotation).
    RoundRobin,
    /// Uniform random choice (seeded; models randomized selection).
    Random,
}

/// Stateful selector owned by one resolver.
pub struct NsSelector {
    strategy: SelectionStrategy,
    state: Mutex<SelectorState>,
}

struct SelectorState {
    counters: HashMap<String, usize>,
    rng: StdRng,
}

impl NsSelector {
    /// Create a selector; `seed` drives the `Random` strategy.
    pub fn new(strategy: SelectionStrategy, seed: u64) -> NsSelector {
        NsSelector {
            strategy,
            state: Mutex::new(SelectorState {
                counters: HashMap::new(),
                rng: StdRng::seed_from_u64(seed),
            }),
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// Pick one endpoint for the zone keyed by `zone_key`.
    pub fn pick<'a>(&self, zone_key: &str, endpoints: &'a [NsEndpoint]) -> Option<&'a NsEndpoint> {
        if endpoints.is_empty() {
            return None;
        }
        let idx = match self.strategy {
            SelectionStrategy::First => 0,
            SelectionStrategy::RoundRobin => {
                let mut st = self.state.lock();
                let c = st.counters.entry(zone_key.to_string()).or_insert(0);
                let idx = *c % endpoints.len();
                *c += 1;
                idx
            }
            SelectionStrategy::Random => {
                let mut st = self.state.lock();
                st.rng.gen_range(0..endpoints.len())
            }
        };
        endpoints.get(idx)
    }

    /// Pick endpoints in fallback order: the primary pick first, then the
    /// remaining endpoints (for retry after an unresponsive server).
    pub fn pick_order<'a>(
        &self,
        zone_key: &str,
        endpoints: &'a [NsEndpoint],
    ) -> Vec<&'a NsEndpoint> {
        let Some(primary) = self.pick(zone_key, endpoints) else {
            return Vec::new();
        };
        let mut order: Vec<&NsEndpoint> = vec![primary];
        order.extend(endpoints.iter().filter(|e| *e != primary));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::DnsName;

    fn eps(n: usize) -> Vec<NsEndpoint> {
        (0..n)
            .map(|i| NsEndpoint {
                name: DnsName::parse(&format!("ns{i}.prov.net")).unwrap(),
                ip: format!("10.0.0.{i}").parse().unwrap(),
            })
            .collect()
    }

    #[test]
    fn first_is_stable() {
        let sel = NsSelector::new(SelectionStrategy::First, 0);
        let endpoints = eps(3);
        for _ in 0..5 {
            assert_eq!(sel.pick("z", &endpoints).unwrap(), &endpoints[0]);
        }
    }

    #[test]
    fn round_robin_cycles_per_zone() {
        let sel = NsSelector::new(SelectionStrategy::RoundRobin, 0);
        let endpoints = eps(3);
        let picks: Vec<_> = (0..6).map(|_| sel.pick("z", &endpoints).unwrap().ip).collect();
        assert_eq!(picks[0], picks[3]);
        assert_eq!(picks[1], picks[4]);
        assert_ne!(picks[0], picks[1]);
        // Independent counter for another zone.
        assert_eq!(sel.pick("other", &endpoints).unwrap(), &endpoints[0]);
    }

    #[test]
    fn random_is_seeded_deterministic() {
        let endpoints = eps(4);
        let run = |seed| -> Vec<std::net::IpAddr> {
            let sel = NsSelector::new(SelectionStrategy::Random, seed);
            (0..10).map(|_| sel.pick("z", &endpoints).unwrap().ip).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_covers_all_endpoints() {
        let endpoints = eps(3);
        let sel = NsSelector::new(SelectionStrategy::Random, 42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(sel.pick("z", &endpoints).unwrap().ip);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn empty_endpoint_list() {
        let sel = NsSelector::new(SelectionStrategy::First, 0);
        assert!(sel.pick("z", &[]).is_none());
        assert!(sel.pick_order("z", &[]).is_empty());
    }

    #[test]
    fn pick_order_contains_all_unique() {
        let endpoints = eps(3);
        let sel = NsSelector::new(SelectionStrategy::RoundRobin, 0);
        let order = sel.pick_order("z", &endpoints);
        assert_eq!(order.len(), 3);
        let set: std::collections::HashSet<_> = order.iter().map(|e| e.ip).collect();
        assert_eq!(set.len(), 3);
    }
}
