//! Name-server selection: which of a zone's NS endpoints a resolver
//! queries. Public resolvers use different strategies (fastest, rotated,
//! random); the paper's §4.2.3 shows that with mixed-provider NS sets the
//! strategy decides whether a client sees the HTTPS record at all, so the
//! strategy is pluggable and an ablation axis.

use crate::cache::fnv1a;
use authserver::NsEndpoint;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Strategy for picking an NS endpoint from a zone's delegation set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Always the first listed endpoint (deterministic, models a
    /// resolver pinned to its measured-fastest server).
    First,
    /// Rotate through endpoints per zone (models per-query rotation).
    RoundRobin,
    /// Uniform random choice (seeded; models randomized selection). The
    /// pick sequence is **per zone**: each zone draws from its own RNG
    /// seeded from `(selector seed, zone key)`, so picks in one zone are
    /// independent of how queries against other zones interleave.
    Random,
}

/// Stateful selector owned by one resolver.
pub struct NsSelector {
    strategy: SelectionStrategy,
    seed: u64,
    state: Mutex<SelectorState>,
}

#[derive(Default)]
struct SelectorState {
    counters: HashMap<String, usize>,
    /// Per-zone RNGs for `Random`, lazily seeded from `(seed, zone_key)`.
    /// One RNG per zone (rather than one shared stream) keeps the pick
    /// sequence of a zone invariant under cross-zone interleaving, which
    /// is what makes `QueryEngine::resolve_batch` thread-count-invariant
    /// under `Random` (all queries for one zone share a worker).
    rngs: HashMap<String, StdRng>,
}

impl NsSelector {
    /// Create a selector; `seed` drives the `Random` strategy.
    pub fn new(strategy: SelectionStrategy, seed: u64) -> NsSelector {
        NsSelector { strategy, seed, state: Mutex::new(SelectorState::default()) }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// Pick one endpoint for the zone keyed by `zone_key`.
    pub fn pick<'a>(&self, zone_key: &str, endpoints: &'a [NsEndpoint]) -> Option<&'a NsEndpoint> {
        self.pick_index(zone_key, endpoints).map(|i| &endpoints[i])
    }

    /// Pick the index of one endpoint for the zone keyed by `zone_key`.
    fn pick_index(&self, zone_key: &str, endpoints: &[NsEndpoint]) -> Option<usize> {
        if endpoints.is_empty() {
            return None;
        }
        let idx = match self.strategy {
            SelectionStrategy::First => 0,
            SelectionStrategy::RoundRobin => {
                let mut st = self.state.lock();
                let c = st.counters.entry(zone_key.to_string()).or_insert(0);
                let idx = *c % endpoints.len();
                *c += 1;
                idx
            }
            SelectionStrategy::Random => {
                let mut st = self.state.lock();
                let seed = self.seed;
                let rng = st
                    .rngs
                    .entry(zone_key.to_string())
                    .or_insert_with(|| StdRng::seed_from_u64(seed ^ fnv1a(zone_key)));
                rng.gen_range(0..endpoints.len())
            }
        };
        Some(idx)
    }

    /// Pick endpoints in fallback order: the primary pick first, then the
    /// remaining endpoints (for retry after an unresponsive server). With
    /// duplicate endpoints in the delegation set, only the picked *slot*
    /// is moved to the front — other copies keep their retry positions,
    /// so the order always covers every slot exactly once.
    pub fn pick_order<'a>(
        &self,
        zone_key: &str,
        endpoints: &'a [NsEndpoint],
    ) -> Vec<&'a NsEndpoint> {
        let Some(primary) = self.pick_index(zone_key, endpoints) else {
            return Vec::new();
        };
        let mut order: Vec<&NsEndpoint> = Vec::with_capacity(endpoints.len());
        order.push(&endpoints[primary]);
        order.extend(endpoints.iter().enumerate().filter(|(i, _)| *i != primary).map(|(_, e)| e));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::DnsName;

    fn eps(n: usize) -> Vec<NsEndpoint> {
        (0..n)
            .map(|i| NsEndpoint {
                name: DnsName::parse(&format!("ns{i}.prov.net")).unwrap(),
                ip: format!("10.0.0.{i}").parse().unwrap(),
            })
            .collect()
    }

    #[test]
    fn first_is_stable() {
        let sel = NsSelector::new(SelectionStrategy::First, 0);
        let endpoints = eps(3);
        for _ in 0..5 {
            assert_eq!(sel.pick("z", &endpoints).unwrap(), &endpoints[0]);
        }
    }

    #[test]
    fn round_robin_cycles_per_zone() {
        let sel = NsSelector::new(SelectionStrategy::RoundRobin, 0);
        let endpoints = eps(3);
        let picks: Vec<_> = (0..6).map(|_| sel.pick("z", &endpoints).unwrap().ip).collect();
        assert_eq!(picks[0], picks[3]);
        assert_eq!(picks[1], picks[4]);
        assert_ne!(picks[0], picks[1]);
        // Independent counter for another zone.
        assert_eq!(sel.pick("other", &endpoints).unwrap(), &endpoints[0]);
    }

    #[test]
    fn random_is_seeded_deterministic() {
        let endpoints = eps(4);
        let run = |seed| -> Vec<std::net::IpAddr> {
            let sel = NsSelector::new(SelectionStrategy::Random, seed);
            (0..10).map(|_| sel.pick("z", &endpoints).unwrap().ip).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_streams_are_per_zone() {
        // The pick sequence of one zone must not depend on interleaved
        // picks against other zones (the batch-determinism prerequisite).
        let endpoints = eps(4);
        let alone = {
            let sel = NsSelector::new(SelectionStrategy::Random, 7);
            (0..10).map(|_| sel.pick("zone-a", &endpoints).unwrap().ip).collect::<Vec<_>>()
        };
        let interleaved = {
            let sel = NsSelector::new(SelectionStrategy::Random, 7);
            (0..10)
                .map(|_| {
                    let _ = sel.pick("zone-b", &endpoints);
                    let pick = sel.pick("zone-a", &endpoints).unwrap().ip;
                    let _ = sel.pick("zone-c", &endpoints);
                    pick
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(alone, interleaved);
    }

    #[test]
    fn random_zones_draw_distinct_streams() {
        let endpoints = eps(4);
        let sel = NsSelector::new(SelectionStrategy::Random, 7);
        let a: Vec<_> = (0..16).map(|_| sel.pick("zone-a", &endpoints).unwrap().ip).collect();
        let b: Vec<_> = (0..16).map(|_| sel.pick("zone-b", &endpoints).unwrap().ip).collect();
        assert_ne!(a, b, "distinct zones should not share one pick stream");
    }

    #[test]
    fn random_covers_all_endpoints() {
        let endpoints = eps(3);
        let sel = NsSelector::new(SelectionStrategy::Random, 42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(sel.pick("z", &endpoints).unwrap().ip);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn empty_endpoint_list() {
        let sel = NsSelector::new(SelectionStrategy::First, 0);
        assert!(sel.pick("z", &[]).is_none());
        assert!(sel.pick_order("z", &[]).is_empty());
    }

    #[test]
    fn pick_order_contains_all_unique() {
        let endpoints = eps(3);
        let sel = NsSelector::new(SelectionStrategy::RoundRobin, 0);
        let order = sel.pick_order("z", &endpoints);
        assert_eq!(order.len(), 3);
        let set: std::collections::HashSet<_> = order.iter().map(|e| e.ip).collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn pick_order_keeps_duplicate_endpoints() {
        // A delegation set with duplicate entries (two copies of ns0, one
        // ns1) must still yield a fallback order covering every slot:
        // only the picked slot moves to the front, duplicates of it are
        // not dropped from the retry tail.
        let mut endpoints = eps(2);
        endpoints.push(endpoints[0].clone());
        for strategy in
            [SelectionStrategy::First, SelectionStrategy::RoundRobin, SelectionStrategy::Random]
        {
            let sel = NsSelector::new(strategy, 3);
            for _ in 0..6 {
                let order = sel.pick_order("z", &endpoints);
                assert_eq!(order.len(), endpoints.len(), "{strategy:?} shrank the retry set");
                let dup_count = order.iter().filter(|e| e.ip == endpoints[0].ip).count();
                assert_eq!(dup_count, 2, "{strategy:?} dropped a duplicate endpoint");
            }
        }
    }
}
