//! The recursive caching resolver.
//!
//! Resolution strategy: find the deepest delegated zone for the queried
//! name via the [`DelegationRegistry`], pick a name server with the
//! configured [`SelectionStrategy`], query it over the simulated network
//! with the EDNS DO bit set, chase CNAMEs across zones, cache positive
//! and negative answers by TTL, and (optionally) validate DNSSEC chains
//! to decide the AD bit — the full pipeline the paper relies on when it
//! measures records through Google/Cloudflare public resolvers.

use crate::cache::{CachedAnswer, EvictionPolicy, RecordCache};
use crate::selection::{NsSelector, SelectionStrategy};
use authserver::DelegationRegistry;
use dns_wire::record::{DnskeyRdata, DsRdata, RrsigRdata};
use dns_wire::{DnsName, Message, MessageView, RData, Rcode, Record, RecordType};
use dnssec::{ChainSource, ValidationState, Validator};
use netsim::{DatagramService, NetError, Network, Timestamp};
use std::fmt;
use std::sync::atomic::{AtomicU16, Ordering};

/// Resolver configuration.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Perform DNSSEC validation and set the AD bit on Secure answers.
    pub validate: bool,
    /// Maximum cross-zone CNAME chain length.
    pub max_cname_chain: usize,
    /// NS selection strategy.
    pub strategy: SelectionStrategy,
    /// Seed for randomized selection.
    pub seed: u64,
    /// Optional cache TTL clamp (ablation knob).
    pub ttl_clamp: Option<u32>,
    /// Negative-cache TTL when no SOA is present in the response.
    pub default_negative_ttl: u32,
    /// Shard count for the record cache (see [`crate::cache`]).
    pub cache_shards: usize,
    /// Which batch backend [`crate::QueryEngine::resolve_batch`] uses
    /// (the synchronous worker pool, or the virtual-time event loop).
    pub backend: crate::engine::EngineBackend,
    /// Virtual milliseconds the event-loop backend waits for a reply
    /// before declaring one attempt timed out.
    pub attempt_timeout_ms: u64,
    /// Retransmissions per endpoint after the first attempt times out
    /// (so each endpoint is tried `retransmits + 1` times) before the
    /// event-loop backend falls back to the next NS.
    pub retransmits: u32,
    /// Per-shard cache capacity bound; `None` (the default) keeps the
    /// cache unbounded, which the scanner campaigns rely on. The serving
    /// subsystem sets `Some(n)` to model a production resolver's finite
    /// cache.
    pub cache_capacity_per_shard: Option<usize>,
    /// Eviction policy used when the cache is bounded (ignored
    /// otherwise).
    pub cache_eviction: EvictionPolicy,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            validate: true,
            max_cname_chain: 8,
            strategy: SelectionStrategy::RoundRobin,
            seed: 0,
            ttl_clamp: None,
            default_negative_ttl: 300,
            cache_shards: crate::cache::DEFAULT_SHARDS,
            backend: crate::engine::EngineBackend::default(),
            attempt_timeout_ms: 500,
            retransmits: 2,
            cache_capacity_per_shard: None,
            cache_eviction: EvictionPolicy::default(),
        }
    }
}

/// Errors surfaced by resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// No delegation covers the name.
    NoAuthority(DnsName),
    /// Every endpoint of the authority failed at the network layer.
    Network(NetError),
    /// The authority answered but refused / was lame for the zone.
    Lame(DnsName),
    /// CNAME chain exceeded the configured limit.
    ChainTooLong,
    /// The authority's response could not be decoded.
    Malformed,
    /// Every attempt against every endpoint of the zone ran out the
    /// retransmit budget without a reply (loss or a slow/mute server) —
    /// distinct from [`ResolveError::Network`] so stored observations
    /// can tell timeout-shaped loss apart from NXDOMAIN-shaped failure.
    Timeout {
        /// The zone whose endpoints never answered in time.
        zone: DnsName,
        /// Total attempts (including retransmissions) that timed out.
        attempts: u32,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NoAuthority(n) => write!(f, "no authority for {n}"),
            ResolveError::Network(e) => write!(f, "network failure: {e}"),
            ResolveError::Lame(n) => write!(f, "lame delegation for {n}"),
            ResolveError::ChainTooLong => write!(f, "CNAME chain too long"),
            ResolveError::Malformed => write!(f, "malformed authority response"),
            ResolveError::Timeout { zone, attempts } => {
                write!(f, "timed out after {attempts} attempts against {zone}")
            }
        }
    }
}

impl ResolveError {
    /// Whether this failure is timeout-shaped: the query was sent but no
    /// reply arrived within budget (packet loss, slow or mute servers) —
    /// as opposed to a negative or structurally failed resolution.
    pub fn is_timeout(&self) -> bool {
        matches!(self, ResolveError::Timeout { .. } | ResolveError::Network(NetError::Timeout))
    }
}

impl std::error::Error for ResolveError {}

/// The outcome of a resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// CNAME chain records traversed, in order.
    pub chain: Vec<Record>,
    /// Final answer RRset (of the queried type); empty on NODATA/NXDOMAIN.
    pub records: Vec<Record>,
    /// RRSIGs covering the final RRset (when the zone is signed).
    pub rrsigs: Vec<RrsigRdata>,
    /// Final response code.
    pub rcode: Rcode,
    /// DNSSEC validation state of the final RRset (None when validation
    /// is disabled or there was nothing to validate).
    pub validation: Option<ValidationState>,
    /// Whether the final answer was served from cache.
    pub from_cache: bool,
}

impl Resolution {
    /// The Authenticated Data bit as a resolver would set it.
    pub fn ad(&self) -> bool {
        matches!(self.validation, Some(ValidationState::Secure))
    }

    /// Whether any answer records were produced.
    pub fn is_positive(&self) -> bool {
        !self.records.is_empty()
    }
}

/// A recursive caching resolver bound to a simulated network.
pub struct RecursiveResolver {
    network: Network,
    registry: DelegationRegistry,
    cache: RecordCache,
    selector: NsSelector,
    validator: Validator,
    config: ResolverConfig,
    next_id: AtomicU16,
}

impl RecursiveResolver {
    /// Create a resolver.
    pub fn new(network: Network, registry: DelegationRegistry, config: ResolverConfig) -> Self {
        let cache = match config.cache_capacity_per_shard {
            Some(capacity) => RecordCache::with_eviction(
                config.cache_shards,
                config.ttl_clamp,
                capacity,
                config.cache_eviction,
            ),
            None => RecordCache::with_config(config.cache_shards, config.ttl_clamp),
        };
        let selector = NsSelector::new(config.strategy, config.seed);
        RecursiveResolver {
            network,
            registry,
            cache,
            selector,
            validator: Validator::new(),
            config,
            next_id: AtomicU16::new(1),
        }
    }

    /// The resolver's cache (for inspection and explicit flushes).
    pub fn cache(&self) -> &RecordCache {
        &self.cache
    }

    /// The underlying network handle.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The delegation registry this resolver consults.
    pub fn registry(&self) -> &DelegationRegistry {
        &self.registry
    }

    /// The NS selector (shared with the event-loop backend so both
    /// resolution paths consume one per-zone selection-state stream).
    pub(crate) fn selector(&self) -> &NsSelector {
        &self.selector
    }

    /// This resolver's configuration.
    pub(crate) fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Allocate the next DNS transaction id.
    pub(crate) fn next_query_id(&self) -> u16 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Resolve `(name, rtype)` at the current simulated time.
    pub fn resolve(&self, name: &DnsName, rtype: RecordType) -> Result<Resolution, ResolveError> {
        let now = self.network.clock().now();
        let mut chain: Vec<Record> = Vec::new();
        let mut current = name.clone();
        let mut from_cache = true;

        for _ in 0..=self.config.max_cname_chain {
            // 1. Cache: final answer?
            if let Some(ans) = self.cache.get(&current, rtype, now) {
                return Ok(self.finish(chain, ans, from_cache, now));
            }
            // 2. Cache: CNAME step?
            if rtype != RecordType::Cname {
                if let Some(CachedAnswer::Positive { records, .. }) =
                    self.cache.get(&current, RecordType::Cname, now)
                {
                    if let Some(rec) = records.first() {
                        if let RData::Cname(target) = &rec.rdata {
                            chain.push(rec.clone());
                            current = target.clone();
                            continue;
                        }
                    }
                }
            }
            from_cache = false;

            // 3. Query the authority.
            let resp = self.query_authority(&current, rtype)?;
            match resp.rcode {
                Rcode::NoError => {}
                Rcode::NxDomain => {
                    let ttl = resp.negative_ttl(self.config.default_negative_ttl);
                    self.cache.insert_negative(&current, rtype, Rcode::NxDomain, ttl, now);
                    return Ok(Resolution {
                        chain,
                        records: Vec::new(),
                        rrsigs: Vec::new(),
                        rcode: Rcode::NxDomain,
                        validation: None,
                        from_cache: false,
                    });
                }
                other => {
                    return Ok(Resolution {
                        chain,
                        records: Vec::new(),
                        rrsigs: Vec::new(),
                        rcode: other,
                        validation: None,
                        from_cache: false,
                    });
                }
            }

            // Cache every RRset in the answer section (covers the case
            // where the authority chased a CNAME for us).
            self.cache_answer_sections(&resp.answers, now);

            let records = extract_rrset(&resp.answers, &current, rtype);
            if !records.is_empty() {
                let rrsigs = extract_rrsigs(&resp.answers, &current, rtype);
                return Ok(self.finish(
                    chain,
                    CachedAnswer::Positive { records, rrsigs },
                    false,
                    now,
                ));
            }
            // CNAME step from the live response.
            let cname =
                resp.answers.iter().find(|r| r.rtype == RecordType::Cname && r.name == current);
            if let Some(rec) = cname {
                if let RData::Cname(target) = &rec.rdata {
                    chain.push(rec.clone());
                    current = target.clone();
                    continue;
                }
            }
            // NODATA.
            let ttl = resp.negative_ttl(self.config.default_negative_ttl);
            self.cache.insert_negative(&current, rtype, Rcode::NoError, ttl, now);
            return Ok(Resolution {
                chain,
                records: Vec::new(),
                rrsigs: Vec::new(),
                rcode: Rcode::NoError,
                validation: None,
                from_cache: false,
            });
        }
        Err(ResolveError::ChainTooLong)
    }

    pub(crate) fn finish(
        &self,
        chain: Vec<Record>,
        ans: CachedAnswer,
        from_cache: bool,
        now: Timestamp,
    ) -> Resolution {
        match ans {
            CachedAnswer::Positive { records, rrsigs } => {
                let validation = if self.config.validate {
                    Some(self.validate_rrset(&records, &rrsigs, now))
                } else {
                    None
                };
                Resolution { chain, records, rrsigs, rcode: Rcode::NoError, validation, from_cache }
            }
            CachedAnswer::Negative { rcode } => Resolution {
                chain,
                records: Vec::new(),
                rrsigs: Vec::new(),
                rcode,
                validation: None,
                from_cache,
            },
        }
    }

    /// One authoritative round: select endpoints for the deepest zone and
    /// try them in fallback order.
    fn query_authority(
        &self,
        name: &DnsName,
        rtype: RecordType,
    ) -> Result<AuthorityReply, ResolveError> {
        let (apex, endpoints) = self
            .registry
            .find_authority(name)
            .ok_or_else(|| ResolveError::NoAuthority(name.clone()))?;
        let order = self.selector.pick_order(&apex.key(), &endpoints);
        if order.is_empty() {
            return Err(ResolveError::NoAuthority(name.clone()));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let query = Message::query_dnssec(id, name.clone(), rtype);
        let wire = query.encode();
        let mut last_err = ResolveError::Lame(apex.clone());
        for ep in order {
            match self.network.send_datagram(ep.ip, 53, &wire) {
                Ok(bytes) => match AuthorityReply::parse(&bytes) {
                    Some(resp) if resp.rcode == Rcode::Refused => {
                        last_err = ResolveError::Lame(apex.clone());
                        continue;
                    }
                    Some(resp) => return Ok(resp),
                    None => {
                        last_err = ResolveError::Malformed;
                        continue;
                    }
                },
                Err(e) => {
                    last_err = ResolveError::Network(e);
                    continue;
                }
            }
        }
        Err(last_err)
    }

    pub(crate) fn cache_answer_sections(&self, answers: &[Record], now: Timestamp) {
        use std::collections::HashMap;
        let mut sets: HashMap<(String, u16), Vec<Record>> = HashMap::new();
        for rec in answers {
            if rec.rtype == RecordType::Rrsig {
                continue;
            }
            sets.entry((rec.name.key(), rec.rtype.code())).or_default().push(rec.clone());
        }
        for ((_, tcode), records) in sets {
            let name = records[0].name.clone();
            let rtype = RecordType::from_code(tcode);
            let rrsigs: Vec<RrsigRdata> = answers
                .iter()
                .filter(|r| r.rtype == RecordType::Rrsig && r.name == name)
                .filter_map(|r| match &r.rdata {
                    RData::Rrsig(s) if s.type_covered == rtype => Some(s.clone()),
                    _ => None,
                })
                .collect();
            self.cache.insert_positive(&name, rtype, records, rrsigs, now);
        }
    }

    fn validate_rrset(
        &self,
        records: &[Record],
        rrsigs: &[RrsigRdata],
        now: Timestamp,
    ) -> ValidationState {
        let mut source = ResolverChainSource { resolver: self };
        self.validator.validate(records, rrsigs, &mut source, now.0.min(u32::MAX as u64) as u32)
    }
}

/// `ChainSource` over the resolver: DNSKEY from the zone's own servers,
/// DS from the parent zone's servers (both with the DO bit, both cached).
struct ResolverChainSource<'a> {
    resolver: &'a RecursiveResolver,
}

impl ChainSource for ResolverChainSource<'_> {
    fn dnskeys(&mut self, zone: &DnsName) -> Option<(Vec<DnskeyRdata>, Vec<RrsigRdata>)> {
        let r = self.resolver;
        let now = r.network.clock().now();
        let (records, rrsigs) = match r.cache.get(zone, RecordType::Dnskey, now) {
            Some(CachedAnswer::Positive { records, rrsigs }) => (records, rrsigs),
            Some(CachedAnswer::Negative { .. }) => return None,
            None => {
                let resp = r.query_authority(zone, RecordType::Dnskey).ok()?;
                r.cache_answer_sections(&resp.answers, now);
                let records = extract_rrset(&resp.answers, zone, RecordType::Dnskey);
                if records.is_empty() {
                    let ttl = resp.negative_ttl(r.config.default_negative_ttl);
                    r.cache.insert_negative(zone, RecordType::Dnskey, resp.rcode, ttl, now);
                    return None;
                }
                let rrsigs = extract_rrsigs(&resp.answers, zone, RecordType::Dnskey);
                (records, rrsigs)
            }
        };
        let keys: Vec<DnskeyRdata> = records
            .iter()
            .filter_map(|rec| match &rec.rdata {
                RData::Dnskey(k) => Some(k.clone()),
                _ => None,
            })
            .collect();
        if keys.is_empty() {
            None
        } else {
            Some((keys, rrsigs))
        }
    }

    fn ds_set(&mut self, zone: &DnsName) -> Option<Vec<DsRdata>> {
        let r = self.resolver;
        let now = r.network.clock().now();
        let records = match r.cache.get(zone, RecordType::Ds, now) {
            Some(CachedAnswer::Positive { records, .. }) => records,
            Some(CachedAnswer::Negative { .. }) => return None,
            None => {
                // DS lives in the parent zone.
                let (_, endpoints) = r.registry.find_parent_authority(zone)?;
                let order = r.selector.pick_order(&format!("ds:{}", zone.key()), &endpoints);
                let id = r.next_id.fetch_add(1, Ordering::Relaxed);
                let query = Message::query_dnssec(id, zone.clone(), RecordType::Ds);
                let wire = query.encode();
                let mut found: Option<AuthorityReply> = None;
                for ep in order {
                    if let Ok(bytes) = r.network.send_datagram(ep.ip, 53, &wire) {
                        if let Some(resp) = AuthorityReply::parse(&bytes) {
                            if resp.rcode != Rcode::Refused {
                                found = Some(resp);
                                break;
                            }
                        }
                    }
                }
                let resp = found?;
                let records = extract_rrset(&resp.answers, zone, RecordType::Ds);
                if records.is_empty() {
                    let ttl = resp.negative_ttl(r.config.default_negative_ttl);
                    r.cache.insert_negative(zone, RecordType::Ds, resp.rcode, ttl, now);
                    return None;
                }
                let rrsigs = extract_rrsigs(&resp.answers, zone, RecordType::Ds);
                r.cache.insert_positive(zone, RecordType::Ds, records.clone(), rrsigs, now);
                records
            }
        };
        let set: Vec<DsRdata> = records
            .iter()
            .filter_map(|rec| match &rec.rdata {
                RData::Ds(d) => Some(d.clone()),
                _ => None,
            })
            .collect();
        if set.is_empty() {
            None
        } else {
            Some(set)
        }
    }
}

/// A resolver exposed as a datagram service (a "public resolver" such as
/// 8.8.8.8 in the testbed). Sets RA and the AD bit per validation.
impl DatagramService for RecursiveResolver {
    fn handle(&self, request: &[u8], _now: Timestamp) -> Result<Vec<u8>, NetError> {
        let Ok(query) = Message::decode(request) else {
            return Err(NetError::Reset);
        };
        let mut resp = query.response();
        let Some(q) = query.question() else {
            resp.rcode = Rcode::FormErr;
            return Ok(resp.encode());
        };
        match self.resolve(&q.name, q.qtype) {
            Ok(res) => {
                resp.rcode = res.rcode;
                resp.flags.ad = res.ad();
                resp.answers.extend(res.chain.clone());
                resp.answers.extend(res.records.clone());
                if query.dnssec_ok() {
                    for sig in &res.rrsigs {
                        if let Some(first) = res.records.first() {
                            resp.answers.push(Record::with_type(
                                first.name.clone(),
                                RecordType::Rrsig,
                                first.ttl,
                                RData::Rrsig(sig.clone()),
                            ));
                        }
                    }
                }
            }
            Err(_) => {
                resp.rcode = Rcode::ServFail;
            }
        }
        Ok(resp.encode())
    }
}

/// The slice of an authority response the resolver actually consumes,
/// lifted off a borrowed [`MessageView`]. Only answer-section records
/// are materialized (they feed the [`RecordCache`]); the authority
/// section is scanned lazily for the first SOA's negative TTL, and
/// additional-section rdata is never decoded at all.
pub(crate) struct AuthorityReply {
    pub(crate) rcode: Rcode,
    pub(crate) answers: Vec<Record>,
    /// `min(SOA minimum, SOA TTL)` from the authority section, if any.
    soa_negative_ttl: Option<u32>,
}

impl AuthorityReply {
    /// Parse a response datagram. `None` means malformed: a structural
    /// error anywhere, or undecodable rdata in a record we consume.
    pub(crate) fn parse(bytes: &[u8]) -> Option<AuthorityReply> {
        let view = MessageView::parse(bytes).ok()?;
        let mut answers = Vec::with_capacity(view.answer_count());
        for rec in view.answers() {
            answers.push(rec.to_owned().ok()?);
        }
        let mut soa_negative_ttl = None;
        for rec in view.authorities() {
            if rec.rtype() == RecordType::Soa {
                match rec.rdata().ok()? {
                    RData::Soa(soa) => {
                        soa_negative_ttl = Some(soa.minimum.min(rec.ttl()));
                        break;
                    }
                    _ => continue,
                }
            }
        }
        Some(AuthorityReply { rcode: view.rcode(), answers, soa_negative_ttl })
    }

    pub(crate) fn negative_ttl(&self, default: u32) -> u32 {
        self.soa_negative_ttl.unwrap_or(default)
    }
}

pub(crate) fn extract_rrset(answers: &[Record], name: &DnsName, rtype: RecordType) -> Vec<Record> {
    answers.iter().filter(|r| r.rtype == rtype && r.name == *name).cloned().collect()
}

pub(crate) fn extract_rrsigs(
    answers: &[Record],
    name: &DnsName,
    rtype: RecordType,
) -> Vec<RrsigRdata> {
    answers
        .iter()
        .filter(|r| r.rtype == RecordType::Rrsig && r.name == *name)
        .filter_map(|r| match &r.rdata {
            RData::Rrsig(s) if s.type_covered == rtype => Some(s.clone()),
            _ => None,
        })
        .collect()
}
