//! # resolver
//!
//! A recursive caching DNS resolver over the simulated network:
//! delegation-registry-driven authority lookup, pluggable name-server
//! selection, cross-zone CNAME chasing, TTL-faithful positive/negative
//! caching, DNSSEC chain validation with AD-bit semantics, and a
//! [`netsim::DatagramService`] implementation so it can be bound to an IP
//! and used as a "public resolver" by browsers and scanners.

#![warn(missing_docs)]

pub mod cache;
pub mod resolver;
pub mod selection;

pub use cache::{CacheStats, CachedAnswer, RecordCache};
pub use resolver::{Resolution, ResolveError, ResolverConfig, RecursiveResolver};
pub use selection::{NsSelector, SelectionStrategy};
