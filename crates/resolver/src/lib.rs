//! # resolver
//!
//! A recursive caching DNS resolver over the simulated network:
//! delegation-registry-driven authority lookup, pluggable name-server
//! selection, cross-zone CNAME chasing, TTL-faithful positive/negative
//! caching, DNSSEC chain validation with AD-bit semantics, named
//! [`VantagePoint`] profiles modelling public-resolver behaviours, and a
//! [`netsim::DatagramService`] implementation so it can be bound to an IP
//! and used as a "public resolver" by browsers and scanners.

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod eventloop;
pub mod pool;
pub mod resolver;
pub mod selection;
pub mod vantage;

pub use cache::{CacheStats, CachedAnswer, EvictionPolicy, RecordCache, DEFAULT_SHARDS};
pub use engine::{BatchTiming, EngineBackend, Query, QueryEngine};
pub use eventloop::EventLoopStats;
pub use pool::WorkerPool;
pub use resolver::{RecursiveResolver, Resolution, ResolveError, ResolverConfig};
pub use selection::{NsSelector, SelectionStrategy};
pub use vantage::VantagePoint;
