//! The resolver's TTL-driven record cache, sharded for concurrency and
//! (optionally) bounded with pluggable eviction.
//!
//! Cache staleness is the mechanism behind two of the paper's findings:
//! IP-hint/A mismatches persisting after synchronized zone updates
//! (§4.3.5) and ECH key mismatches under hourly rotation (§4.4.2). The
//! cache therefore keeps precise per-entry expiry against the simulated
//! clock, plus negative entries with SOA-minimum TTLs.
//!
//! ## Sharding
//!
//! The cache is split into N independent shards, each guarded by its own
//! [`parking_lot::Mutex`]. A lookup or insert hashes the **owner name**
//! (case-folded, via FNV-1a) and touches exactly one shard, so batch
//! workloads ([`crate::engine::QueryEngine::resolve_batch`]) scale with
//! available threads instead of serializing on a single lock. All entries
//! for one owner name land in one shard regardless of record type, which
//! keeps a CNAME-chase for a name on a single lock path.
//!
//! Sharding is invisible in the API: statistics aggregate across shards,
//! and behaviour (hits, misses, expirations, eviction) is identical for
//! any shard count — a property pinned by this module's tests.
//!
//! ## Bounded eviction
//!
//! By default the cache is unbounded (the scanner campaigns want every
//! observation retained); a production resolver serving client traffic
//! cannot afford that, so [`RecordCache::with_eviction`] adds a
//! per-shard capacity with a pluggable [`EvictionPolicy`]. On overflow a
//! shard first sweeps entries that are already TTL-expired (counted in
//! [`CacheStats::swept`]) and only then evicts live entries under the
//! policy (counted in [`CacheStats::evictions`]):
//!
//! - [`TtlSweepLru`](EvictionPolicy::TtlSweepLru): classic LRU over a
//!   recency order; has the stack/inclusion property, so hit rate is
//!   monotone non-decreasing in capacity on a replayed trace.
//! - [`S3Fifo`](EvictionPolicy::S3Fifo): the scan-resistant small/main
//!   FIFO pair with a ghost queue of recently evicted fingerprints
//!   (Yang et al., SOSP'23 shape). One-hit-wonders wash out of the small
//!   queue; re-admissions after a ghost hit go straight to main.
//!
//! All eviction bookkeeping uses explicitly ordered structures
//! (`BTreeMap`/`VecDeque` keyed by a per-shard monotonic sequence), never
//! `HashMap` iteration order, so the victim sequence is deterministic and
//! byte-identical across runs. Unbounded caches skip the index
//! maintenance entirely — the hot path cost of the default configuration
//! is unchanged.
//!
//! ## Statistics
//!
//! Each shard carries its own lock-free [`CacheStats`] counters (plain
//! relaxed atomics, updated outside the entry mutex), so reading
//! [`RecordCache::stats`] or [`RecordCache::shard_stats`] never takes a
//! lock and never perturbs concurrent lookups. Misses distinguish
//! *absent* (nothing stored) from *expired* (a dead entry was found and
//! evicted), and hits on negative entries are surfaced separately —
//! the split the paper's cache-behaviour comparisons need. Each shard
//! also counts hot-path lock acquisitions and contended acquisitions
//! (a contention proxy; see the README's single-CPU caveat).

use dns_wire::record::RrsigRdata;
use dns_wire::{DnsName, Rcode, Record, RecordType};
use netsim::Timestamp;
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default shard count: enough to keep a typical worker fan-out (the
/// scanner uses 4–8 threads) contention-free without wasting memory on
/// tiny caches.
pub const DEFAULT_SHARDS: usize = 16;

/// How a bounded shard chooses a victim once TTL-expired entries have
/// been swept and the shard is still over capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Sweep TTL-expired entries first, then evict the least recently
    /// *used* live entry (lookup hits refresh recency). LRU has the
    /// inclusion property: a larger cache's contents are a superset of a
    /// smaller one's on the same trace, so hit rate is monotone in
    /// capacity.
    #[default]
    TtlSweepLru,
    /// Sweep TTL-expired entries first, then run the S3-FIFO victim
    /// scan: a small probationary FIFO (~10% of capacity) absorbs
    /// one-hit-wonders, entries hit at least once promote to the main
    /// FIFO, and a ghost queue of evicted-key fingerprints re-admits
    /// recently evicted keys straight into main. Scan-resistant, but not
    /// a stack algorithm (no monotonicity guarantee).
    S3Fifo,
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictionPolicy::TtlSweepLru => write!(f, "TtlSweepLru"),
            EvictionPolicy::S3Fifo => write!(f, "S3Fifo"),
        }
    }
}

impl std::str::FromStr for EvictionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<EvictionPolicy, String> {
        match s.to_ascii_lowercase().as_str() {
            "lru" | "ttl-lru" | "ttlsweeplru" => Ok(EvictionPolicy::TtlSweepLru),
            "s3fifo" | "s3-fifo" => Ok(EvictionPolicy::S3Fifo),
            other => Err(format!("unknown eviction policy {other:?} (expected lru|s3fifo)")),
        }
    }
}

/// A positive or negative cached answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// A cached RRset with its signatures.
    Positive {
        /// The records of the set.
        records: Vec<Record>,
        /// Covering RRSIGs (as fetched with the DO bit).
        rrsigs: Vec<RrsigRdata>,
    },
    /// A cached negative answer (NODATA or NXDOMAIN).
    Negative {
        /// The rcode that produced the entry.
        rcode: Rcode,
    },
}

type Key = (String, u16);

/// Which S3-FIFO queue an entry's live slot sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueId {
    /// Not enqueued (unbounded cache, or the LRU policy).
    None,
    /// The probationary small FIFO.
    Small,
    /// The main FIFO.
    Main,
}

#[derive(Debug, Clone)]
struct Entry {
    answer: CachedAnswer,
    inserted: Timestamp,
    expires: Timestamp,
    /// Insertion stamp from the shard's monotonic sequence; fixed for
    /// the entry's lifetime and used as the expiry-index tiebreaker.
    seq: u64,
    /// Recency stamp keying the LRU order map; refreshed on every hit
    /// under [`EvictionPolicy::TtlSweepLru`].
    touch: u64,
    /// S3-FIFO: which queue holds this entry's live slot.
    queue: QueueId,
    /// S3-FIFO: stamp of the live queue slot. Queue elements carrying an
    /// older stamp are stale and skipped by the victim scan.
    slot: u64,
    /// S3-FIFO: saturating hit counter (capped at 3).
    freq: u8,
}

/// Statistics snapshot for cache behaviour analysis and ablations.
///
/// A point-in-time copy of one shard's (or the whole cache's) lock-free
/// counters. Misses are split by cause — [`miss_absent`](Self::miss_absent)
/// vs [`miss_expired`](Self::miss_expired) — and hits on negative
/// entries are counted separately in
/// [`negative_hits`](Self::negative_hits) (they are also included in
/// [`hits`](Self::hits)). Bounded caches additionally count capacity
/// [`evictions`](Self::evictions) and TTL-sweep removals
/// ([`swept`](Self::swept)); both stay zero for unbounded caches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a live entry (positive or negative).
    pub hits: u64,
    /// Subset of [`hits`](Self::hits) that returned a cached negative
    /// answer (NODATA/NXDOMAIN).
    pub negative_hits: u64,
    /// Lookups that found nothing stored under the key.
    pub miss_absent: u64,
    /// Lookups that found only an expired entry (which was evicted).
    pub miss_expired: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Hot-path (get/insert/age) acquisitions of the shard entry lock.
    pub lock_acquisitions: u64,
    /// Hot-path acquisitions that found the lock already held and had
    /// to block — a cross-thread contention proxy. Scheduling-dependent,
    /// so excluded from determinism comparisons (and near-meaningless on
    /// a single-CPU host, where threads rarely overlap).
    pub lock_contended: u64,
    /// Live entries evicted by the capacity policy (bounded caches only).
    pub evictions: u64,
    /// TTL-expired entries removed by an overflow sweep or
    /// [`RecordCache::purge_expired`] (read-path expiry removals are
    /// counted in [`miss_expired`](Self::miss_expired) instead).
    pub swept: u64,
}

impl CacheStats {
    /// Total misses, either cause.
    pub fn misses(&self) -> u64 {
        self.miss_absent + self.miss_expired
    }

    /// Entries evicted by the read path because they had expired: a dead
    /// entry is always removed by the lookup that finds it, so this
    /// equals [`miss_expired`](Self::miss_expired). Sweep/purge removals
    /// are counted separately in [`swept`](Self::swept).
    pub fn expirations(&self) -> u64 {
        self.miss_expired
    }

    /// Total lookups that counted a hit or a miss.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Hit fraction of all lookups (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Accumulate another snapshot into this one (shard aggregation,
    /// multi-vantage roll-ups).
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.negative_hits += other.negative_hits;
        self.miss_absent += other.miss_absent;
        self.miss_expired += other.miss_expired;
        self.insertions += other.insertions;
        self.lock_acquisitions += other.lock_acquisitions;
        self.lock_contended += other.lock_contended;
        self.evictions += other.evictions;
        self.swept += other.swept;
    }
}

/// The canonical one-line rendering used by telemetry reports and the
/// bench regeneration output.
impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} negative_hits={} miss_absent={} miss_expired={} insertions={} \
             lock_acquisitions={} lock_contended={} evictions={} swept={} hit_rate={:.4}",
            self.hits,
            self.negative_hits,
            self.miss_absent,
            self.miss_expired,
            self.insertions,
            self.lock_acquisitions,
            self.lock_contended,
            self.evictions,
            self.swept,
            self.hit_rate()
        )
    }
}

/// One shard's live counters: relaxed atomics bumped outside the entry
/// mutex, so `stats()` readers and concurrent writers never serialize
/// on statistics. (The old design kept a `CacheStats` inside the shard
/// mutex and locked every shard to aggregate.)
#[derive(Default)]
struct ShardCounters {
    hits: AtomicU64,
    negative_hits: AtomicU64,
    miss_absent: AtomicU64,
    miss_expired: AtomicU64,
    insertions: AtomicU64,
    lock_acquisitions: AtomicU64,
    lock_contended: AtomicU64,
    evictions: AtomicU64,
    swept: AtomicU64,
}

impl ShardCounters {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            miss_absent: self.miss_absent.load(Ordering::Relaxed),
            miss_expired: self.miss_expired.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            lock_contended: self.lock_contended.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            swept: self.swept.load(Ordering::Relaxed),
        }
    }
}

/// A shard's mutable state: the entry map plus the eviction indexes.
///
/// The indexes (`lru`, `expiry`, the S3-FIFO queues) are maintained only
/// for bounded caches; unbounded shards leave them empty so the default
/// hot path pays nothing for the eviction layer.
#[derive(Default)]
struct ShardInner {
    entries: HashMap<Key, Entry>,
    /// Monotonic per-shard stamp source for `seq`/`touch`/`slot`.
    next_seq: u64,
    /// LRU recency order: `touch` stamp → key (TtlSweepLru only).
    lru: BTreeMap<u64, Key>,
    /// Expiry order: `(expiry second, seq)` → key, so the TTL sweep pops
    /// dead entries without scanning the map.
    expiry: BTreeMap<(u64, u64), Key>,
    /// S3-FIFO probationary queue of `(slot stamp, key)`.
    small: VecDeque<(u64, Key)>,
    /// S3-FIFO main queue of `(slot stamp, key)`.
    main: VecDeque<(u64, Key)>,
    /// S3-FIFO ghost FIFO of evicted-key fingerprints (trim order).
    ghost: VecDeque<u64>,
    /// S3-FIFO ghost membership set.
    ghost_set: HashSet<u64>,
}

impl ShardInner {
    /// Remove an entry and its index bookkeeping (stale S3-FIFO queue
    /// slots are left behind and skipped lazily by the victim scan).
    fn remove_entry(&mut self, key: &Key) -> Option<Entry> {
        let entry = self.entries.remove(key)?;
        self.lru.remove(&entry.touch);
        self.expiry.remove(&(entry.expires.0, entry.seq));
        Some(entry)
    }

    /// Pop entries whose expiry second is `<= now` off the expiry index.
    /// Returns the number removed. Bounded shards only (the index is
    /// empty otherwise).
    fn sweep_expired(&mut self, now: Timestamp) -> u64 {
        let mut swept = 0;
        while let Some((&(exp_secs, seq), _)) = self.expiry.iter().next() {
            if exp_secs > now.0 {
                break;
            }
            let key = self.expiry.remove(&(exp_secs, seq)).expect("expiry head vanished");
            if let Some(entry) = self.entries.remove(&key) {
                self.lru.remove(&entry.touch);
                swept += 1;
            }
        }
        swept
    }

    /// Record an evicted key's fingerprint in the ghost queue, trimmed
    /// to one capacity's worth of history.
    fn ghost_insert(&mut self, fp: u64, capacity: usize) {
        if self.ghost_set.insert(fp) {
            self.ghost.push_back(fp);
            while self.ghost.len() > capacity {
                if let Some(old) = self.ghost.pop_front() {
                    self.ghost_set.remove(&old);
                }
            }
        }
    }

    /// Evict one live entry under `bound`'s policy. Returns false if no
    /// victim could be found (empty shard).
    fn evict_one(&mut self, bound: Bound) -> bool {
        match bound.policy {
            EvictionPolicy::TtlSweepLru => {
                let Some((&touch, _)) = self.lru.iter().next() else {
                    return false;
                };
                let key = self.lru.remove(&touch).expect("lru head vanished");
                match self.entries.remove(&key) {
                    Some(entry) => {
                        self.expiry.remove(&(entry.expires.0, entry.seq));
                        true
                    }
                    None => false,
                }
            }
            EvictionPolicy::S3Fifo => self.evict_s3fifo(bound.capacity),
        }
    }

    /// The S3-FIFO victim scan: drain stale slots, promote small-queue
    /// entries that earned a hit, recycle main-queue entries with
    /// remaining frequency, evict the first entry found cold.
    fn evict_s3fifo(&mut self, capacity: usize) -> bool {
        let small_target = (capacity / 10).max(1);
        loop {
            if self.small.is_empty() && self.main.is_empty() {
                return false;
            }
            let use_small = if self.small.is_empty() {
                false
            } else if self.main.is_empty() {
                true
            } else {
                self.small.len() > small_target
            };
            if use_small {
                let Some((slot, key)) = self.small.pop_front() else {
                    continue;
                };
                let live = matches!(self.entries.get(&key),
                    Some(e) if e.queue == QueueId::Small && e.slot == slot);
                if !live {
                    continue;
                }
                let hit = self.entries.get(&key).map(|e| e.freq > 0).unwrap_or(false);
                if hit {
                    // Earned a hit during probation: promote to main.
                    self.next_seq += 1;
                    let stamp = self.next_seq;
                    if let Some(e) = self.entries.get_mut(&key) {
                        e.queue = QueueId::Main;
                        e.slot = stamp;
                        e.freq = 0;
                    }
                    self.main.push_back((stamp, key));
                } else {
                    let entry = self.entries.remove(&key).expect("live small entry vanished");
                    self.lru.remove(&entry.touch);
                    self.expiry.remove(&(entry.expires.0, entry.seq));
                    self.ghost_insert(ghost_fp(&key), capacity);
                    return true;
                }
            } else {
                let Some((slot, key)) = self.main.pop_front() else {
                    continue;
                };
                let live = matches!(self.entries.get(&key),
                    Some(e) if e.queue == QueueId::Main && e.slot == slot);
                if !live {
                    continue;
                }
                let hot = self.entries.get(&key).map(|e| e.freq > 0).unwrap_or(false);
                if hot {
                    // Still warm: spend one frequency unit and recycle.
                    self.next_seq += 1;
                    let stamp = self.next_seq;
                    if let Some(e) = self.entries.get_mut(&key) {
                        e.freq -= 1;
                        e.slot = stamp;
                    }
                    self.main.push_back((stamp, key));
                } else {
                    let entry = self.entries.remove(&key).expect("live main entry vanished");
                    self.lru.remove(&entry.touch);
                    self.expiry.remove(&(entry.expires.0, entry.seq));
                    return true;
                }
            }
        }
    }
}

#[derive(Default)]
struct Shard {
    inner: Mutex<ShardInner>,
    stats: ShardCounters,
}

impl Shard {
    /// Acquire the shard lock on a hot path, counting the acquisition
    /// and whether it had to block behind another holder.
    fn lock_inner(&self) -> MutexGuard<'_, ShardInner> {
        self.stats.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        match self.inner.try_lock() {
            Some(guard) => guard,
            None => {
                self.stats.lock_contended.fetch_add(1, Ordering::Relaxed);
                self.inner.lock()
            }
        }
    }
}

/// The per-shard capacity bound and its eviction policy.
#[derive(Debug, Clone, Copy)]
struct Bound {
    capacity: usize,
    policy: EvictionPolicy,
}

/// TTL cache keyed by `(owner name, record type)`, sharded by owner name.
pub struct RecordCache {
    shards: Vec<Shard>,
    /// Optional TTL clamp (seconds); `Some(c)` caps every entry's
    /// lifetime at `c`, the knob used by the Fig 12 ablation.
    ttl_clamp: Option<u32>,
    /// Per-shard capacity + policy; `None` = unbounded (the default).
    bound: Option<Bound>,
}

impl Default for RecordCache {
    fn default() -> RecordCache {
        RecordCache::with_config(DEFAULT_SHARDS, None)
    }
}

/// FNV-1a over the case-folded owner key; stable across runs (no
/// `RandomState`), so shard assignment is deterministic. Shared with
/// the engine's worker-affinity partition, which must use the same
/// stable hash.
pub(crate) fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Stable fingerprint of a cache key for the S3-FIFO ghost queue.
fn ghost_fp(key: &Key) -> u64 {
    fnv1a(&key.0) ^ (key.1 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl RecordCache {
    /// An empty cache with the default shard count and no TTL clamp.
    pub fn new() -> RecordCache {
        RecordCache::default()
    }

    /// An empty cache clamping every TTL at `clamp` seconds.
    pub fn with_ttl_clamp(clamp: u32) -> RecordCache {
        RecordCache::with_config(DEFAULT_SHARDS, Some(clamp))
    }

    /// An empty cache with `shards` shards (minimum 1) and no clamp.
    pub fn with_shards(shards: usize) -> RecordCache {
        RecordCache::with_config(shards, None)
    }

    /// An empty unbounded cache with explicit shard count and optional
    /// TTL clamp.
    pub fn with_config(shards: usize, ttl_clamp: Option<u32>) -> RecordCache {
        let n = shards.max(1);
        RecordCache { shards: (0..n).map(|_| Shard::default()).collect(), ttl_clamp, bound: None }
    }

    /// An empty **bounded** cache: at most `capacity_per_shard` entries
    /// per shard (minimum 1), evicting under `policy` on overflow.
    pub fn with_eviction(
        shards: usize,
        ttl_clamp: Option<u32>,
        capacity_per_shard: usize,
        policy: EvictionPolicy,
    ) -> RecordCache {
        let mut cache = RecordCache::with_config(shards, ttl_clamp);
        cache.bound = Some(Bound { capacity: capacity_per_shard.max(1), policy });
        cache
    }

    /// Number of shards (for benches and diagnostics).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard capacity bound, if this cache is bounded.
    pub fn capacity_per_shard(&self) -> Option<usize> {
        self.bound.map(|b| b.capacity)
    }

    /// The eviction policy, if this cache is bounded.
    pub fn eviction_policy(&self) -> Option<EvictionPolicy> {
        self.bound.map(|b| b.policy)
    }

    fn shard_for(&self, owner_key: &str) -> &Shard {
        let idx = (fnv1a(owner_key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    fn effective_ttl(&self, ttl: u32) -> u32 {
        match self.ttl_clamp {
            Some(clamp) => ttl.min(clamp),
            None => ttl,
        }
    }

    /// Shared store path: stamp the entry, refresh indexes, and resolve
    /// any overflow (TTL sweep first, then policy eviction) — all under
    /// one hot-path lock acquisition.
    fn store(&self, key: Key, answer: CachedAnswer, now: Timestamp, ttl: u32) {
        let shard = self.shard_for(&key.0);
        shard.stats.insertions.fetch_add(1, Ordering::Relaxed);
        let expires = now.plus(ttl as u64);
        let mut inner = shard.lock_inner();
        inner.next_seq += 1;
        let seq = inner.next_seq;
        let mut entry = Entry {
            answer,
            inserted: now,
            expires,
            seq,
            touch: seq,
            queue: QueueId::None,
            slot: 0,
            freq: 0,
        };
        let Some(bound) = self.bound else {
            inner.entries.insert(key, entry);
            return;
        };
        if let Some(old) = inner.entries.get(&key) {
            let (old_touch, old_exp, old_seq) = (old.touch, old.expires.0, old.seq);
            let (old_queue, old_slot, old_freq) = (old.queue, old.slot, old.freq);
            inner.lru.remove(&old_touch);
            inner.expiry.remove(&(old_exp, old_seq));
            if bound.policy == EvictionPolicy::S3Fifo && old_queue != QueueId::None {
                // A refresh keeps the entry's queue position and heat.
                entry.queue = old_queue;
                entry.slot = old_slot;
                entry.freq = old_freq;
            }
        }
        inner.expiry.insert((expires.0, seq), key.clone());
        match bound.policy {
            EvictionPolicy::TtlSweepLru => {
                inner.lru.insert(seq, key.clone());
            }
            EvictionPolicy::S3Fifo => {
                if entry.queue == QueueId::None {
                    entry.slot = seq;
                    if inner.ghost_set.remove(&ghost_fp(&key)) {
                        entry.queue = QueueId::Main;
                        inner.main.push_back((seq, key.clone()));
                    } else {
                        entry.queue = QueueId::Small;
                        inner.small.push_back((seq, key.clone()));
                    }
                }
            }
        }
        inner.entries.insert(key, entry);
        if inner.entries.len() > bound.capacity {
            let swept = inner.sweep_expired(now);
            let mut evicted = 0u64;
            while inner.entries.len() > bound.capacity {
                if inner.evict_one(bound) {
                    evicted += 1;
                } else {
                    break;
                }
            }
            drop(inner);
            if swept > 0 {
                shard.stats.swept.fetch_add(swept, Ordering::Relaxed);
            }
            if evicted > 0 {
                shard.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Insert a positive RRset observed at `now`.
    pub fn insert_positive(
        &self,
        name: &DnsName,
        rtype: RecordType,
        records: Vec<Record>,
        rrsigs: Vec<RrsigRdata>,
        now: Timestamp,
    ) {
        if records.is_empty() {
            return;
        }
        let ttl = self.effective_ttl(records.iter().map(|r| r.ttl).min().unwrap_or(0));
        let key = (name.key(), rtype.code());
        self.store(key, CachedAnswer::Positive { records, rrsigs }, now, ttl);
    }

    /// Insert a negative answer with the given TTL (typically the SOA
    /// minimum).
    pub fn insert_negative(
        &self,
        name: &DnsName,
        rtype: RecordType,
        rcode: Rcode,
        ttl: u32,
        now: Timestamp,
    ) {
        let ttl = self.effective_ttl(ttl);
        let key = (name.key(), rtype.code());
        self.store(key, CachedAnswer::Negative { rcode }, now, ttl);
    }

    /// Fetch a live entry; expired entries are evicted. On a bounded
    /// cache a hit also refreshes the entry's recency (LRU) or heat
    /// (S3-FIFO) under the same lock acquisition.
    pub fn get(&self, name: &DnsName, rtype: RecordType, now: Timestamp) -> Option<CachedAnswer> {
        let key = (name.key(), rtype.code());
        let shard = self.shard_for(&key.0);
        let mut inner = shard.lock_inner();
        enum Looked {
            Hit { answer: CachedAnswer, negative: bool, touch: u64 },
            Dead,
            Absent,
        }
        let looked = match inner.entries.get(&key) {
            Some(entry) if entry.expires > now => Looked::Hit {
                answer: entry.answer.clone(),
                negative: matches!(entry.answer, CachedAnswer::Negative { .. }),
                touch: entry.touch,
            },
            Some(_) => Looked::Dead,
            None => Looked::Absent,
        };
        match looked {
            Looked::Absent => {
                drop(inner);
                shard.stats.miss_absent.fetch_add(1, Ordering::Relaxed);
                None
            }
            Looked::Dead => {
                inner.remove_entry(&key);
                drop(inner);
                shard.stats.miss_expired.fetch_add(1, Ordering::Relaxed);
                None
            }
            Looked::Hit { answer, negative, touch } => {
                if let Some(bound) = self.bound {
                    match bound.policy {
                        EvictionPolicy::TtlSweepLru => {
                            inner.next_seq += 1;
                            let stamp = inner.next_seq;
                            inner.lru.remove(&touch);
                            inner.lru.insert(stamp, key.clone());
                            if let Some(entry) = inner.entries.get_mut(&key) {
                                entry.touch = stamp;
                            }
                        }
                        EvictionPolicy::S3Fifo => {
                            if let Some(entry) = inner.entries.get_mut(&key) {
                                entry.freq = (entry.freq + 1).min(3);
                            }
                        }
                    }
                }
                drop(inner);
                shard.stats.hits.fetch_add(1, Ordering::Relaxed);
                if negative {
                    shard.stats.negative_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(answer)
            }
        }
    }

    /// Age in seconds of the live entry at (name, type), if any.
    pub fn age(&self, name: &DnsName, rtype: RecordType, now: Timestamp) -> Option<u64> {
        let key = (name.key(), rtype.code());
        let shard = self.shard_for(&key.0);
        let inner = shard.lock_inner();
        inner.entries.get(&key).filter(|e| e.expires > now).map(|e| now.since(e.inserted))
    }

    /// Drop every entry (the testbed's "clear local DNS cache" step).
    pub fn flush(&self) {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            inner.entries.clear();
            inner.lru.clear();
            inner.expiry.clear();
            inner.small.clear();
            inner.main.clear();
            inner.ghost.clear();
            inner.ghost_set.clear();
        }
    }

    /// Remove every entry that has expired as of `now` and return how
    /// many were removed. Unlike read-path expiry (which only removes
    /// the entry a lookup stumbles over), this reclaims *all* dead
    /// entries — the maintenance sweep a long-running serving process
    /// needs. Removals are counted in [`CacheStats::swept`].
    ///
    /// A maintenance path: its lock acquisitions are deliberately not
    /// counted in [`CacheStats::lock_acquisitions`].
    pub fn purge_expired(&self, now: Timestamp) -> u64 {
        let mut total = 0;
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            let removed = if self.bound.is_some() {
                inner.sweep_expired(now)
            } else {
                let before = inner.entries.len();
                inner.entries.retain(|_, e| e.expires > now);
                (before - inner.entries.len()) as u64
            };
            drop(inner);
            if removed > 0 {
                shard.stats.swept.fetch_add(removed, Ordering::Relaxed);
                total += removed;
            }
        }
        total
    }

    /// Current statistics snapshot, aggregated across shards. Lock-free:
    /// reads each shard's atomic counters without touching entry locks.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(shard.stats.snapshot());
        }
        total
    }

    /// Per-shard statistics snapshots, in shard-index order (for the
    /// telemetry report's shard-balance and contention views).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.stats.snapshot()).collect()
    }

    /// Number of entries currently stored (live and expired-but-unswept).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().entries.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.inner.lock().entries.is_empty())
    }

    /// Per-shard entry counts, in shard-index order (capacity-bound
    /// diagnostics; each value is `<= capacity_per_shard()` for a
    /// bounded cache).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.inner.lock().entries.len()).collect()
    }

    /// Rough resident size of the cached data in bytes. A deliberately
    /// cheap heuristic (fixed per-record/per-signature costs plus key
    /// and map-slot overhead), **not** an allocator measurement — use it
    /// for relative comparisons (capacity curves, growth over a
    /// campaign), not absolute memory accounting.
    pub fn approx_bytes(&self) -> usize {
        const SLOT_OVERHEAD: usize = 48;
        const RECORD_COST: usize = 96;
        const RRSIG_COST: usize = 128;
        let mut bytes = 0;
        for shard in &self.shards {
            let inner = shard.inner.lock();
            for ((owner, _), entry) in inner.entries.iter() {
                bytes += owner.len() + std::mem::size_of::<Entry>() + SLOT_OVERHEAD;
                if let CachedAnswer::Positive { records, rrsigs } = &entry.answer {
                    bytes += records.len() * RECORD_COST + rrsigs.len() * RRSIG_COST;
                }
            }
        }
        bytes
    }

    /// Export the eviction-class counters into `metrics` as monotonic
    /// counters: `cache.evictions`, `cache.swept`,
    /// `cache.capacity_per_shard`, and per-shard
    /// `cache.shardNN.{evictions,swept}`.
    ///
    /// Only eviction-class counters are exported — hit/miss counters are
    /// interleaving-dependent under pooled multi-thread campaigns and
    /// would break the byte-identical `counters_text()` pin, so they
    /// stay on the [`CacheStats`] side. Idempotent: counters are raised
    /// to the current snapshot, never double-added.
    pub fn export_eviction_metrics(&self, metrics: &telemetry::MetricsRegistry) {
        fn raise_to(counter: &telemetry::Counter, target: u64) {
            let current = counter.get();
            if target > current {
                counter.add(target - current);
            }
        }
        raise_to(
            &metrics.counter("cache.capacity_per_shard"),
            self.capacity_per_shard().unwrap_or(0) as u64,
        );
        let total = self.stats();
        raise_to(&metrics.counter("cache.evictions"), total.evictions);
        raise_to(&metrics.counter("cache.swept"), total.swept);
        for (i, shard) in self.shard_stats().iter().enumerate() {
            raise_to(&metrics.counter(&format!("cache.shard{i:02}.evictions")), shard.evictions);
            raise_to(&metrics.counter(&format!("cache.shard{i:02}.swept")), shard.swept);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RData;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn a_record(ttl: u32) -> Record {
        Record::new(name("a.com"), ttl, RData::A(Ipv4Addr::new(1, 2, 3, 4)))
    }

    /// A 1-shard bounded cache so capacity arithmetic is exact.
    fn bounded(capacity: usize, policy: EvictionPolicy) -> RecordCache {
        RecordCache::with_eviction(1, None, capacity, policy)
    }

    fn insert(cache: &RecordCache, host: &str, ttl: u32, now: u64) {
        cache.insert_positive(
            &name(host),
            RecordType::A,
            vec![a_record(ttl)],
            vec![],
            Timestamp(now),
        );
    }

    fn has(cache: &RecordCache, host: &str, now: u64) -> bool {
        cache.age(&name(host), RecordType::A, Timestamp(now)).is_some()
    }

    #[test]
    fn hit_until_ttl_expiry() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(299)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(300)).is_none());
        // After expiry the entry is evicted.
        assert_eq!(cache.len(), 0);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.miss_expired, 1);
        assert_eq!(s.expirations(), 1);
        assert_eq!(s.miss_absent, 0);
    }

    #[test]
    fn miss_causes_are_distinguished() {
        let cache = RecordCache::new();
        // Nothing stored: an absent miss.
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(0)).is_none());
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        // Stored but dead: an expired miss (and an eviction).
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(400)).is_none());
        // Evicted now, so the next lookup is absent again.
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(401)).is_none());
        let s = cache.stats();
        assert_eq!((s.miss_absent, s.miss_expired), (2, 1));
        assert_eq!(s.misses(), 3);
        assert_eq!(s.hits, 0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn negative_hits_surface_separately() {
        let cache = RecordCache::new();
        cache.insert_negative(
            &name("n.com"),
            RecordType::Https,
            Rcode::NxDomain,
            300,
            Timestamp(0),
        );
        cache.insert_positive(
            &name("p.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("n.com"), RecordType::Https, Timestamp(1)).is_some());
        assert!(cache.get(&name("n.com"), RecordType::Https, Timestamp(2)).is_some());
        assert!(cache.get(&name("p.com"), RecordType::A, Timestamp(1)).is_some());
        let s = cache.stats();
        assert_eq!(s.hits, 3, "negative hits count as hits");
        assert_eq!(s.negative_hits, 2, "negative-entry hits are also surfaced separately");
        assert!((s.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hot_path_lock_acquisitions_are_counted() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        let _ = cache.get(&name("a.com"), RecordType::A, Timestamp(1));
        let _ = cache.age(&name("a.com"), RecordType::A, Timestamp(1));
        // insert + get + age: three hot-path acquisitions; flush() and
        // stats() are maintenance paths and deliberately uncounted.
        cache.flush();
        let s = cache.stats();
        assert_eq!(s.lock_acquisitions, 3);
        assert_eq!(s.lock_contended, 0, "single-threaded use never contends");
    }

    #[test]
    fn min_ttl_of_rrset_governs() {
        let cache = RecordCache::new();
        let records = vec![a_record(300), a_record(60)];
        cache.insert_positive(&name("a.com"), RecordType::A, records, vec![], Timestamp(0));
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(59)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(61)).is_none());
    }

    #[test]
    fn negative_caching() {
        let cache = RecordCache::new();
        cache.insert_negative(
            &name("gone.com"),
            RecordType::Https,
            Rcode::NxDomain,
            300,
            Timestamp(0),
        );
        match cache.get(&name("gone.com"), RecordType::Https, Timestamp(100)) {
            Some(CachedAnswer::Negative { rcode }) => assert_eq!(rcode, Rcode::NxDomain),
            other => panic!("{other:?}"),
        }
        assert!(cache.get(&name("gone.com"), RecordType::Https, Timestamp(301)).is_none());
    }

    #[test]
    fn ttl_clamp_caps_lifetime() {
        let cache = RecordCache::with_ttl_clamp(30);
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(29)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(31)).is_none());
    }

    #[test]
    fn flush_clears() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        cache.flush();
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn age_tracks_insertion() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(100),
        );
        assert_eq!(cache.age(&name("a.com"), RecordType::A, Timestamp(150)), Some(50));
        assert_eq!(cache.age(&name("a.com"), RecordType::A, Timestamp(500)), None);
    }

    #[test]
    fn types_are_separate_keys() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::Https, Timestamp(1)).is_none());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_some());
    }

    #[test]
    fn case_insensitive_keying() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("A.COM"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_some());
    }

    #[test]
    fn empty_rrset_not_inserted() {
        let cache = RecordCache::new();
        cache.insert_positive(&name("a.com"), RecordType::A, vec![], vec![], Timestamp(0));
        assert!(cache.is_empty());
    }

    #[test]
    fn single_shard_degenerate_case_works() {
        let cache = RecordCache::with_shards(1);
        assert_eq!(cache.shard_count(), 1);
        for i in 0..32 {
            let n = name(&format!("d{i}.example"));
            cache.insert_positive(&n, RecordType::A, vec![a_record(60)], vec![], Timestamp(0));
        }
        assert_eq!(cache.len(), 32);
        assert_eq!(cache.stats().insertions, 32);
    }

    #[test]
    fn entries_spread_across_shards() {
        let cache = RecordCache::with_shards(16);
        for i in 0..256 {
            let n = name(&format!("d{i}.example"));
            cache.insert_positive(&n, RecordType::A, vec![a_record(60)], vec![], Timestamp(0));
        }
        assert_eq!(cache.len(), 256);
        let populated = cache.shards.iter().filter(|s| !s.inner.lock().entries.is_empty()).count();
        assert!(populated > 8, "expected a spread, got {populated} populated shards");
    }

    #[test]
    fn shard_count_clamped_to_one() {
        let cache = RecordCache::with_shards(0);
        assert_eq!(cache.shard_count(), 1);
    }

    // ---- bounded eviction ----

    #[test]
    fn bounded_capacity_is_never_exceeded() {
        for policy in [EvictionPolicy::TtlSweepLru, EvictionPolicy::S3Fifo] {
            let cache = bounded(8, policy);
            for i in 0..100 {
                insert(&cache, &format!("d{i}.example"), 300, i);
                assert!(cache.len() <= 8, "{policy}: len {} > capacity 8", cache.len());
            }
            assert_eq!(cache.shard_lens(), vec![8]);
            assert!(cache.stats().evictions >= 92 - 8);
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = bounded(3, EvictionPolicy::TtlSweepLru);
        insert(&cache, "a.example", 300, 0);
        insert(&cache, "b.example", 300, 1);
        insert(&cache, "c.example", 300, 2);
        // Touch a and c; b becomes the LRU victim.
        assert!(cache.get(&name("a.example"), RecordType::A, Timestamp(3)).is_some());
        assert!(cache.get(&name("c.example"), RecordType::A, Timestamp(4)).is_some());
        insert(&cache, "d.example", 300, 5);
        assert!(has(&cache, "a.example", 6));
        assert!(!has(&cache, "b.example", 6), "LRU victim should be b");
        assert!(has(&cache, "c.example", 6));
        assert!(has(&cache, "d.example", 6));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn expired_entries_swept_before_live_evicted() {
        let cache = bounded(3, EvictionPolicy::TtlSweepLru);
        insert(&cache, "dead.example", 10, 0); // expires at t=10
        insert(&cache, "live1.example", 300, 1);
        insert(&cache, "live2.example", 300, 2);
        // Overflow at t=50: the dead entry is swept; no live eviction.
        insert(&cache, "live3.example", 300, 50);
        let s = cache.stats();
        assert_eq!(s.swept, 1, "the expired entry should be swept, not policy-evicted");
        assert_eq!(s.evictions, 0);
        assert!(has(&cache, "live1.example", 51));
        assert!(has(&cache, "live2.example", 51));
        assert!(has(&cache, "live3.example", 51));
    }

    #[test]
    fn s3fifo_keeps_hot_entries_over_one_hit_wonders() {
        let cache = bounded(10, EvictionPolicy::S3Fifo);
        // Two hot keys, referenced repeatedly.
        insert(&cache, "hot1.example", 3000, 0);
        insert(&cache, "hot2.example", 3000, 0);
        for t in 1..20 {
            assert!(cache.get(&name("hot1.example"), RecordType::A, Timestamp(t)).is_some());
            assert!(cache.get(&name("hot2.example"), RecordType::A, Timestamp(t)).is_some());
        }
        // A long scan of one-hit-wonders overflows the shard repeatedly.
        for i in 0..60 {
            insert(&cache, &format!("scan{i}.example"), 3000, 20 + i);
        }
        assert!(has(&cache, "hot1.example", 100), "hot key must survive the scan");
        assert!(has(&cache, "hot2.example", 100), "hot key must survive the scan");
        assert!(cache.len() <= 10);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn s3fifo_ghost_readmits_to_main() {
        let cache = bounded(4, EvictionPolicy::S3Fifo);
        insert(&cache, "victim.example", 3000, 0);
        // Push victim out with a scan.
        for i in 0..8 {
            insert(&cache, &format!("s{i}.example"), 3000, 1 + i);
        }
        assert!(!has(&cache, "victim.example", 20));
        // Re-inserting a ghost-remembered key must not panic and must be
        // retained through a subsequent scan burst (it landed in main).
        insert(&cache, "victim.example", 3000, 21);
        for i in 0..4 {
            insert(&cache, &format!("t{i}.example"), 3000, 22 + i);
        }
        assert!(cache.len() <= 4);
    }

    #[test]
    fn overwrite_does_not_grow_a_bounded_shard() {
        for policy in [EvictionPolicy::TtlSweepLru, EvictionPolicy::S3Fifo] {
            let cache = bounded(4, policy);
            for t in 0..20 {
                insert(&cache, "same.example", 300, t);
            }
            assert_eq!(cache.len(), 1, "{policy}: refreshes must overwrite in place");
            assert_eq!(cache.stats().evictions, 0);
        }
    }

    #[test]
    fn purge_expired_reclaims_dead_entries() {
        // Unbounded: purge is the only way to reclaim un-looked-up dead
        // entries.
        let cache = RecordCache::new();
        insert(&cache, "short.example", 10, 0);
        insert(&cache, "long.example", 1000, 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.purge_expired(Timestamp(5)), 0);
        assert_eq!(cache.purge_expired(Timestamp(10)), 1);
        assert_eq!(cache.len(), 1);
        assert!(has(&cache, "long.example", 11));
        assert_eq!(cache.stats().swept, 1);

        // Bounded: same semantics through the expiry index.
        let cache = bounded(16, EvictionPolicy::TtlSweepLru);
        for i in 0..6 {
            insert(&cache, &format!("d{i}.example"), 10 + i as u32, 0);
        }
        assert_eq!(cache.purge_expired(Timestamp(12)), 3);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().swept, 3);
    }

    #[test]
    fn approx_bytes_tracks_contents() {
        let cache = RecordCache::new();
        assert_eq!(cache.approx_bytes(), 0);
        insert(&cache, "a.example", 300, 0);
        let one = cache.approx_bytes();
        assert!(one > 0);
        insert(&cache, "b.example", 300, 0);
        assert!(cache.approx_bytes() > one);
        cache.flush();
        assert_eq!(cache.approx_bytes(), 0);
    }

    #[test]
    fn eviction_policy_parses_and_displays() {
        assert_eq!("lru".parse::<EvictionPolicy>().unwrap(), EvictionPolicy::TtlSweepLru);
        assert_eq!("S3FIFO".parse::<EvictionPolicy>().unwrap(), EvictionPolicy::S3Fifo);
        assert!("clock".parse::<EvictionPolicy>().is_err());
        assert_eq!(EvictionPolicy::TtlSweepLru.to_string(), "TtlSweepLru");
        assert_eq!(EvictionPolicy::S3Fifo.to_string(), "S3Fifo");
    }

    #[test]
    fn export_eviction_metrics_is_idempotent() {
        let cache = bounded(2, EvictionPolicy::TtlSweepLru);
        for i in 0..6 {
            insert(&cache, &format!("d{i}.example"), 300, i);
        }
        let metrics = telemetry::MetricsRegistry::new("test");
        cache.export_eviction_metrics(&metrics);
        let evictions = metrics.counter_value("cache.evictions");
        assert_eq!(evictions, cache.stats().evictions);
        assert_eq!(metrics.counter_value("cache.capacity_per_shard"), 2);
        cache.export_eviction_metrics(&metrics);
        assert_eq!(
            metrics.counter_value("cache.evictions"),
            evictions,
            "export must not double-add"
        );
        let per_shard: u64 = (0..cache.shard_count())
            .map(|i| metrics.counter_value(&format!("cache.shard{i:02}.evictions")))
            .sum();
        assert_eq!(per_shard, evictions);
    }
}
