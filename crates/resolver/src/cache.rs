//! The resolver's TTL-driven record cache.
//!
//! Cache staleness is the mechanism behind two of the paper's findings:
//! IP-hint/A mismatches persisting after synchronized zone updates
//! (§4.3.5) and ECH key mismatches under hourly rotation (§4.4.2). The
//! cache therefore keeps precise per-entry expiry against the simulated
//! clock, plus negative entries with SOA-minimum TTLs.

use dns_wire::record::RrsigRdata;
use dns_wire::{DnsName, Rcode, Record, RecordType};
use netsim::Timestamp;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A positive or negative cached answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// A cached RRset with its signatures.
    Positive {
        /// The records of the set.
        records: Vec<Record>,
        /// Covering RRSIGs (as fetched with the DO bit).
        rrsigs: Vec<RrsigRdata>,
    },
    /// A cached negative answer (NODATA or NXDOMAIN).
    Negative {
        /// The rcode that produced the entry.
        rcode: Rcode,
    },
}

#[derive(Debug, Clone)]
struct Entry {
    answer: CachedAnswer,
    inserted: Timestamp,
    expires: Timestamp,
}

/// Statistics for cache behaviour analysis and ablations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only expired entries).
    pub misses: u64,
    /// Entries that had expired at lookup time.
    pub expirations: u64,
    /// Entries inserted.
    pub insertions: u64,
}

/// TTL cache keyed by `(owner name, record type)`.
#[derive(Default)]
pub struct RecordCache {
    inner: Mutex<CacheInner>,
    /// Optional TTL clamp (seconds); `Some(c)` caps every entry's
    /// lifetime at `c`, the knob used by the Fig 12 ablation.
    ttl_clamp: Option<u32>,
}

#[derive(Default)]
struct CacheInner {
    entries: HashMap<(String, u16), Entry>,
    stats: CacheStats,
}

impl RecordCache {
    /// An empty cache with no TTL clamp.
    pub fn new() -> RecordCache {
        RecordCache::default()
    }

    /// An empty cache clamping every TTL at `clamp` seconds.
    pub fn with_ttl_clamp(clamp: u32) -> RecordCache {
        RecordCache { inner: Mutex::new(CacheInner::default()), ttl_clamp: Some(clamp) }
    }

    fn effective_ttl(&self, ttl: u32) -> u32 {
        match self.ttl_clamp {
            Some(clamp) => ttl.min(clamp),
            None => ttl,
        }
    }

    /// Insert a positive RRset observed at `now`.
    pub fn insert_positive(
        &self,
        name: &DnsName,
        rtype: RecordType,
        records: Vec<Record>,
        rrsigs: Vec<RrsigRdata>,
        now: Timestamp,
    ) {
        if records.is_empty() {
            return;
        }
        let ttl = self.effective_ttl(records.iter().map(|r| r.ttl).min().unwrap_or(0));
        let mut inner = self.inner.lock();
        inner.stats.insertions += 1;
        inner.entries.insert(
            (name.key(), rtype.code()),
            Entry {
                answer: CachedAnswer::Positive { records, rrsigs },
                inserted: now,
                expires: now.plus(ttl as u64),
            },
        );
    }

    /// Insert a negative answer with the given TTL (typically the SOA
    /// minimum).
    pub fn insert_negative(
        &self,
        name: &DnsName,
        rtype: RecordType,
        rcode: Rcode,
        ttl: u32,
        now: Timestamp,
    ) {
        let ttl = self.effective_ttl(ttl);
        let mut inner = self.inner.lock();
        inner.stats.insertions += 1;
        inner.entries.insert(
            (name.key(), rtype.code()),
            Entry {
                answer: CachedAnswer::Negative { rcode },
                inserted: now,
                expires: now.plus(ttl as u64),
            },
        );
    }

    /// Fetch a live entry; expired entries are evicted.
    pub fn get(&self, name: &DnsName, rtype: RecordType, now: Timestamp) -> Option<CachedAnswer> {
        let key = (name.key(), rtype.code());
        let mut inner = self.inner.lock();
        match inner.entries.get(&key) {
            Some(entry) if entry.expires > now => {
                let answer = entry.answer.clone();
                inner.stats.hits += 1;
                Some(answer)
            }
            Some(_) => {
                inner.entries.remove(&key);
                inner.stats.expirations += 1;
                inner.stats.misses += 1;
                None
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Age in seconds of the live entry at (name, type), if any.
    pub fn age(&self, name: &DnsName, rtype: RecordType, now: Timestamp) -> Option<u64> {
        let key = (name.key(), rtype.code());
        let inner = self.inner.lock();
        inner
            .entries
            .get(&key)
            .filter(|e| e.expires > now)
            .map(|e| now.since(e.inserted))
    }

    /// Drop every entry (the testbed's "clear local DNS cache" step).
    pub fn flush(&self) {
        self.inner.lock().entries.clear();
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Number of entries currently stored (live and expired-but-unswept).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RData;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn a_record(ttl: u32) -> Record {
        Record::new(name("a.com"), ttl, RData::A(Ipv4Addr::new(1, 2, 3, 4)))
    }

    #[test]
    fn hit_until_ttl_expiry() {
        let cache = RecordCache::new();
        cache.insert_positive(&name("a.com"), RecordType::A, vec![a_record(300)], vec![], Timestamp(0));
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(299)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(300)).is_none());
        // After expiry the entry is evicted.
        assert_eq!(cache.len(), 0);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.expirations, 1);
    }

    #[test]
    fn min_ttl_of_rrset_governs() {
        let cache = RecordCache::new();
        let records = vec![a_record(300), a_record(60)];
        cache.insert_positive(&name("a.com"), RecordType::A, records, vec![], Timestamp(0));
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(59)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(61)).is_none());
    }

    #[test]
    fn negative_caching() {
        let cache = RecordCache::new();
        cache.insert_negative(&name("gone.com"), RecordType::Https, Rcode::NxDomain, 300, Timestamp(0));
        match cache.get(&name("gone.com"), RecordType::Https, Timestamp(100)) {
            Some(CachedAnswer::Negative { rcode }) => assert_eq!(rcode, Rcode::NxDomain),
            other => panic!("{other:?}"),
        }
        assert!(cache.get(&name("gone.com"), RecordType::Https, Timestamp(301)).is_none());
    }

    #[test]
    fn ttl_clamp_caps_lifetime() {
        let cache = RecordCache::with_ttl_clamp(30);
        cache.insert_positive(&name("a.com"), RecordType::A, vec![a_record(300)], vec![], Timestamp(0));
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(29)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(31)).is_none());
    }

    #[test]
    fn flush_clears() {
        let cache = RecordCache::new();
        cache.insert_positive(&name("a.com"), RecordType::A, vec![a_record(300)], vec![], Timestamp(0));
        cache.flush();
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn age_tracks_insertion() {
        let cache = RecordCache::new();
        cache.insert_positive(&name("a.com"), RecordType::A, vec![a_record(300)], vec![], Timestamp(100));
        assert_eq!(cache.age(&name("a.com"), RecordType::A, Timestamp(150)), Some(50));
        assert_eq!(cache.age(&name("a.com"), RecordType::A, Timestamp(500)), None);
    }

    #[test]
    fn types_are_separate_keys() {
        let cache = RecordCache::new();
        cache.insert_positive(&name("a.com"), RecordType::A, vec![a_record(300)], vec![], Timestamp(0));
        assert!(cache.get(&name("a.com"), RecordType::Https, Timestamp(1)).is_none());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_some());
    }

    #[test]
    fn case_insensitive_keying() {
        let cache = RecordCache::new();
        cache.insert_positive(&name("A.COM"), RecordType::A, vec![a_record(300)], vec![], Timestamp(0));
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_some());
    }

    #[test]
    fn empty_rrset_not_inserted() {
        let cache = RecordCache::new();
        cache.insert_positive(&name("a.com"), RecordType::A, vec![], vec![], Timestamp(0));
        assert!(cache.is_empty());
    }
}
