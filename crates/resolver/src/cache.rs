//! The resolver's TTL-driven record cache, sharded for concurrency.
//!
//! Cache staleness is the mechanism behind two of the paper's findings:
//! IP-hint/A mismatches persisting after synchronized zone updates
//! (§4.3.5) and ECH key mismatches under hourly rotation (§4.4.2). The
//! cache therefore keeps precise per-entry expiry against the simulated
//! clock, plus negative entries with SOA-minimum TTLs.
//!
//! ## Sharding
//!
//! The cache is split into N independent shards, each guarded by its own
//! [`parking_lot::Mutex`]. A lookup or insert hashes the **owner name**
//! (case-folded, via FNV-1a) and touches exactly one shard, so batch
//! workloads ([`crate::engine::QueryEngine::resolve_batch`]) scale with
//! available threads instead of serializing on a single lock. All entries
//! for one owner name land in one shard regardless of record type, which
//! keeps a CNAME-chase for a name on a single lock path.
//!
//! Sharding is invisible in the API: statistics aggregate across shards,
//! and behaviour (hits, misses, expirations, eviction) is identical for
//! any shard count — a property pinned by this module's tests.

use dns_wire::record::RrsigRdata;
use dns_wire::{DnsName, Rcode, Record, RecordType};
use netsim::Timestamp;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Default shard count: enough to keep a typical worker fan-out (the
/// scanner uses 4–8 threads) contention-free without wasting memory on
/// tiny caches.
pub const DEFAULT_SHARDS: usize = 16;

/// A positive or negative cached answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// A cached RRset with its signatures.
    Positive {
        /// The records of the set.
        records: Vec<Record>,
        /// Covering RRSIGs (as fetched with the DO bit).
        rrsigs: Vec<RrsigRdata>,
    },
    /// A cached negative answer (NODATA or NXDOMAIN).
    Negative {
        /// The rcode that produced the entry.
        rcode: Rcode,
    },
}

#[derive(Debug, Clone)]
struct Entry {
    answer: CachedAnswer,
    inserted: Timestamp,
    expires: Timestamp,
}

/// Statistics for cache behaviour analysis and ablations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only expired entries).
    pub misses: u64,
    /// Entries that had expired at lookup time.
    pub expirations: u64,
    /// Entries inserted.
    pub insertions: u64,
}

impl CacheStats {
    fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.expirations += other.expirations;
        self.insertions += other.insertions;
    }
}

#[derive(Default)]
struct Shard {
    entries: HashMap<(String, u16), Entry>,
    stats: CacheStats,
}

/// TTL cache keyed by `(owner name, record type)`, sharded by owner name.
pub struct RecordCache {
    shards: Vec<Mutex<Shard>>,
    /// Optional TTL clamp (seconds); `Some(c)` caps every entry's
    /// lifetime at `c`, the knob used by the Fig 12 ablation.
    ttl_clamp: Option<u32>,
}

impl Default for RecordCache {
    fn default() -> RecordCache {
        RecordCache::with_config(DEFAULT_SHARDS, None)
    }
}

/// FNV-1a over the case-folded owner key; stable across runs (no
/// `RandomState`), so shard assignment is deterministic. Shared with
/// the engine's worker-affinity partition, which must use the same
/// stable hash.
pub(crate) fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl RecordCache {
    /// An empty cache with the default shard count and no TTL clamp.
    pub fn new() -> RecordCache {
        RecordCache::default()
    }

    /// An empty cache clamping every TTL at `clamp` seconds.
    pub fn with_ttl_clamp(clamp: u32) -> RecordCache {
        RecordCache::with_config(DEFAULT_SHARDS, Some(clamp))
    }

    /// An empty cache with `shards` shards (minimum 1) and no clamp.
    pub fn with_shards(shards: usize) -> RecordCache {
        RecordCache::with_config(shards, None)
    }

    /// An empty cache with explicit shard count and optional TTL clamp.
    pub fn with_config(shards: usize, ttl_clamp: Option<u32>) -> RecordCache {
        let n = shards.max(1);
        RecordCache { shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(), ttl_clamp }
    }

    /// Number of shards (for benches and diagnostics).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, owner_key: &str) -> &Mutex<Shard> {
        let idx = (fnv1a(owner_key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    fn effective_ttl(&self, ttl: u32) -> u32 {
        match self.ttl_clamp {
            Some(clamp) => ttl.min(clamp),
            None => ttl,
        }
    }

    /// Insert a positive RRset observed at `now`.
    pub fn insert_positive(
        &self,
        name: &DnsName,
        rtype: RecordType,
        records: Vec<Record>,
        rrsigs: Vec<RrsigRdata>,
        now: Timestamp,
    ) {
        if records.is_empty() {
            return;
        }
        let ttl = self.effective_ttl(records.iter().map(|r| r.ttl).min().unwrap_or(0));
        let key = name.key();
        let mut shard = self.shard_for(&key).lock();
        shard.stats.insertions += 1;
        shard.entries.insert(
            (key, rtype.code()),
            Entry {
                answer: CachedAnswer::Positive { records, rrsigs },
                inserted: now,
                expires: now.plus(ttl as u64),
            },
        );
    }

    /// Insert a negative answer with the given TTL (typically the SOA
    /// minimum).
    pub fn insert_negative(
        &self,
        name: &DnsName,
        rtype: RecordType,
        rcode: Rcode,
        ttl: u32,
        now: Timestamp,
    ) {
        let ttl = self.effective_ttl(ttl);
        let key = name.key();
        let mut shard = self.shard_for(&key).lock();
        shard.stats.insertions += 1;
        shard.entries.insert(
            (key, rtype.code()),
            Entry {
                answer: CachedAnswer::Negative { rcode },
                inserted: now,
                expires: now.plus(ttl as u64),
            },
        );
    }

    /// Fetch a live entry; expired entries are evicted.
    pub fn get(&self, name: &DnsName, rtype: RecordType, now: Timestamp) -> Option<CachedAnswer> {
        let key = (name.key(), rtype.code());
        let mut shard = self.shard_for(&key.0).lock();
        match shard.entries.get(&key) {
            Some(entry) if entry.expires > now => {
                let answer = entry.answer.clone();
                shard.stats.hits += 1;
                Some(answer)
            }
            Some(_) => {
                shard.entries.remove(&key);
                shard.stats.expirations += 1;
                shard.stats.misses += 1;
                None
            }
            None => {
                shard.stats.misses += 1;
                None
            }
        }
    }

    /// Age in seconds of the live entry at (name, type), if any.
    pub fn age(&self, name: &DnsName, rtype: RecordType, now: Timestamp) -> Option<u64> {
        let key = (name.key(), rtype.code());
        let shard = self.shard_for(&key.0).lock();
        shard.entries.get(&key).filter(|e| e.expires > now).map(|e| now.since(e.inserted))
    }

    /// Drop every entry (the testbed's "clear local DNS cache" step).
    pub fn flush(&self) {
        for shard in &self.shards {
            shard.lock().entries.clear();
        }
    }

    /// Current statistics snapshot, aggregated across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(shard.lock().stats);
        }
        total
    }

    /// Number of entries currently stored (live and expired-but-unswept).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().entries.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RData;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn a_record(ttl: u32) -> Record {
        Record::new(name("a.com"), ttl, RData::A(Ipv4Addr::new(1, 2, 3, 4)))
    }

    #[test]
    fn hit_until_ttl_expiry() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(299)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(300)).is_none());
        // After expiry the entry is evicted.
        assert_eq!(cache.len(), 0);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.expirations, 1);
    }

    #[test]
    fn min_ttl_of_rrset_governs() {
        let cache = RecordCache::new();
        let records = vec![a_record(300), a_record(60)];
        cache.insert_positive(&name("a.com"), RecordType::A, records, vec![], Timestamp(0));
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(59)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(61)).is_none());
    }

    #[test]
    fn negative_caching() {
        let cache = RecordCache::new();
        cache.insert_negative(
            &name("gone.com"),
            RecordType::Https,
            Rcode::NxDomain,
            300,
            Timestamp(0),
        );
        match cache.get(&name("gone.com"), RecordType::Https, Timestamp(100)) {
            Some(CachedAnswer::Negative { rcode }) => assert_eq!(rcode, Rcode::NxDomain),
            other => panic!("{other:?}"),
        }
        assert!(cache.get(&name("gone.com"), RecordType::Https, Timestamp(301)).is_none());
    }

    #[test]
    fn ttl_clamp_caps_lifetime() {
        let cache = RecordCache::with_ttl_clamp(30);
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(29)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(31)).is_none());
    }

    #[test]
    fn flush_clears() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        cache.flush();
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn age_tracks_insertion() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(100),
        );
        assert_eq!(cache.age(&name("a.com"), RecordType::A, Timestamp(150)), Some(50));
        assert_eq!(cache.age(&name("a.com"), RecordType::A, Timestamp(500)), None);
    }

    #[test]
    fn types_are_separate_keys() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::Https, Timestamp(1)).is_none());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_some());
    }

    #[test]
    fn case_insensitive_keying() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("A.COM"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_some());
    }

    #[test]
    fn empty_rrset_not_inserted() {
        let cache = RecordCache::new();
        cache.insert_positive(&name("a.com"), RecordType::A, vec![], vec![], Timestamp(0));
        assert!(cache.is_empty());
    }

    #[test]
    fn single_shard_degenerate_case_works() {
        let cache = RecordCache::with_shards(1);
        assert_eq!(cache.shard_count(), 1);
        for i in 0..32 {
            let n = name(&format!("d{i}.example"));
            cache.insert_positive(&n, RecordType::A, vec![a_record(60)], vec![], Timestamp(0));
        }
        assert_eq!(cache.len(), 32);
        assert_eq!(cache.stats().insertions, 32);
    }

    #[test]
    fn entries_spread_across_shards() {
        let cache = RecordCache::with_shards(16);
        for i in 0..256 {
            let n = name(&format!("d{i}.example"));
            cache.insert_positive(&n, RecordType::A, vec![a_record(60)], vec![], Timestamp(0));
        }
        assert_eq!(cache.len(), 256);
        let populated = cache.shards.iter().filter(|s| !s.lock().entries.is_empty()).count();
        assert!(populated > 8, "expected a spread, got {populated} populated shards");
    }

    #[test]
    fn shard_count_clamped_to_one() {
        let cache = RecordCache::with_shards(0);
        assert_eq!(cache.shard_count(), 1);
    }
}
