//! The resolver's TTL-driven record cache, sharded for concurrency.
//!
//! Cache staleness is the mechanism behind two of the paper's findings:
//! IP-hint/A mismatches persisting after synchronized zone updates
//! (§4.3.5) and ECH key mismatches under hourly rotation (§4.4.2). The
//! cache therefore keeps precise per-entry expiry against the simulated
//! clock, plus negative entries with SOA-minimum TTLs.
//!
//! ## Sharding
//!
//! The cache is split into N independent shards, each guarded by its own
//! [`parking_lot::Mutex`]. A lookup or insert hashes the **owner name**
//! (case-folded, via FNV-1a) and touches exactly one shard, so batch
//! workloads ([`crate::engine::QueryEngine::resolve_batch`]) scale with
//! available threads instead of serializing on a single lock. All entries
//! for one owner name land in one shard regardless of record type, which
//! keeps a CNAME-chase for a name on a single lock path.
//!
//! Sharding is invisible in the API: statistics aggregate across shards,
//! and behaviour (hits, misses, expirations, eviction) is identical for
//! any shard count — a property pinned by this module's tests.
//!
//! ## Statistics
//!
//! Each shard carries its own lock-free [`CacheStats`] counters (plain
//! relaxed atomics, updated outside the entry mutex), so reading
//! [`RecordCache::stats`] or [`RecordCache::shard_stats`] never takes a
//! lock and never perturbs concurrent lookups. Misses distinguish
//! *absent* (nothing stored) from *expired* (a dead entry was found and
//! evicted), and hits on negative entries are surfaced separately —
//! the split the paper's cache-behaviour comparisons need. Each shard
//! also counts hot-path lock acquisitions and contended acquisitions
//! (a contention proxy; see the README's single-CPU caveat).

use dns_wire::record::RrsigRdata;
use dns_wire::{DnsName, Rcode, Record, RecordType};
use netsim::Timestamp;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default shard count: enough to keep a typical worker fan-out (the
/// scanner uses 4–8 threads) contention-free without wasting memory on
/// tiny caches.
pub const DEFAULT_SHARDS: usize = 16;

/// A positive or negative cached answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// A cached RRset with its signatures.
    Positive {
        /// The records of the set.
        records: Vec<Record>,
        /// Covering RRSIGs (as fetched with the DO bit).
        rrsigs: Vec<RrsigRdata>,
    },
    /// A cached negative answer (NODATA or NXDOMAIN).
    Negative {
        /// The rcode that produced the entry.
        rcode: Rcode,
    },
}

#[derive(Debug, Clone)]
struct Entry {
    answer: CachedAnswer,
    inserted: Timestamp,
    expires: Timestamp,
}

/// Statistics snapshot for cache behaviour analysis and ablations.
///
/// A point-in-time copy of one shard's (or the whole cache's) lock-free
/// counters. Misses are split by cause — [`miss_absent`](Self::miss_absent)
/// vs [`miss_expired`](Self::miss_expired) — and hits on negative
/// entries are counted separately in
/// [`negative_hits`](Self::negative_hits) (they are also included in
/// [`hits`](Self::hits)).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a live entry (positive or negative).
    pub hits: u64,
    /// Subset of [`hits`](Self::hits) that returned a cached negative
    /// answer (NODATA/NXDOMAIN).
    pub negative_hits: u64,
    /// Lookups that found nothing stored under the key.
    pub miss_absent: u64,
    /// Lookups that found only an expired entry (which was evicted).
    pub miss_expired: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Hot-path (get/insert/age) acquisitions of the shard entry lock.
    pub lock_acquisitions: u64,
    /// Hot-path acquisitions that found the lock already held and had
    /// to block — a cross-thread contention proxy. Scheduling-dependent,
    /// so excluded from determinism comparisons (and near-meaningless on
    /// a single-CPU host, where threads rarely overlap).
    pub lock_contended: u64,
}

impl CacheStats {
    /// Total misses, either cause.
    pub fn misses(&self) -> u64 {
        self.miss_absent + self.miss_expired
    }

    /// Entries evicted because they had expired. Expired entries are
    /// only discovered (and always evicted) by the lookup that finds
    /// them, so this equals [`miss_expired`](Self::miss_expired).
    pub fn expirations(&self) -> u64 {
        self.miss_expired
    }

    /// Total lookups that counted a hit or a miss.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Hit fraction of all lookups (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Accumulate another snapshot into this one (shard aggregation,
    /// multi-vantage roll-ups).
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.negative_hits += other.negative_hits;
        self.miss_absent += other.miss_absent;
        self.miss_expired += other.miss_expired;
        self.insertions += other.insertions;
        self.lock_acquisitions += other.lock_acquisitions;
        self.lock_contended += other.lock_contended;
    }
}

/// The canonical one-line rendering used by telemetry reports and the
/// bench regeneration output.
impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} negative_hits={} miss_absent={} miss_expired={} insertions={} \
             lock_acquisitions={} lock_contended={} hit_rate={:.4}",
            self.hits,
            self.negative_hits,
            self.miss_absent,
            self.miss_expired,
            self.insertions,
            self.lock_acquisitions,
            self.lock_contended,
            self.hit_rate()
        )
    }
}

/// One shard's live counters: relaxed atomics bumped outside the entry
/// mutex, so `stats()` readers and concurrent writers never serialize
/// on statistics. (The old design kept a `CacheStats` inside the shard
/// mutex and locked every shard to aggregate.)
#[derive(Default)]
struct ShardCounters {
    hits: AtomicU64,
    negative_hits: AtomicU64,
    miss_absent: AtomicU64,
    miss_expired: AtomicU64,
    insertions: AtomicU64,
    lock_acquisitions: AtomicU64,
    lock_contended: AtomicU64,
}

impl ShardCounters {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            miss_absent: self.miss_absent.load(Ordering::Relaxed),
            miss_expired: self.miss_expired.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            lock_contended: self.lock_contended.load(Ordering::Relaxed),
        }
    }
}

#[derive(Default)]
struct Shard {
    entries: Mutex<HashMap<(String, u16), Entry>>,
    stats: ShardCounters,
}

impl Shard {
    /// Acquire the entry lock on a hot path, counting the acquisition
    /// and whether it had to block behind another holder.
    fn lock_entries(&self) -> MutexGuard<'_, HashMap<(String, u16), Entry>> {
        self.stats.lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        match self.entries.try_lock() {
            Some(guard) => guard,
            None => {
                self.stats.lock_contended.fetch_add(1, Ordering::Relaxed);
                self.entries.lock()
            }
        }
    }
}

/// TTL cache keyed by `(owner name, record type)`, sharded by owner name.
pub struct RecordCache {
    shards: Vec<Shard>,
    /// Optional TTL clamp (seconds); `Some(c)` caps every entry's
    /// lifetime at `c`, the knob used by the Fig 12 ablation.
    ttl_clamp: Option<u32>,
}

impl Default for RecordCache {
    fn default() -> RecordCache {
        RecordCache::with_config(DEFAULT_SHARDS, None)
    }
}

/// FNV-1a over the case-folded owner key; stable across runs (no
/// `RandomState`), so shard assignment is deterministic. Shared with
/// the engine's worker-affinity partition, which must use the same
/// stable hash.
pub(crate) fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl RecordCache {
    /// An empty cache with the default shard count and no TTL clamp.
    pub fn new() -> RecordCache {
        RecordCache::default()
    }

    /// An empty cache clamping every TTL at `clamp` seconds.
    pub fn with_ttl_clamp(clamp: u32) -> RecordCache {
        RecordCache::with_config(DEFAULT_SHARDS, Some(clamp))
    }

    /// An empty cache with `shards` shards (minimum 1) and no clamp.
    pub fn with_shards(shards: usize) -> RecordCache {
        RecordCache::with_config(shards, None)
    }

    /// An empty cache with explicit shard count and optional TTL clamp.
    pub fn with_config(shards: usize, ttl_clamp: Option<u32>) -> RecordCache {
        let n = shards.max(1);
        RecordCache { shards: (0..n).map(|_| Shard::default()).collect(), ttl_clamp }
    }

    /// Number of shards (for benches and diagnostics).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, owner_key: &str) -> &Shard {
        let idx = (fnv1a(owner_key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    fn effective_ttl(&self, ttl: u32) -> u32 {
        match self.ttl_clamp {
            Some(clamp) => ttl.min(clamp),
            None => ttl,
        }
    }

    /// Insert a positive RRset observed at `now`.
    pub fn insert_positive(
        &self,
        name: &DnsName,
        rtype: RecordType,
        records: Vec<Record>,
        rrsigs: Vec<RrsigRdata>,
        now: Timestamp,
    ) {
        if records.is_empty() {
            return;
        }
        let ttl = self.effective_ttl(records.iter().map(|r| r.ttl).min().unwrap_or(0));
        let key = name.key();
        let shard = self.shard_for(&key);
        shard.stats.insertions.fetch_add(1, Ordering::Relaxed);
        shard.lock_entries().insert(
            (key, rtype.code()),
            Entry {
                answer: CachedAnswer::Positive { records, rrsigs },
                inserted: now,
                expires: now.plus(ttl as u64),
            },
        );
    }

    /// Insert a negative answer with the given TTL (typically the SOA
    /// minimum).
    pub fn insert_negative(
        &self,
        name: &DnsName,
        rtype: RecordType,
        rcode: Rcode,
        ttl: u32,
        now: Timestamp,
    ) {
        let ttl = self.effective_ttl(ttl);
        let key = name.key();
        let shard = self.shard_for(&key);
        shard.stats.insertions.fetch_add(1, Ordering::Relaxed);
        shard.lock_entries().insert(
            (key, rtype.code()),
            Entry {
                answer: CachedAnswer::Negative { rcode },
                inserted: now,
                expires: now.plus(ttl as u64),
            },
        );
    }

    /// Fetch a live entry; expired entries are evicted.
    pub fn get(&self, name: &DnsName, rtype: RecordType, now: Timestamp) -> Option<CachedAnswer> {
        let key = (name.key(), rtype.code());
        let shard = self.shard_for(&key.0);
        let mut entries = shard.lock_entries();
        let outcome = match entries.get(&key) {
            Some(entry) if entry.expires > now => {
                let negative = matches!(entry.answer, CachedAnswer::Negative { .. });
                Some((entry.answer.clone(), negative))
            }
            Some(_) => {
                entries.remove(&key);
                None
            }
            None => {
                drop(entries);
                shard.stats.miss_absent.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        drop(entries);
        match outcome {
            Some((answer, negative)) => {
                shard.stats.hits.fetch_add(1, Ordering::Relaxed);
                if negative {
                    shard.stats.negative_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(answer)
            }
            None => {
                shard.stats.miss_expired.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Age in seconds of the live entry at (name, type), if any.
    pub fn age(&self, name: &DnsName, rtype: RecordType, now: Timestamp) -> Option<u64> {
        let key = (name.key(), rtype.code());
        let shard = self.shard_for(&key.0);
        let entries = shard.lock_entries();
        entries.get(&key).filter(|e| e.expires > now).map(|e| now.since(e.inserted))
    }

    /// Drop every entry (the testbed's "clear local DNS cache" step).
    pub fn flush(&self) {
        for shard in &self.shards {
            shard.entries.lock().clear();
        }
    }

    /// Current statistics snapshot, aggregated across shards. Lock-free:
    /// reads each shard's atomic counters without touching entry locks.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(shard.stats.snapshot());
        }
        total
    }

    /// Per-shard statistics snapshots, in shard-index order (for the
    /// telemetry report's shard-balance and contention views).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.stats.snapshot()).collect()
    }

    /// Number of entries currently stored (live and expired-but-unswept).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.lock().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.entries.lock().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RData;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn a_record(ttl: u32) -> Record {
        Record::new(name("a.com"), ttl, RData::A(Ipv4Addr::new(1, 2, 3, 4)))
    }

    #[test]
    fn hit_until_ttl_expiry() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(299)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(300)).is_none());
        // After expiry the entry is evicted.
        assert_eq!(cache.len(), 0);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.miss_expired, 1);
        assert_eq!(s.expirations(), 1);
        assert_eq!(s.miss_absent, 0);
    }

    #[test]
    fn miss_causes_are_distinguished() {
        let cache = RecordCache::new();
        // Nothing stored: an absent miss.
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(0)).is_none());
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        // Stored but dead: an expired miss (and an eviction).
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(400)).is_none());
        // Evicted now, so the next lookup is absent again.
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(401)).is_none());
        let s = cache.stats();
        assert_eq!((s.miss_absent, s.miss_expired), (2, 1));
        assert_eq!(s.misses(), 3);
        assert_eq!(s.hits, 0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn negative_hits_surface_separately() {
        let cache = RecordCache::new();
        cache.insert_negative(
            &name("n.com"),
            RecordType::Https,
            Rcode::NxDomain,
            300,
            Timestamp(0),
        );
        cache.insert_positive(
            &name("p.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("n.com"), RecordType::Https, Timestamp(1)).is_some());
        assert!(cache.get(&name("n.com"), RecordType::Https, Timestamp(2)).is_some());
        assert!(cache.get(&name("p.com"), RecordType::A, Timestamp(1)).is_some());
        let s = cache.stats();
        assert_eq!(s.hits, 3, "negative hits count as hits");
        assert_eq!(s.negative_hits, 2, "negative-entry hits are also surfaced separately");
        assert!((s.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hot_path_lock_acquisitions_are_counted() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        let _ = cache.get(&name("a.com"), RecordType::A, Timestamp(1));
        let _ = cache.age(&name("a.com"), RecordType::A, Timestamp(1));
        // insert + get + age: three hot-path acquisitions; flush() and
        // stats() are maintenance paths and deliberately uncounted.
        cache.flush();
        let s = cache.stats();
        assert_eq!(s.lock_acquisitions, 3);
        assert_eq!(s.lock_contended, 0, "single-threaded use never contends");
    }

    #[test]
    fn min_ttl_of_rrset_governs() {
        let cache = RecordCache::new();
        let records = vec![a_record(300), a_record(60)];
        cache.insert_positive(&name("a.com"), RecordType::A, records, vec![], Timestamp(0));
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(59)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(61)).is_none());
    }

    #[test]
    fn negative_caching() {
        let cache = RecordCache::new();
        cache.insert_negative(
            &name("gone.com"),
            RecordType::Https,
            Rcode::NxDomain,
            300,
            Timestamp(0),
        );
        match cache.get(&name("gone.com"), RecordType::Https, Timestamp(100)) {
            Some(CachedAnswer::Negative { rcode }) => assert_eq!(rcode, Rcode::NxDomain),
            other => panic!("{other:?}"),
        }
        assert!(cache.get(&name("gone.com"), RecordType::Https, Timestamp(301)).is_none());
    }

    #[test]
    fn ttl_clamp_caps_lifetime() {
        let cache = RecordCache::with_ttl_clamp(30);
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(29)).is_some());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(31)).is_none());
    }

    #[test]
    fn flush_clears() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        cache.flush();
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn age_tracks_insertion() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(100),
        );
        assert_eq!(cache.age(&name("a.com"), RecordType::A, Timestamp(150)), Some(50));
        assert_eq!(cache.age(&name("a.com"), RecordType::A, Timestamp(500)), None);
    }

    #[test]
    fn types_are_separate_keys() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("a.com"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::Https, Timestamp(1)).is_none());
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_some());
    }

    #[test]
    fn case_insensitive_keying() {
        let cache = RecordCache::new();
        cache.insert_positive(
            &name("A.COM"),
            RecordType::A,
            vec![a_record(300)],
            vec![],
            Timestamp(0),
        );
        assert!(cache.get(&name("a.com"), RecordType::A, Timestamp(1)).is_some());
    }

    #[test]
    fn empty_rrset_not_inserted() {
        let cache = RecordCache::new();
        cache.insert_positive(&name("a.com"), RecordType::A, vec![], vec![], Timestamp(0));
        assert!(cache.is_empty());
    }

    #[test]
    fn single_shard_degenerate_case_works() {
        let cache = RecordCache::with_shards(1);
        assert_eq!(cache.shard_count(), 1);
        for i in 0..32 {
            let n = name(&format!("d{i}.example"));
            cache.insert_positive(&n, RecordType::A, vec![a_record(60)], vec![], Timestamp(0));
        }
        assert_eq!(cache.len(), 32);
        assert_eq!(cache.stats().insertions, 32);
    }

    #[test]
    fn entries_spread_across_shards() {
        let cache = RecordCache::with_shards(16);
        for i in 0..256 {
            let n = name(&format!("d{i}.example"));
            cache.insert_positive(&n, RecordType::A, vec![a_record(60)], vec![], Timestamp(0));
        }
        assert_eq!(cache.len(), 256);
        let populated = cache.shards.iter().filter(|s| !s.entries.lock().is_empty()).count();
        assert!(populated > 8, "expected a spread, got {populated} populated shards");
    }

    #[test]
    fn shard_count_clamped_to_one() {
        let cache = RecordCache::with_shards(0);
        assert_eq!(cache.shard_count(), 1);
    }
}
