//! A persistent worker pool: long-lived OS threads fed by per-worker
//! FIFO queues.
//!
//! [`QueryEngine`](crate::QueryEngine)'s batch path used to tear down
//! and respawn scoped threads for every batch — a 25–35% per-batch tax
//! on a single-CPU host, paid again for every wave, day, and vantage of
//! a campaign. The [`WorkerPool`] replaces those scoped spawns with
//! workers that are started once (lazily, on the first batch that needs
//! them) and then reused for the engine's whole lifetime.
//!
//! ## Design
//!
//! - **One FIFO queue per worker.** Work is submitted to an explicit
//!   worker index, not to a shared queue, and there is no work stealing.
//!   This is what the engine's determinism contract needs: a zone's
//!   queries are all submitted to the same worker index, so they execute
//!   sequentially in submission order regardless of how many workers the
//!   pool holds or how the OS schedules them.
//! - **Jobs are owned closures** (`Box<dyn FnOnce() + Send>`). The
//!   workspace forbids `unsafe`, so the pool cannot lend workers
//!   stack-borrowed data the way `std::thread::scope` does; callers move
//!   `Arc`-shared state into each job and collect results over a
//!   channel. The engine amortises the resulting query ownership with a
//!   cross-batch intern table (see `engine.rs`).
//! - **Panics don't poison the pool.** Each job runs under
//!   `catch_unwind`, so a panicking job cannot kill its worker — the
//!   caller observes the panic as a disconnect on whatever result
//!   channel the job held (every capture is dropped during the unwind),
//!   and the worker moves on to its next queued job. One bad batch
//!   cannot wedge the campaign, and a job enqueued behind a panicking
//!   one still runs.
//!
//! Dropping the pool closes every queue and joins every worker, so an
//! engine going out of scope leaks no threads.

use std::sync::mpsc::{channel, Receiver, SendError, Sender};
use std::thread::{Builder, JoinHandle};

/// A unit of work for one worker: an owned closure.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// One long-lived worker: its job queue and thread handle.
struct Worker {
    queue: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn spawn(index: usize) -> Worker {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
        let handle = Builder::new()
            .name(format!("engine-worker-{index}"))
            .spawn(move || {
                // Run jobs in FIFO order until the pool drops the sender.
                // A panicking job must not take the worker (and the jobs
                // queued behind it) down with it: its captures — result
                // senders included — are dropped during the unwind,
                // which is how the submitting batch observes the
                // failure, and the worker moves on.
                while let Ok(job) = rx.recv() {
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                }
            })
            .expect("spawn engine worker thread");
        Worker { queue: Some(tx), handle: Some(handle) }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Close the queue first so the thread's `recv` loop ends, then
        // join it. A worker that died in a job panic joins immediately;
        // the panic itself was already surfaced to the submitting batch
        // through its result channel, so the payload is dropped here.
        self.queue.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A set of persistent workers addressed by index. See the module docs.
#[derive(Default)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// An empty pool; workers are spawned by [`WorkerPool::ensure`].
    pub fn new() -> WorkerPool {
        WorkerPool::default()
    }

    /// Number of workers currently alive.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Grow the pool to at least `n` workers. Existing workers (and
    /// their queued work) are untouched; the pool never shrinks.
    pub fn ensure(&mut self, n: usize) {
        while self.workers.len() < n {
            self.workers.push(Worker::spawn(self.workers.len()));
        }
    }

    /// Enqueue `job` on worker `index`'s FIFO queue and return
    /// immediately. Jobs submitted to one index run sequentially in
    /// submission order; jobs on different indices run concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range — call
    /// [`ensure`](WorkerPool::ensure) first.
    pub fn submit(&mut self, index: usize, job: Job) {
        let worker = &self.workers[index];
        let Some(queue) = worker.queue.as_ref() else {
            unreachable!("live workers always hold their queue sender")
        };
        if let Err(SendError(job)) = queue.send(job) {
            // Unreachable in practice: job panics are caught inside the
            // worker loop, so its receiver only closes if the thread was
            // torn down some other way. Respawn rather than wedge.
            self.workers[index] = Worker::spawn(index);
            let fresh = self.workers[index].queue.as_ref().expect("fresh worker holds its queue");
            fresh.send(job).expect("freshly spawned worker accepts work");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Submit one job per entry of `work` and wait for all of them,
    /// panicking if any worker died first — the collection pattern the
    /// engine's batch path uses.
    fn run_all(pool: &mut WorkerPool, work: Vec<(usize, Job)>) {
        let (tx, rx) = channel::<()>();
        let total = work.len();
        for (index, job) in work {
            let done = tx.clone();
            pool.submit(
                index,
                Box::new(move || {
                    job();
                    let _ = done.send(());
                }),
            );
        }
        drop(tx);
        let acked = rx.iter().count();
        assert!(acked == total, "a worker panicked ({acked}/{total} jobs finished)");
    }

    #[test]
    fn jobs_run_and_pool_is_reusable() {
        let mut pool = WorkerPool::new();
        pool.ensure(3);
        assert_eq!(pool.size(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _round in 0..4 {
            let work: Vec<(usize, Job)> = (0..3)
                .map(|w| {
                    let c = counter.clone();
                    (
                        w,
                        Box::new(move || {
                            c.fetch_add(1, Ordering::SeqCst);
                        }) as Job,
                    )
                })
                .collect();
            run_all(&mut pool, work);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 12);
        // `ensure` with a smaller count never shrinks the pool.
        pool.ensure(1);
        assert_eq!(pool.size(), 3);
    }

    #[test]
    fn one_worker_runs_its_queue_in_fifo_order() {
        let mut pool = WorkerPool::new();
        pool.ensure(1);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let work: Vec<(usize, Job)> = (0..16)
            .map(|i| {
                let log = log.clone();
                (
                    0usize,
                    Box::new(move || {
                        log.lock().push(i);
                    }) as Job,
                )
            })
            .collect();
        run_all(&mut pool, work);
        assert_eq!(*log.lock(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_is_observable_and_pool_keeps_serving() {
        let mut pool = WorkerPool::new();
        pool.ensure(2);

        // The panicking job drops its result sender during unwind, so
        // the caller sees a disconnect instead of a completion — the
        // signal the engine turns into its batch-level panic.
        let (tx, rx) = channel::<u32>();
        let good = tx.clone();
        pool.submit(
            0,
            Box::new(move || {
                good.send(7).unwrap();
            }),
        );
        let bad = tx.clone();
        pool.submit(
            1,
            Box::new(move || {
                let _hold = bad;
                panic!("injected job failure");
            }),
        );
        // A job queued behind the panicking one on the same worker must
        // still run: the unwind is caught inside the worker loop.
        let after = tx.clone();
        pool.submit(
            1,
            Box::new(move || {
                after.send(9).unwrap();
            }),
        );
        drop(tx);
        let mut received: Vec<u32> = rx.iter().collect();
        received.sort_unstable();
        assert_eq!(
            received,
            vec![7, 9],
            "panicking job must not produce a result or kill its queue"
        );

        // The pool keeps serving whole batches after a panic, on the
        // same worker set.
        assert_eq!(pool.size(), 2);
        let counter = Arc::new(AtomicUsize::new(0));
        let work: Vec<(usize, Job)> = (0..2)
            .map(|w| {
                let c = counter.clone();
                (
                    w,
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Job,
                )
            })
            .collect();
        run_all(&mut pool, work);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn drop_joins_all_workers() {
        let mut pool = WorkerPool::new();
        pool.ensure(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let work: Vec<(usize, Job)> = (0..4)
            .map(|w| {
                let c = counter.clone();
                (
                    w,
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Job,
                )
            })
            .collect();
        // Submit without waiting, then drop: Drop must still run every
        // queued job's worker to completion before joining.
        for (index, job) in work {
            pool.submit(index, job);
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
