//! Resolver vantage points: named profiles modelling how different
//! public/ISP resolvers see the same DNS ecosystem.
//!
//! The paper's central comparison (§4.2.3) is that the *same* zone data
//! looks different through different resolver vantage points: a
//! validating resolver pinned to its fastest server, a rotating public
//! resolver, and a randomized ISP cache disagree about a mixed-provider
//! zone's HTTPS record. A [`VantagePoint`] packages the knobs that
//! produce those differences — selection strategy, DNSSEC validation,
//! TTL clamp, negative-TTL default, and the selection seed — under a
//! stable label, so a scanner can drive N engines with distinct
//! profiles over one world and diff their datasets.
//!
//! ## Determinism
//!
//! Every profile is fully deterministic: `Random` selection draws from
//! per-zone RNGs seeded from `(seed, zone key)` (see
//! [`crate::selection`]), so a multi-vantage scan produces byte-identical
//! per-vantage datasets for any worker thread count.

use crate::engine::{EngineBackend, QueryEngine};
use crate::resolver::ResolverConfig;
use crate::selection::SelectionStrategy;
use authserver::DelegationRegistry;
use netsim::Network;

/// A named resolver profile: one vantage point onto the ecosystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VantagePoint {
    /// Stable label, used to tag stores and reports (e.g. `google`).
    pub name: String,
    /// Perform DNSSEC validation and report the AD bit.
    pub validate: bool,
    /// NS selection strategy this resolver uses.
    pub strategy: SelectionStrategy,
    /// Seed driving `Random` selection (per-zone streams derive from it).
    pub seed: u64,
    /// Cache TTL clamp, seconds (None = honour authoritative TTLs).
    pub ttl_clamp: Option<u32>,
    /// Negative-cache TTL when the response carries no SOA.
    pub default_negative_ttl: u32,
    /// Batch backend this vantage's engine resolves with (the pooled
    /// workers by default; the virtual-time event loop when the campaign
    /// models latency/loss).
    pub backend: EngineBackend,
}

impl VantagePoint {
    /// A custom profile with the given label and strategy; remaining
    /// knobs start from the validating defaults.
    pub fn custom(name: &str, strategy: SelectionStrategy) -> VantagePoint {
        VantagePoint {
            name: name.to_string(),
            validate: true,
            strategy,
            seed: 0,
            ttl_clamp: None,
            default_negative_ttl: 300,
            backend: EngineBackend::Pooled,
        }
    }

    /// Google-Public-DNS-style profile: validating, rotates through the
    /// delegation set per query, clamps cache TTLs to six hours.
    pub fn google_public() -> VantagePoint {
        VantagePoint {
            name: "google".to_string(),
            validate: true,
            strategy: SelectionStrategy::RoundRobin,
            seed: 0x600_61E,
            ttl_clamp: Some(21_600),
            default_negative_ttl: 300,
            backend: EngineBackend::Pooled,
        }
    }

    /// Cloudflare-1.1.1.1-style profile: validating, pinned to its
    /// measured-fastest server, aggressive (low) TTL clamp.
    pub fn cloudflare_public() -> VantagePoint {
        VantagePoint {
            name: "cloudflare".to_string(),
            validate: true,
            strategy: SelectionStrategy::First,
            seed: 0x1111,
            ttl_clamp: Some(3_600),
            default_negative_ttl: 300,
            backend: EngineBackend::Pooled,
        }
    }

    /// ISP-resolver-style profile: no DNSSEC validation, randomized NS
    /// selection, honours authoritative TTLs, long negative default.
    pub fn isp_resolver() -> VantagePoint {
        VantagePoint {
            name: "isp".to_string(),
            validate: false,
            strategy: SelectionStrategy::Random,
            seed: 0x15B_0BAD,
            ttl_clamp: None,
            default_negative_ttl: 900,
            backend: EngineBackend::Pooled,
        }
    }

    /// The three standard presets the multi-vantage scanner compares:
    /// [`google_public`](Self::google_public),
    /// [`cloudflare_public`](Self::cloudflare_public), and
    /// [`isp_resolver`](Self::isp_resolver).
    pub fn presets() -> Vec<VantagePoint> {
        vec![
            VantagePoint::google_public(),
            VantagePoint::cloudflare_public(),
            VantagePoint::isp_resolver(),
        ]
    }

    /// Override the selection seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> VantagePoint {
        self.seed = seed;
        self
    }

    /// Select the batch backend (builder style).
    pub fn with_backend(mut self, backend: EngineBackend) -> VantagePoint {
        self.backend = backend;
        self
    }

    /// The [`ResolverConfig`] this profile resolves with.
    pub fn resolver_config(&self) -> ResolverConfig {
        ResolverConfig {
            validate: self.validate,
            strategy: self.strategy,
            seed: self.seed,
            ttl_clamp: self.ttl_clamp,
            default_negative_ttl: self.default_negative_ttl,
            backend: self.backend,
            ..Default::default()
        }
    }

    /// Build a [`QueryEngine`] for this vantage on `network`/`registry`.
    pub fn engine(&self, network: Network, registry: DelegationRegistry) -> QueryEngine {
        QueryEngine::new(network, registry, self.resolver_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_names_and_strategies() {
        let presets = VantagePoint::presets();
        assert_eq!(presets.len(), 3);
        let names: std::collections::HashSet<_> = presets.iter().map(|v| v.name.clone()).collect();
        assert_eq!(names.len(), presets.len(), "preset labels must be unique");
        let strategies: std::collections::HashSet<_> =
            presets.iter().map(|v| format!("{:?}", v.strategy)).collect();
        assert_eq!(strategies.len(), 3, "presets must differ in selection strategy");
        assert!(presets.iter().any(|v| v.strategy == SelectionStrategy::Random));
    }

    #[test]
    fn config_mirrors_profile() {
        let v = VantagePoint::google_public();
        let cfg = v.resolver_config();
        assert_eq!(cfg.validate, v.validate);
        assert_eq!(cfg.strategy, v.strategy);
        assert_eq!(cfg.seed, v.seed);
        assert_eq!(cfg.ttl_clamp, v.ttl_clamp);
        assert_eq!(cfg.default_negative_ttl, v.default_negative_ttl);
    }

    #[test]
    fn custom_profile_keeps_label() {
        let v = VantagePoint::custom("lab", SelectionStrategy::First).with_seed(9);
        assert_eq!(v.name, "lab");
        assert_eq!(v.seed, 9);
        assert!(v.validate);
    }
}
