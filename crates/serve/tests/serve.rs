//! Behavioural contract of the serving subsystem: open-loop saturation,
//! replay repeatability, and the hit-rate-vs-capacity shape.

use ecosystem::{EcosystemConfig, World};
use resolver::EvictionPolicy;
use serve::{capacity_curve, load_sweep, ServeConfig, StubPopulation, WorkloadConfig};

fn tiny_world() -> World {
    World::build(EcosystemConfig::tiny())
}

/// A fast serving config for the tiny world: short phases, a small
/// client population.
fn fast_config() -> ServeConfig {
    ServeConfig {
        workload: WorkloadConfig { clients: 64, ..WorkloadConfig::default() },
        phase_ms: 300,
        ..ServeConfig::default()
    }
}

#[test]
fn arrivals_are_sorted_windowed_and_deterministic() {
    let world = tiny_world();
    let population = StubPopulation::new(
        world.today_list_shared(),
        WorkloadConfig { clients: 32, ..WorkloadConfig::default() },
    );
    let render = |run: &[serve::Arrival]| -> Vec<String> {
        run.iter().map(|a| format!("{} {} {:?}", a.at_us, a.client, a.query)).collect()
    };
    let a = population.arrivals(&world, 0, 2_000.0, 1_000_000, 500_000);
    assert!(!a.is_empty());
    for pair in a.windows(2) {
        assert!(
            (pair[0].at_us, pair[0].client) < (pair[1].at_us, pair[1].client),
            "arrivals must be strictly ordered"
        );
    }
    assert!(a.iter().all(|x| (1_000_000..1_500_000).contains(&x.at_us)));
    // ~1000 expected (2 kq/s × 0.5 s); Poisson + rate jitter keeps it in
    // a broad deterministic band.
    assert!((500..1_600).contains(&a.len()), "got {} arrivals", a.len());
    let b = population.arrivals(&world, 0, 2_000.0, 1_000_000, 500_000);
    assert_eq!(render(&a), render(&b), "same inputs must replay the same stream");
    let other_phase = population.arrivals(&world, 1, 2_000.0, 1_000_000, 500_000);
    assert_ne!(render(&a), render(&other_phase), "phases must draw distinct streams");
}

#[test]
fn sweep_finds_the_saturation_knee() {
    let world = tiny_world();
    let report = load_sweep(&world, &fast_config(), &[1.0, 50.0], None);
    assert_eq!(report.phases.len(), 2);
    let low = &report.phases[0];
    let high = &report.phases[1];
    assert!(!low.saturated(), "1 kq/s must be sustained: {}", low.canonical_line());
    assert!(high.saturated(), "50 kq/s must saturate one worker: {}", high.canonical_line());
    assert!(high.achieved_kqps < 50.0 * 0.95);
    assert!(high.p99_us > low.p99_us, "queueing delay must blow up the tail under saturation");
    assert!(report.saturated());
    assert!((report.sustained_kqps() - 1.0).abs() < 1e-9);
    assert_eq!(report.p99_at_sustained_us(), Some(low.p99_us));
    assert_eq!(low.failures, 0, "the tiny world's listed domains must resolve");
    // The cache warms within the sweep: the last hit-rate window of the
    // first phase beats the first window.
    assert!(low.hit_series.last().unwrap() > low.hit_series.first().unwrap());
}

#[test]
fn repeated_sweeps_are_byte_identical() {
    let world = tiny_world();
    let cfg = fast_config();
    let first = load_sweep(&world, &cfg, &[2.0, 8.0], None);
    // The clock has advanced, but every phase re-aligns to a fresh whole
    // second, so a second sweep (fresh engine, same seeds) replays the
    // exact same virtual-time story.
    let second = load_sweep(&world, &cfg, &[2.0, 8.0], None);
    assert_eq!(first.canonical_text(), second.canonical_text());
}

#[test]
fn bounding_the_cache_costs_hit_rate() {
    let world = tiny_world();
    let mut unbounded = fast_config();
    unbounded.capacity_per_shard = None;
    let mut starved = fast_config();
    starved.capacity_per_shard = Some(2);
    let free = load_sweep(&world, &unbounded, &[4.0], None);
    let tight = load_sweep(&world, &starved, &[4.0], None);
    assert!(
        tight.phases[0].hit_rate < free.phases[0].hit_rate,
        "a starved cache must hit less: {} vs {}",
        tight.phases[0].hit_rate,
        free.phases[0].hit_rate
    );
    assert!(tight.phases[0].evictions > 0);
    assert_eq!(free.phases[0].evictions, 0, "an unbounded cache never evicts");
}

#[test]
fn lru_hit_rate_is_monotone_in_capacity() {
    let world = tiny_world();
    let points = capacity_curve(
        &world,
        &fast_config(),
        &[2, 8, 32, 256],
        &[EvictionPolicy::TtlSweepLru],
        8.0,
    );
    assert_eq!(points.len(), 4);
    for pair in points.windows(2) {
        assert!(
            pair[1].hit_rate >= pair[0].hit_rate - 1e-9,
            "LRU inclusion property: {} then {}",
            pair[0].canonical_line(),
            pair[1].canonical_line()
        );
    }
    assert!(
        points.last().unwrap().hit_rate > points.first().unwrap().hit_rate,
        "the capacity range must actually matter"
    );
    for p in &points {
        assert!(p.entries <= p.total_capacity, "{}", p.canonical_line());
        assert!(p.approx_bytes > 0);
    }
}

#[test]
fn curve_covers_both_policies_deterministically() {
    let world = tiny_world();
    let cfg = fast_config();
    let policies = [EvictionPolicy::TtlSweepLru, EvictionPolicy::S3Fifo];
    let a = capacity_curve(&world, &cfg, &[8, 64], &policies, 8.0);
    let b = capacity_curve(&world, &cfg, &[8, 64], &policies, 8.0);
    assert_eq!(a.len(), 4);
    let lines = |pts: &[serve::CurvePoint]| -> Vec<String> {
        pts.iter().map(|p| p.canonical_line()).collect()
    };
    assert_eq!(lines(&a), lines(&b), "curve cells must replay identically");
    for p in &a {
        assert!(p.hit_rate > 0.0 && p.hit_rate <= 1.0);
    }
}
