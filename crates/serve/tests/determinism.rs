//! The serving subsystem's determinism contract: the [`ServeReport`]
//! and every deterministic metric (serve counters, the
//! `serve.latency_us` det-histogram, the cache eviction counters) are
//! byte-identical across runs and host thread counts.
//!
//! The serve path drives the engine strictly sequentially, so thread
//! counts cannot influence it *by construction*; this suite pins that
//! property by rebuilding the whole story from scratch once per axis
//! value and byte-comparing. CI runs it under the same
//! `RESOLVER_TEST_THREADS` matrix as `engine_batch`/`event_backend`, so
//! any future thread-dependence sneaking into the serve path breaks a
//! pinned string on some leg.

use ecosystem::{EcosystemConfig, World};
use resolver::EvictionPolicy;
use serve::{capacity_curve, load_sweep, ServeConfig, WorkloadConfig};
use telemetry::MetricsRegistry;

/// Thread counts to exercise (the CI matrix hook, same as engine_batch).
fn thread_axis() -> Vec<usize> {
    let mut axis = vec![1, 2, 4, 8];
    if let Ok(extra) = std::env::var("RESOLVER_TEST_THREADS") {
        for tok in extra.split(',') {
            if let Ok(n) = tok.trim().parse::<usize>() {
                if n > 0 && !axis.contains(&n) {
                    axis.push(n);
                }
            }
        }
    }
    axis
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workload: WorkloadConfig { clients: 48, ..WorkloadConfig::default() },
        capacity_per_shard: Some(16),
        phase_ms: 250,
        ..ServeConfig::default()
    }
}

/// One complete serving story from a cold world: a two-phase sweep with
/// metrics attached, rendered as `report text + pinned counters text`.
fn story() -> String {
    let world = World::build(EcosystemConfig::tiny());
    let metrics = MetricsRegistry::new("serve");
    let report = load_sweep(&world, &serve_config(), &[2.0, 6.0], Some(&metrics));
    format!("{}---\n{}", report.canonical_text(), metrics.counters_text())
}

#[test]
fn serve_report_and_counters_are_byte_identical_across_the_matrix() {
    let reference = story();
    assert!(reference.contains("counter serve.queries"));
    assert!(reference.contains("det_histogram serve.latency_us"));
    assert!(reference.contains("counter cache.capacity_per_shard 16"));
    for threads in thread_axis() {
        let leg = story();
        assert_eq!(
            reference, leg,
            "serve story diverged on axis value {threads} (sequential-by-construction \
             serving must not depend on host threads)"
        );
    }
}

#[test]
fn eviction_counters_reach_the_registry() {
    let world = World::build(EcosystemConfig::tiny());
    let metrics = MetricsRegistry::new("serve");
    let report = load_sweep(&world, &serve_config(), &[6.0], Some(&metrics));
    let evicted: u64 = report.phases.iter().map(|p| p.evictions).sum();
    assert!(evicted > 0, "a 16-per-shard bound must evict on the tiny world");
    assert_eq!(metrics.counter_value("cache.evictions"), evicted);
    let per_shard: u64 =
        (0..16).map(|i| metrics.counter_value(&format!("cache.shard{i:02}.evictions"))).sum();
    assert_eq!(per_shard, evicted, "per-shard counters must sum to the aggregate");
    assert_eq!(metrics.counter_value("serve.queries"), report.phases[0].queries);
}

#[test]
fn capacity_curve_is_stable_across_policy_order() {
    // Cells are independent (fresh engine each): reversing the policy
    // order must not change any cell's numbers.
    let world = World::build(EcosystemConfig::tiny());
    let cfg = serve_config();
    let forward = capacity_curve(
        &world,
        &cfg,
        &[8, 64],
        &[EvictionPolicy::TtlSweepLru, EvictionPolicy::S3Fifo],
        6.0,
    );
    let backward = capacity_curve(
        &world,
        &cfg,
        &[8, 64],
        &[EvictionPolicy::S3Fifo, EvictionPolicy::TtlSweepLru],
        6.0,
    );
    let find = |pts: &[serve::CurvePoint], policy: EvictionPolicy, cap: usize| -> String {
        pts.iter()
            .find(|p| p.policy == policy && p.capacity_per_shard == cap)
            .expect("cell present")
            .canonical_line()
    };
    for policy in [EvictionPolicy::TtlSweepLru, EvictionPolicy::S3Fifo] {
        for cap in [8, 64] {
            assert_eq!(find(&forward, policy, cap), find(&backward, policy, cap));
        }
    }
}
