//! Deterministic stub-client workload generation.
//!
//! A [`StubPopulation`] models `clients` independent stubs behind the
//! resolver. Each client is an open-loop Poisson source: exponential
//! inter-arrival gaps at a per-client rate (the offered rate split
//! evenly, then jittered ±30% per client so the population isn't
//! uniform), with query targets drawn Zipf-over-Tranco through
//! [`DailyList::sample_by_popularity`] and a fixed query-shape mix
//! (apex HTTPS / apex A / `www` HTTPS — the shapes the paper's scanner
//! measures).
//!
//! Every random choice comes from a per-`(seed, phase, client)` seeded
//! [`StdRng`], and the per-client streams are merged through an ordered
//! event queue keyed `(arrival time, client id)`, so the emitted
//! arrival vector is a pure function of `(config, list, phase, rate,
//! window)` — byte-identical on every run and host.

use dns_wire::RecordType;
use ecosystem::{DailyList, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resolver::Query;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Shape of the stub-client population.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of independent stub clients (minimum 1).
    pub clients: usize,
    /// Master seed; per-client streams derive from `(seed, phase,
    /// client)`.
    pub seed: u64,
    /// Fraction of queries that are apex HTTPS lookups.
    pub apex_https: f64,
    /// Fraction of queries that are apex A lookups (the remainder are
    /// `www` HTTPS lookups).
    pub apex_a: f64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig { clients: 256, seed: 0x5E17E, apex_https: 0.55, apex_a: 0.30 }
    }
}

/// One stub-client query arrival in virtual time.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Arrival instant, virtual microseconds since the epoch.
    pub at_us: u64,
    /// Emitting client id (`0..clients`).
    pub client: u32,
    /// The query the client asks.
    pub query: Query,
}

/// A deterministic stub-client population over one day's Tranco list.
pub struct StubPopulation {
    list: Arc<DailyList>,
    config: WorkloadConfig,
}

impl StubPopulation {
    /// A population querying `list` (which must carry popularity
    /// weights; see [`DailyList::sample_by_popularity`]).
    pub fn new(list: Arc<DailyList>, config: WorkloadConfig) -> StubPopulation {
        StubPopulation { list, config }
    }

    /// The population's configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generate the merged open-loop arrival stream for one phase:
    /// `offered_qps` total offered queries/second across all clients,
    /// over the virtual window `[start_us, start_us + duration_us)`.
    /// Arrivals are returned sorted by `(at_us, client)`.
    pub fn arrivals(
        &self,
        world: &World,
        phase: u64,
        offered_qps: f64,
        start_us: u64,
        duration_us: u64,
    ) -> Vec<Arrival> {
        let clients = self.config.clients.max(1);
        let end_us = start_us + duration_us;
        let mut rngs: Vec<StdRng> = Vec::with_capacity(clients);
        let mut rates: Vec<f64> = Vec::with_capacity(clients);
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::with_capacity(clients);
        for c in 0..clients {
            let mut rng = StdRng::seed_from_u64(
                self.config.seed
                    ^ phase.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (c as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
            );
            // ±30% per-client rate jitter: the offered load is exact in
            // expectation, but the population is heterogeneous.
            let jitter: f64 = rng.gen_range(0.7..1.3);
            let rate_per_us = offered_qps * jitter / clients as f64 / 1_000_000.0;
            if rate_per_us > 0.0 {
                let first = start_us + exp_gap(&mut rng, rate_per_us);
                heap.push(Reverse((first, c as u32)));
            }
            rngs.push(rng);
            rates.push(rate_per_us);
        }
        let mut arrivals = Vec::new();
        while let Some(Reverse((at_us, client))) = heap.pop() {
            if at_us >= end_us {
                continue;
            }
            let rng = &mut rngs[client as usize];
            arrivals.push(Arrival { at_us, client, query: self.sample_query(world, rng) });
            heap.push(Reverse((at_us + exp_gap(rng, rates[client as usize]), client)));
        }
        arrivals
    }

    /// Draw one query: a popularity-weighted domain plus a shape from
    /// the configured mix.
    fn sample_query(&self, world: &World, rng: &mut StdRng) -> Query {
        let id = self.list.sample_by_popularity(rng);
        let apex = world.domain(id).apex.clone();
        let shape: f64 = rng.gen_range(0.0..1.0);
        if shape < self.config.apex_https {
            Query::new(apex, RecordType::Https)
        } else if shape < self.config.apex_https + self.config.apex_a {
            Query::new(apex, RecordType::A)
        } else {
            match apex.prepend("www") {
                Ok(www) => Query::new(www, RecordType::Https),
                Err(_) => Query::new(apex, RecordType::Https),
            }
        }
    }
}

/// An exponential inter-arrival gap in whole microseconds (≥ 1, so a
/// client never emits two queries at the same instant).
fn exp_gap(rng: &mut StdRng, rate_per_us: f64) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    ((-(1.0 - u).ln() / rate_per_us) as u64).max(1)
}
