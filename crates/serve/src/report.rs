//! Serving results: per-phase reports, the sweep-level [`ServeReport`],
//! and hit-rate-vs-capacity [`CurvePoint`]s.
//!
//! Every number here derives from virtual time or deterministic
//! counters, and the canonical text renderings use fixed-precision
//! formatting, so two runs of the same sweep produce byte-identical
//! strings — the property the determinism tests byte-compare.

use resolver::EvictionPolicy;
use std::fmt::Write;

/// The achieved/offered ratio below which a phase counts as saturated.
pub const SATURATION_THRESHOLD: f64 = 0.95;

/// One load phase's results.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Nominal offered load, thousand queries per virtual second.
    pub offered_kqps: f64,
    /// Queries that arrived (and were served) in the phase window.
    pub queries: u64,
    /// Realized arrival rate (`queries / window`) — the Poisson
    /// processes fluctuate a few percent around the nominal offer, so
    /// saturation is judged against this, not against
    /// [`offered_kqps`](Self::offered_kqps).
    pub arrived_kqps: f64,
    /// Achieved throughput: completions over the span from phase start
    /// to the last completion (which extends past the window when the
    /// backlog grows — i.e. under saturation).
    pub achieved_kqps: f64,
    /// Fraction of queries answered from the resolver cache.
    pub hit_rate: f64,
    /// Median virtual-time latency (queue wait + service + miss
    /// penalty), microseconds.
    pub p50_us: u64,
    /// 99th-percentile virtual-time latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile virtual-time latency, microseconds.
    pub p999_us: u64,
    /// Queries that failed to resolve.
    pub failures: u64,
    /// Cache capacity evictions during the phase.
    pub evictions: u64,
    /// TTL-expired entries swept during the phase.
    pub swept: u64,
    /// Hit rate per eighth of the phase window (the warm-up series).
    pub hit_series: Vec<f64>,
}

impl PhaseReport {
    /// Whether the phase failed to keep up with the load that actually
    /// arrived: the busy period ran more than `1/0.95` of the arrival
    /// window, i.e. the backlog grew instead of draining.
    pub fn saturated(&self) -> bool {
        self.achieved_kqps < self.arrived_kqps * SATURATION_THRESHOLD
    }

    /// Canonical one-line rendering.
    pub fn canonical_line(&self) -> String {
        let series: Vec<String> = self.hit_series.iter().map(|h| format!("{h:.4}")).collect();
        format!(
            "offered_kqps={:.3} queries={} arrived_kqps={:.3} achieved_kqps={:.3} \
             hit_rate={:.4} p50_us={} p99_us={} p999_us={} failures={} evictions={} swept={} \
             saturated={} series={}",
            self.offered_kqps,
            self.queries,
            self.arrived_kqps,
            self.achieved_kqps,
            self.hit_rate,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.failures,
            self.evictions,
            self.swept,
            self.saturated(),
            series.join(",")
        )
    }
}

/// A full load sweep's results.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Eviction policy of the engine's cache (when bounded).
    pub policy: EvictionPolicy,
    /// Per-shard capacity bound (`None` = unbounded).
    pub capacity_per_shard: Option<usize>,
    /// Stub clients generating load.
    pub clients: usize,
    /// Virtual service workers in the queueing model.
    pub workers: usize,
    /// Per-phase results, in ramp order.
    pub phases: Vec<PhaseReport>,
}

impl ServeReport {
    /// Highest offered kq/s the engine sustained (achieved ≥ 95% of
    /// offered); 0 if every phase saturated.
    pub fn sustained_kqps(&self) -> f64 {
        self.phases.iter().filter(|p| !p.saturated()).map(|p| p.offered_kqps).fold(0.0, f64::max)
    }

    /// Whether any phase saturated (the sweep found the knee).
    pub fn saturated(&self) -> bool {
        self.phases.iter().any(|p| p.saturated())
    }

    /// The p99 latency (µs) of the highest non-saturated phase, if any.
    pub fn p99_at_sustained_us(&self) -> Option<u64> {
        self.phases
            .iter()
            .filter(|p| !p.saturated())
            .max_by(|a, b| a.offered_kqps.total_cmp(&b.offered_kqps))
            .map(|p| p.p99_us)
    }

    /// Canonical multi-line rendering; byte-identical across runs and
    /// host thread counts.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        let capacity = match self.capacity_per_shard {
            Some(c) => c.to_string(),
            None => "unbounded".to_string(),
        };
        let _ = writeln!(
            out,
            "serve policy={} capacity_per_shard={} clients={} workers={}",
            self.policy, capacity, self.clients, self.workers
        );
        for (i, phase) in self.phases.iter().enumerate() {
            let _ = writeln!(out, "phase {i:02} {}", phase.canonical_line());
        }
        let _ = writeln!(
            out,
            "sustained_kqps={:.3} saturated={}",
            self.sustained_kqps(),
            self.saturated()
        );
        out
    }
}

/// One cell of a hit-rate-vs-capacity curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Eviction policy of this cell.
    pub policy: EvictionPolicy,
    /// Per-shard capacity bound.
    pub capacity_per_shard: usize,
    /// Total capacity (`capacity_per_shard × shards`).
    pub total_capacity: usize,
    /// Hit rate over the cell's replayed trace.
    pub hit_rate: f64,
    /// p99 virtual-time latency over the trace, microseconds.
    pub p99_us: u64,
    /// Capacity evictions during the trace.
    pub evictions: u64,
    /// TTL sweeps during the trace.
    pub swept: u64,
    /// Entries resident when the trace ended.
    pub entries: usize,
    /// Approximate resident bytes when the trace ended (heuristic; see
    /// `RecordCache::approx_bytes`).
    pub approx_bytes: usize,
}

impl CurvePoint {
    /// Canonical one-line rendering.
    pub fn canonical_line(&self) -> String {
        format!(
            "policy={} capacity_per_shard={} total_capacity={} hit_rate={:.4} p99_us={} \
             evictions={} swept={} entries={} approx_bytes={}",
            self.policy,
            self.capacity_per_shard,
            self.total_capacity,
            self.hit_rate,
            self.p99_us,
            self.evictions,
            self.swept,
            self.entries,
            self.approx_bytes
        )
    }
}
