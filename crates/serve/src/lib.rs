//! # serve
//!
//! The serving subsystem: flip the scanner's direction and model a
//! recursive resolver *serving* a stub-client population, instead of a
//! measurement harness asking its own questions.
//!
//! Two halves:
//!
//! - [`workload`]: a deterministic stub-client load generator.
//!   Clients draw query targets Zipf-over-Tranco via
//!   [`ecosystem::DailyList::sample_by_popularity`] (reusing the model's
//!   precomputed `base_weight` popularity — no second popularity model),
//!   and emit open-loop Poisson arrivals with per-client seeded rate
//!   jitter, merged into one virtual-time arrival stream.
//! - [`driver`]: replays an arrival stream against a
//!   [`resolver::QueryEngine`] with a **bounded** record cache
//!   ([`resolver::EvictionPolicy`]), layering a deterministic k-server
//!   queueing model in virtual microseconds on top of the engine's
//!   hit/miss outcomes. Open-loop load sweeps ramp offered kq/s until
//!   the model saturates; capacity curves compare eviction policies by
//!   hit rate.
//!
//! ## Determinism
//!
//! Everything reported ([`ServeReport`], the serve counters, the
//! `serve.latency_us` deterministic histogram) derives from virtual
//! time and seeded RNG streams only — never wall clocks — and the serve
//! path drives the engine strictly sequentially, so reports are
//! byte-identical across host thread counts *by construction* (the same
//! contract the event-loop backend satisfies; pinned by this crate's
//! determinism tests under the `RESOLVER_TEST_THREADS` matrix).
//!
//! The queueing model is explicitly a model: per-query service costs
//! (cache hit vs recursive miss) and the miss RTT penalty are
//! configuration knobs, not measurements; misses add latency but do not
//! occupy the worker for the RTT (the worker is assumed to context
//! switch). Saturation then emerges naturally when offered load exceeds
//! `workers / avg_service`.

#![warn(missing_docs)]

pub mod driver;
pub mod report;
pub mod workload;

pub use driver::{capacity_curve, load_sweep, ServeConfig};
pub use report::{CurvePoint, PhaseReport, ServeReport};
pub use workload::{Arrival, StubPopulation, WorkloadConfig};
