//! The serving driver: replay stub-client arrivals against a
//! bounded-cache resolver engine under a deterministic k-server
//! queueing model in virtual time.
//!
//! ## The model
//!
//! Each arrival is resolved **sequentially** through the real engine
//! (real cache, real zone data, real negative answers), which yields
//! its ground-truth outcome: hit, recursive miss, or failure. On top of
//! those outcomes a deterministic M/G/k queue in virtual microseconds
//! assigns latency: `workers` virtual servers each take
//! `hit_service_us` per cache hit and `miss_service_us` per recursive
//! resolution, and a miss additionally pays `miss_penalty_us` of
//! upstream RTT **in latency only** (the worker is assumed to service
//! other queries while the recursion is in flight). Latency = queue
//! wait + service + penalty. When offered load exceeds
//! `workers / avg_service`, the backlog grows and the achieved rate
//! tops out — the sweep's saturation knee.
//!
//! Service costs are model knobs, not measurements; what the real
//! engine contributes is the *hit/miss stream* — which is exactly what
//! capacity bounds and eviction policies change.
//!
//! ## Determinism and replay comparability
//!
//! Every phase (and every capacity-curve cell) starts on a fresh whole
//! virtual second, and arrival offsets within a phase are generated
//! relative to the phase start from `(seed, phase, client)`-seeded
//! RNGs. Cache expiry has second granularity, so aligning the starts
//! makes the TTL boundaries fall identically relative to the arrivals
//! in every replay — a curve cell or a repeated sweep sees the exact
//! same hit/miss stream. The driver never spawns threads, so reports
//! are byte-identical for any host thread count by construction.

use crate::report::{CurvePoint, PhaseReport, ServeReport};
use crate::workload::{StubPopulation, WorkloadConfig};
use ecosystem::World;
use netsim::TimeMs;
use resolver::{EvictionPolicy, QueryEngine, ResolverConfig, DEFAULT_SHARDS};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use telemetry::MetricsRegistry;

/// Serving-driver configuration: the workload shape plus the queueing
/// model's knobs and the cache bound under test.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Stub-client population shape.
    pub workload: WorkloadConfig,
    /// Virtual service workers (the `k` of the queueing model).
    pub workers: usize,
    /// Virtual service cost of a cache hit, microseconds.
    pub hit_service_us: u64,
    /// Virtual service cost of a recursive (miss) resolution,
    /// microseconds of worker occupancy.
    pub miss_service_us: u64,
    /// Upstream RTT a miss adds to its own latency (not to worker
    /// occupancy), microseconds.
    pub miss_penalty_us: u64,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Per-shard cache capacity (`None` = unbounded).
    pub capacity_per_shard: Option<usize>,
    /// Eviction policy when bounded.
    pub policy: EvictionPolicy,
    /// Virtual length of one load phase, milliseconds.
    pub phase_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workload: WorkloadConfig::default(),
            workers: 1,
            hit_service_us: 20,
            miss_service_us: 400,
            miss_penalty_us: 20_000,
            cache_shards: DEFAULT_SHARDS,
            capacity_per_shard: Some(4_096),
            policy: EvictionPolicy::TtlSweepLru,
            phase_ms: 1_000,
        }
    }
}

/// Build the serving engine: no DNSSEC validation (validation re-runs
/// signature checks on every cache hit — a scanner concern, not a
/// serving-path one), bounded cache per the config.
fn engine_for(world: &World, cfg: &ServeConfig) -> QueryEngine {
    QueryEngine::new(
        world.network.clone(),
        world.registry.clone(),
        ResolverConfig {
            validate: false,
            cache_shards: cfg.cache_shards,
            cache_capacity_per_shard: cfg.capacity_per_shard,
            cache_eviction: cfg.policy,
            ..ResolverConfig::default()
        },
    )
}

/// Number of hit-rate windows each phase is split into.
const SERIES_WINDOWS: usize = 8;

/// Run one load phase: align the clock to a fresh second, generate the
/// phase's arrivals, serve them sequentially through `engine` under the
/// queueing model, and leave the clock at the end of the busy period.
fn run_phase(
    world: &World,
    engine: &QueryEngine,
    population: &StubPopulation,
    cfg: &ServeConfig,
    phase: u64,
    offered_qps: f64,
    metrics: Option<&MetricsRegistry>,
) -> PhaseReport {
    let clock = world.clock.clone();
    // Fresh whole-second start: cache expiry is second-granular, so this
    // pins TTL boundaries identically relative to the arrivals in every
    // replay of the same phase.
    let start_ms = (clock.now_ms().0 / 1_000 + 1) * 1_000;
    clock.set_ms(TimeMs(start_ms));
    let start_us = start_ms * 1_000;
    let duration_us = cfg.phase_ms.max(1) * 1_000;
    let arrivals = population.arrivals(world, phase, offered_qps, start_us, duration_us);

    let before = engine.cache().stats();
    let latency_hist = metrics.map(|m| m.det_histogram("serve.latency_us"));
    let workers = cfg.workers.max(1);
    let mut free: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(start_us)).collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(arrivals.len());
    let (mut hits, mut failures) = (0u64, 0u64);
    let mut last_done_us = start_us;
    let window_us = (duration_us / SERIES_WINDOWS as u64).max(1);
    let mut windows = [(0u64, 0u64); SERIES_WINDOWS];

    for arrival in &arrivals {
        let at_ms = arrival.at_us / 1_000;
        if at_ms > clock.now_ms().0 {
            clock.set_ms(TimeMs(at_ms));
        }
        let hit = match engine.resolve(&arrival.query.name, arrival.query.rtype) {
            Ok(resolution) => resolution.from_cache,
            Err(_) => {
                failures += 1;
                false
            }
        };
        if hit {
            hits += 1;
        }
        let service = if hit { cfg.hit_service_us } else { cfg.miss_service_us };
        let Reverse(free_at) = free.pop().expect("at least one worker");
        let done = free_at.max(arrival.at_us) + service;
        free.push(Reverse(done));
        if done > last_done_us {
            last_done_us = done;
        }
        let latency = done - arrival.at_us + if hit { 0 } else { cfg.miss_penalty_us };
        if let Some(hist) = &latency_hist {
            hist.record(latency);
        }
        latencies.push(latency);
        let w = (((arrival.at_us - start_us) / window_us) as usize).min(SERIES_WINDOWS - 1);
        windows[w].1 += 1;
        if hit {
            windows[w].0 += 1;
        }
    }

    // Advance past both the phase window and any backlog drain, so the
    // next phase starts from a clean (and strictly later) second.
    let end_ms = (start_us + duration_us).max(last_done_us).div_ceil(1_000);
    if end_ms > clock.now_ms().0 {
        clock.set_ms(TimeMs(end_ms));
    }

    let queries = arrivals.len() as u64;
    if let Some(m) = metrics {
        m.counter("serve.phases").inc();
        m.counter("serve.queries").add(queries);
        m.counter("serve.hits").add(hits);
        m.counter("serve.failures").add(failures);
    }

    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[((latencies.len() - 1) as f64 * q) as usize]
        }
    };
    let busy_us = (last_done_us - start_us).max(1);
    let after = engine.cache().stats();
    PhaseReport {
        offered_kqps: offered_qps / 1_000.0,
        queries,
        arrived_kqps: queries as f64 * 1_000.0 / duration_us as f64,
        achieved_kqps: queries as f64 * 1_000.0 / busy_us as f64,
        hit_rate: if queries == 0 { 0.0 } else { hits as f64 / queries as f64 },
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        p999_us: quantile(0.999),
        failures,
        evictions: after.evictions - before.evictions,
        swept: after.swept - before.swept,
        hit_series: windows
            .iter()
            .map(|(h, t)| if *t == 0 { 0.0 } else { *h as f64 / *t as f64 })
            .collect(),
    }
}

/// Run an open-loop load sweep: one engine (and cache) serves phases of
/// increasing offered load (`rates_kqps`, thousand queries per virtual
/// second each), warming across phases exactly as a long-running
/// resolver would. Returns the [`ServeReport`]; when `metrics` is
/// given, serve counters, the `serve.latency_us` deterministic
/// histogram, and the cache's eviction counters are exported into it.
pub fn load_sweep(
    world: &World,
    cfg: &ServeConfig,
    rates_kqps: &[f64],
    metrics: Option<&MetricsRegistry>,
) -> ServeReport {
    let engine = engine_for(world, cfg);
    let population = StubPopulation::new(world.today_list_shared(), cfg.workload.clone());
    let mut phases = Vec::with_capacity(rates_kqps.len());
    for (i, &rate_kqps) in rates_kqps.iter().enumerate() {
        phases.push(run_phase(
            world,
            &engine,
            &population,
            cfg,
            i as u64,
            rate_kqps * 1_000.0,
            metrics,
        ));
    }
    if let Some(m) = metrics {
        engine.cache().export_eviction_metrics(m);
    }
    ServeReport {
        policy: cfg.policy,
        capacity_per_shard: cfg.capacity_per_shard,
        clients: cfg.workload.clients.max(1),
        workers: cfg.workers.max(1),
        phases,
    }
}

/// Compare eviction policies by hit rate across cache capacities: for
/// every `policy × capacity` cell, a **fresh** engine replays the same
/// fixed-rate trace (phase id 0, so the arrival offsets and query
/// stream are identical in every cell), and the cell reports its hit
/// rate, latency tail, and eviction counters.
pub fn capacity_curve(
    world: &World,
    base: &ServeConfig,
    capacities: &[usize],
    policies: &[EvictionPolicy],
    rate_kqps: f64,
) -> Vec<CurvePoint> {
    let population = StubPopulation::new(world.today_list_shared(), base.workload.clone());
    let mut points = Vec::with_capacity(capacities.len() * policies.len());
    for &policy in policies {
        for &capacity in capacities {
            let mut cfg = base.clone();
            cfg.capacity_per_shard = Some(capacity);
            cfg.policy = policy;
            let engine = engine_for(world, &cfg);
            let phase = run_phase(world, &engine, &population, &cfg, 0, rate_kqps * 1_000.0, None);
            let cache = engine.cache();
            points.push(CurvePoint {
                policy,
                capacity_per_shard: capacity,
                total_capacity: capacity * cfg.cache_shards.max(1),
                hit_rate: phase.hit_rate,
                p99_us: phase.p99_us,
                evictions: phase.evictions,
                swept: phase.swept,
                entries: cache.len(),
                approx_bytes: cache.approx_bytes(),
            });
        }
    }
    points
}
