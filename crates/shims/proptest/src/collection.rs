//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn lengths_respect_size_range() {
        let s = vec(Just(7u8), 2..5);
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }

    #[test]
    fn exact_size_from_usize() {
        let s = vec(Just(0u8), 3);
        assert_eq!(s.generate(&mut TestRng::from_seed(2)).len(), 3);
    }
}
