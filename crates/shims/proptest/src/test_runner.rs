//! Deterministic case generation for the `proptest!` macro.

/// Why a generated case did not complete (only rejection, in this shim;
/// assertion failures panic directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out.
    Reject,
}

/// Number of cases to run per property (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// A small deterministic generator (SplitMix64), seeded per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every property has a distinct, stable
    /// stream.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_stable_and_distinct() {
        let mut a1 = TestRng::from_name("alpha");
        let mut a2 = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("beta");
        let s1: Vec<u64> = (0..4).map(|_| a1.next_u64()).collect();
        let s2: Vec<u64> = (0..4).map(|_| a2.next_u64()).collect();
        let s3: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(3);
        for _ in 0..100 {
            assert!(r.below(7) < 7);
        }
    }
}
