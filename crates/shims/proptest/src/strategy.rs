//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy mapping another strategy's output (see [`Strategy::prop_map`]).
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased strategies (see `prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical uniform strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn just_and_map() {
        let s = Just(3u8).prop_map(|v| v + 1);
        assert_eq!(s.generate(&mut rng()), 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (5u16..9).generate(&mut r);
            assert!((5..9).contains(&v));
            let w = (b'a'..=b'c').generate(&mut r);
            assert!((b'a'..=b'c').contains(&w));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut r = rng();
        let seen: std::collections::HashSet<u8> = (0..100).map(|_| u.generate(&mut r)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn tuples_compose() {
        let s = (Just(1u8), 0u16..4, any::<bool>());
        let (a, b, _c) = s.generate(&mut rng());
        assert_eq!(a, 1);
        assert!(b < 4);
    }
}
