//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: [`Strategy`] with
//! `prop_map`, [`Just`], `any::<T>()`, integer/float ranges as
//! strategies, tuple strategies, [`collection::vec`], `prop_oneof!`,
//! and the `proptest!`/`prop_assert*!`/`prop_assume!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case prints
//! its generated inputs via the panic message of the failing assertion),
//! and case generation is seeded per-test from the test's name, so runs
//! are fully deterministic. Set `PROPTEST_CASES` to override the number
//! of cases per property (default 64).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// One-of strategy selection: `prop_oneof![s1, s2, ...]` picks an arm
/// uniformly per generated case. All arms must share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define deterministic property tests. Each `fn name(arg in strategy,
/// ...) { body }` item becomes a `#[test]` that runs the body over
/// generated cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let cases = $crate::test_runner::cases();
                for _case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject) => continue,
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Skip the current generated case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
