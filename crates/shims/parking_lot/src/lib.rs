//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's panic-free locking
//! API (`lock()`/`read()`/`write()` return guards directly, with no
//! poisoning), implemented over the std primitives. Only the surface
//! this workspace uses is provided; swap the workspace dependency back
//! to the real crate to drop this shim.

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. A panicked prior
    /// holder does not poison the lock (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(TryLockError::Poisoned(poisoned)) => {
                f.debug_tuple("RwLock").field(&&*poisoned.into_inner()).finish()
            }
            Err(TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
