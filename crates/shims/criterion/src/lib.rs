//! Offline stand-in for the `criterion` crate.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`/`iter_batched`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! Measurement is deliberately simple: a short warm-up, then
//! `sample_size` timed samples, reporting min/mean/max wall time per
//! iteration on stdout. There is no statistical analysis or HTML report;
//! the numbers are honest wall-clock means suitable for coarse
//! comparisons (the regeneration output the benches print is unaffected).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (ignored beyond API compatibility:
/// every batch runs one routine invocation per setup call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// Small batches (treated as `PerIteration` in this shim).
    SmallInput,
    /// Large batches (treated as `PerIteration` in this shim).
    LargeInput,
}

/// Per-iteration timing collector handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    fn new(sample_size: usize, budget: Duration) -> Bencher {
        Bencher { samples: Vec::with_capacity(sample_size), sample_size, budget }
    }

    /// Time `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (untimed).
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.sample_size && started.elapsed() < self.budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        while self.samples.len() < self.sample_size && started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 50, budget: Duration::from_secs(5) }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Set the wall-clock budget per benchmark (the sample loop stops
    /// early once exceeded).
    pub fn measurement_time(mut self, budget: Duration) -> Criterion {
        self.budget = budget;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.budget);
        f(&mut b);
        if b.samples.is_empty() {
            println!("{id:<40} no samples collected");
            return self;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = *b.samples.iter().min().expect("non-empty");
        let max = *b.samples.iter().max().expect("non-empty");
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            b.samples.len()
        );
        self
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // warm-up + 5 samples
        assert!(runs >= 6, "{runs}");
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut made = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    made += 1;
                    made
                },
                |v| v * 2,
                BatchSize::PerIteration,
            )
        });
        assert!(made >= 5, "{made}");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
