//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Provides [`Rng`], [`SeedableRng`], and [`rngs::StdRng`] backed by a
//! SplitMix64-seeded xoshiro256** generator. The streams differ from the
//! real `StdRng` (ChaCha12), but every consumer in this workspace only
//! requires seeded determinism and uniformity, never a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value uniformly.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let run = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.gen::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(0..10);
            assert!((0..10).contains(&i));
        }
    }

    #[test]
    fn unit_f64_in_range_and_gen_bool_biased() {
        let mut r = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.25) {
                trues += 1;
            }
        }
        assert!((1500..3500).contains(&trues), "{trues}");
    }

    #[test]
    fn fill_covers_all_bytes() {
        let mut r = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 16];
        r.fill(&mut buf);
        assert_ne!(buf, [0u8; 16]);
    }

    #[test]
    fn range_coverage_includes_endpoints() {
        let mut r = StdRng::seed_from_u64(13);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(r.gen_range(0u8..=3));
        }
        assert_eq!(seen.len(), 4);
    }
}
