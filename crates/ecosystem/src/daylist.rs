//! A shared, memoizing cache of daily Tranco lists.
//!
//! `World::step_to_day`, `TrancoModel::overlapping`, and the scanner all
//! need "the list for day *d*" — historically each call site recomputed
//! it from scratch (an O(population) scoring pass plus a selection).
//! [`DayListCache`] computes each day's list once and hands every
//! consumer the same `Arc<DailyList>`, so a multi-layer campaign pays
//! the scoring cost once per day instead of once per consumer.
//!
//! The cache is capacity-bounded with LRU eviction: day access patterns
//! are overwhelmingly monotonic (world stepping, overlap windows), so a
//! small capacity captures all the sharing while keeping a 100 k-entry
//! list universe from pinning hundreds of megabytes. Hit/miss counters
//! are plain atomics — observational only, never part of simulation
//! state.

use crate::tranco::DailyList;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of day lists kept alive (see [`DayListCache::new`]).
pub const DEFAULT_DAY_CACHE_CAPACITY: usize = 32;

struct Inner {
    map: HashMap<u64, Arc<DailyList>>,
    /// Access order, least-recently-used first.
    lru: VecDeque<u64>,
}

/// Memoizing day → [`DailyList`] cache. See the module docs.
pub struct DayListCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DayListCache {
    /// A cache holding at most `capacity` day lists (clamped to ≥ 1).
    pub fn new(capacity: usize) -> DayListCache {
        DayListCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { map: HashMap::new(), lru: VecDeque::new() }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cached list for `day`, computing it with `compute` on a miss.
    ///
    /// The compute closure runs outside the cache lock; if two threads
    /// race on the same missing day the first insert wins and both get
    /// the same `Arc` (day lists are deterministic, so the discarded
    /// duplicate is byte-identical).
    pub fn get_or_compute(&self, day: u64, compute: impl FnOnce() -> DailyList) -> Arc<DailyList> {
        {
            let mut inner = self.lock();
            if let Some(list) = inner.map.get(&day).cloned() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                touch(&mut inner.lru, day);
                return list;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(compute());
        let mut inner = self.lock();
        if let Some(existing) = inner.map.get(&day).cloned() {
            // Lost the compute race; keep the canonical entry.
            touch(&mut inner.lru, day);
            return existing;
        }
        while inner.map.len() >= self.capacity {
            if let Some(evict) = inner.lru.pop_front() {
                inner.map.remove(&evict);
            } else {
                break;
            }
        }
        inner.map.insert(day, fresh.clone());
        inner.lru.push_back(day);
        fresh
    }

    /// Number of cached day lists.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far (observational).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= lists actually computed) so far (observational).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drop every cached list (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.lru.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Move `day` to the most-recently-used end of the order queue.
fn touch(lru: &mut VecDeque<u64>, day: u64) {
    if let Some(pos) = lru.iter().position(|&d| d == day) {
        lru.remove(pos);
    }
    lru.push_back(day);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(ids: &[u32]) -> DailyList {
        DailyList::new(ids.to_vec())
    }

    #[test]
    fn memoizes_and_shares_one_arc() {
        let cache = DayListCache::new(4);
        let a = cache.get_or_compute(3, || list(&[1, 2, 3]));
        let b = cache.get_or_compute(3, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = DayListCache::new(2);
        cache.get_or_compute(0, || list(&[0]));
        cache.get_or_compute(1, || list(&[1]));
        // Touch day 0 so day 1 is the LRU victim.
        cache.get_or_compute(0, || panic!("cached"));
        cache.get_or_compute(2, || list(&[2]));
        assert_eq!(cache.len(), 2);
        cache.get_or_compute(0, || panic!("still cached"));
        let mut recomputed = false;
        cache.get_or_compute(1, || {
            recomputed = true;
            list(&[1])
        });
        assert!(recomputed, "day 1 should have been evicted");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let cache = DayListCache::new(0);
        cache.get_or_compute(0, || list(&[0]));
        assert_eq!(cache.len(), 1);
        cache.get_or_compute(1, || list(&[1]));
        assert_eq!(cache.len(), 1);
    }
}
