//! Ecosystem configuration: population size, study timeline landmarks,
//! and the behavioural rates calibrated to the paper's measurements.
//!
//! All rates are per-domain probabilities, so every analysis that
//! reports a *ratio* is scale-invariant; analyses that report *counts*
//! (e.g. Table 3's provider counts) use the `noncf_*` absolute knobs and
//! EXPERIMENTS.md documents the scaling.

/// Landmark days of the study, as day offsets from 2023-05-08 (day 0).
#[derive(Debug, Clone, Copy)]
pub struct Landmarks {
    /// 2023-05-31: Cloudflare stops advertising HTTP/3 draft 29.
    pub h3_29_sunset: u64,
    /// 2023-06-19: the IP-hint matching-rate jump.
    pub hint_fix: u64,
    /// 2023-08-01: Tranco source change.
    pub source_change: u64,
    /// 2023-10-05: Cloudflare disables ECH globally.
    pub ech_disable: u64,
    /// 2024-03-31: study end (inclusive).
    pub study_end: u64,
}

impl Default for Landmarks {
    fn default() -> Self {
        // Day numbers computed from the paper calendar (see netsim tests).
        Landmarks {
            h3_29_sunset: 23,
            hint_fix: 42,
            source_change: 85,
            ech_disable: 150,
            study_end: 328,
        }
    }
}

/// Full ecosystem configuration.
#[derive(Debug, Clone)]
pub struct EcosystemConfig {
    /// RNG seed; the whole world is a pure function of this.
    pub seed: u64,
    /// Total domain universe (must exceed `list_size`).
    pub population: usize,
    /// Daily Tranco list size.
    pub list_size: usize,
    /// Timeline landmarks.
    pub landmarks: Landmarks,

    // ---- Tranco dynamics ----
    /// Fraction of the universe with stable (low-churn) popularity.
    pub stable_fraction: f64,
    /// Log-normal noise sigma for stable domains.
    pub stable_sigma: f64,
    /// Log-normal noise sigma for churning domains.
    pub churn_sigma: f64,
    /// Fraction of domains whose popularity is re-sampled at the source
    /// change (drives the Fig 2 discontinuity).
    pub source_change_reshuffle: f64,

    // ---- provider mix ----
    /// Fraction of the universe on Cloudflare-like name servers.
    pub cloudflare_share: f64,
    /// Fraction on the Cloudflare China (cf-ns) variant.
    pub cf_china_share: f64,
    /// Of Cloudflare domains: fraction with the proxied toggle on at
    /// study start (proxied ⇒ default HTTPS record).
    pub proxied_rate_day0: f64,
    /// Of Cloudflare domains not proxied at day 0: daily probability of
    /// enabling proxied (drives the rising dynamic-adoption trend).
    pub proxied_daily_enable: f64,
    /// Of proxied Cloudflare domains: fraction with a *customized* HTTPS
    /// configuration (Table 4's ≈20–28%).
    pub customized_rate: f64,

    // ---- intermittency (§4.2.3), scaled counts ----
    /// Number of domains that toggle proxied on/off periodically.
    pub toggling_domains: usize,
    /// Toggle period in days (on for period, off for period…).
    pub toggle_period_days: u64,
    /// Number of domains that migrate from Cloudflare to a non-HTTPS
    /// provider mid-study.
    pub migrating_domains: usize,
    /// Number of domains with mixed (Cloudflare + other) NS sets.
    pub mixed_ns_domains: usize,
    /// Number of domains that lose their delegation entirely.
    pub undelegated_domains: usize,

    // ---- non-Cloudflare HTTPS adopters (absolute, small) ----
    /// Domains per non-CF provider that publish HTTPS records, in
    /// Table 3 order (eName, Google, GoDaddy, NSONE, Domeneshop, …).
    pub noncf_adopters: Vec<(usize, &'static str)>,

    // ---- IP hints (§4.3.5) ----
    /// Daily probability a domain renumbers its address (before fix day).
    pub renumber_rate_early: f64,
    /// Daily probability after the fix day.
    pub renumber_rate_late: f64,
    /// Mean days the hint lags the A record after a renumber (apex).
    pub hint_lag_mean_days: f64,
    /// Number of cf-ns domains with a *permanent* hint mismatch.
    pub permanent_mismatch_domains: usize,

    // ---- ECH (§4.4) ----
    /// Of default-config (free) Cloudflare zones: fraction with ECH
    /// enabled pre-kill. Calibrated so ~70% of HTTPS-publishing apexes
    /// carry the ech parameter, the paper's Fig 13 level.
    pub ech_rate_apex: f64,
    /// Calibration target (not a sampling knob): expected ECH share
    /// among www subdomains with HTTPS; emerges from `www_https_rate`
    /// applied to ECH-enabled apexes.
    pub ech_rate_www: f64,
    /// Mean ECH key-rotation period, seconds (paper: ≈1.26 h).
    pub ech_rotation_mean_secs: u64,
    /// TTL of Cloudflare HTTPS records (paper: 300 s).
    pub cf_https_ttl: u32,

    // ---- DNSSEC (§4.5 / Table 9) ----
    /// Signing rate among domains *without* HTTPS records.
    pub signed_rate_no_https: f64,
    /// Of those: DS-upload (secure) rate.
    pub ds_rate_no_https: f64,
    /// Signing rate among Cloudflare domains *with* HTTPS records.
    pub signed_rate_cf_https: f64,
    /// Of those: DS-upload rate (the paper's 50.5% secure).
    pub ds_rate_cf_https: f64,
    /// Signing rate among non-CF HTTPS adopters.
    pub signed_rate_noncf_https: f64,
    /// Of those: DS-upload rate (85.9% secure).
    pub ds_rate_noncf_https: f64,

    // ---- www subdomains ----
    /// Of apex domains with HTTPS: fraction whose www also publishes it.
    pub www_https_rate: f64,

    // ---- scale knobs (wall-clock only, never simulation state) ----
    /// Worker threads for chunked day-list scoring; 0 = one per
    /// available CPU. Lists are bit-identical for every value.
    pub score_threads: usize,
    /// Capacity of the shared day-list cache (entries; clamped to ≥ 1).
    pub day_cache_capacity: usize,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            seed: 0xD0_5EED,
            population: 6_000,
            list_size: 4_000,
            landmarks: Landmarks::default(),

            stable_fraction: 0.62,
            stable_sigma: 0.05,
            churn_sigma: 1.4,
            source_change_reshuffle: 0.18,

            cloudflare_share: 0.26,
            cf_china_share: 0.004,
            proxied_rate_day0: 0.78,
            proxied_daily_enable: 0.0012,
            customized_rate: 0.24,

            toggling_domains: 26,
            toggle_period_days: 9,
            migrating_domains: 8,
            mixed_ns_domains: 10,
            undelegated_domains: 2,

            noncf_adopters: vec![
                (12, "eName"),
                (10, "Google"),
                (7, "GoDaddy"),
                (5, "NSONE"),
                (2, "Domeneshop"),
                (2, "Hover"),
                (1, "Gentoo"),
                (1, "JPBerlin"),
            ],

            renumber_rate_early: 0.004,
            renumber_rate_late: 0.0008,
            hint_lag_mean_days: 3.0,
            permanent_mismatch_domains: 4,

            ech_rate_apex: 0.95,
            ech_rate_www: 0.63,
            ech_rotation_mean_secs: 4_536, // 1.26 h
            cf_https_ttl: 300,

            signed_rate_no_https: 0.048,
            ds_rate_no_https: 0.762,
            signed_rate_cf_https: 0.080,
            ds_rate_cf_https: 0.505,
            signed_rate_noncf_https: 0.50,
            ds_rate_noncf_https: 0.859,

            www_https_rate: 0.93,

            score_threads: 0,
            day_cache_capacity: crate::daylist::DEFAULT_DAY_CACHE_CAPACITY,
        }
    }
}

impl EcosystemConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny() -> EcosystemConfig {
        EcosystemConfig {
            population: 400,
            list_size: 300,
            noncf_adopters: vec![(2, "eName"), (2, "Google"), (1, "GoDaddy"), (1, "NSONE")],
            toggling_domains: 6,
            migrating_domains: 3,
            mixed_ns_domains: 3,
            undelegated_domains: 1,
            permanent_mismatch_domains: 2,
            ..Default::default()
        }
    }

    /// Number of study days (inclusive of day 0).
    pub fn study_days(&self) -> u64 {
        self.landmarks.study_end + 1
    }
}
