//! DNS provider models: who runs name servers, what HTTPS-record policy
//! they apply, and the infrastructure (name servers + zone sets) each
//! provider operates on the simulated network.

use authserver::{AuthoritativeServer, NsEndpoint, ZoneSet};
use dns_wire::DnsName;
use netsim::Network;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// Identifies a provider in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProviderId(pub u16);

/// The HTTPS-record policy a provider applies to hosted domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpsPolicy {
    /// Cloudflare: proxied domains get the default ServiceMode record
    /// `1 . alpn=h2,h3 ipv4hint=… ipv6hint=…` (+ ech while enabled).
    CloudflareDefault,
    /// GoDaddy: AliasMode records redirecting to an alternative endpoint.
    AliasToEndpoint,
    /// Google: ServiceMode with (almost always) empty SvcParams.
    ServiceModeEmpty,
    /// Generic providers that publish whatever the domain owner sets.
    OwnerManaged,
    /// Providers with no HTTPS RR support at all.
    Unsupported,
}

/// Static description of one provider.
#[derive(Debug, Clone)]
pub struct ProviderSpec {
    /// Catalog id.
    pub id: ProviderId,
    /// Organization name as WHOIS would report it.
    pub org: &'static str,
    /// NS host-name suffix, e.g. `ns.cloudflare.com`.
    pub ns_suffix: &'static str,
    /// HTTPS record policy.
    pub policy: HttpsPolicy,
    /// Number of name-server endpoints to operate.
    pub ns_count: usize,
}

/// A provider's live infrastructure on the network.
pub struct ProviderInfra {
    /// The spec this infrastructure implements.
    pub spec: ProviderSpec,
    /// NS endpoints (name + IP), bound on the network.
    pub endpoints: Vec<NsEndpoint>,
    /// The zone set all this provider's servers serve.
    pub zones: ZoneSet,
}

/// The provider catalog: all providers in the simulated ecosystem.
pub struct ProviderCatalog {
    providers: Vec<ProviderInfra>,
}

/// Well-known catalog indices.
pub mod well_known {
    use super::ProviderId;
    /// Cloudflare.
    pub const CLOUDFLARE: ProviderId = ProviderId(0);
    /// Cloudflare China Network (cf-ns.com / cf-ns.net).
    pub const CF_CHINA: ProviderId = ProviderId(1);
    /// GoDaddy (domaincontrol.com).
    pub const GODADDY: ProviderId = ProviderId(2);
    /// Google Cloud DNS.
    pub const GOOGLE: ProviderId = ProviderId(3);
    /// eName.
    pub const ENAME: ProviderId = ProviderId(4);
    /// NSONE.
    pub const NSONE: ProviderId = ProviderId(5);
    /// Domeneshop.
    pub const DOMENESHOP: ProviderId = ProviderId(6);
    /// Hover.
    pub const HOVER: ProviderId = ProviderId(7);
    /// Gentoo-style self hosting.
    pub const SELFHOST: ProviderId = ProviderId(8);
    /// JPBerlin (HTTP/1.1-only alpn oddity host).
    pub const JPBERLIN: ProviderId = ProviderId(9);
    /// A big legacy registrar with no HTTPS RR support.
    pub const LEGACY: ProviderId = ProviderId(10);
}

/// The static provider table.
pub fn provider_specs() -> Vec<ProviderSpec> {
    use well_known::*;
    use HttpsPolicy::*;
    vec![
        ProviderSpec {
            id: CLOUDFLARE,
            org: "Cloudflare, Inc.",
            ns_suffix: "ns.cloudflare.com",
            policy: CloudflareDefault,
            ns_count: 3,
        },
        ProviderSpec {
            id: CF_CHINA,
            org: "Cloudflare China Network",
            ns_suffix: "cf-ns.com",
            policy: CloudflareDefault,
            ns_count: 2,
        },
        ProviderSpec {
            id: GODADDY,
            org: "GoDaddy.com, LLC",
            ns_suffix: "domaincontrol.com",
            policy: AliasToEndpoint,
            ns_count: 2,
        },
        ProviderSpec {
            id: GOOGLE,
            org: "Google LLC",
            ns_suffix: "googledomains.com",
            policy: ServiceModeEmpty,
            ns_count: 2,
        },
        ProviderSpec {
            id: ENAME,
            org: "eName Technology",
            ns_suffix: "ename.net",
            policy: OwnerManaged,
            ns_count: 2,
        },
        ProviderSpec {
            id: NSONE,
            org: "NSONE, Inc.",
            ns_suffix: "nsone.net",
            policy: OwnerManaged,
            ns_count: 2,
        },
        ProviderSpec {
            id: DOMENESHOP,
            org: "Domeneshop AS",
            ns_suffix: "hyp.net",
            policy: OwnerManaged,
            ns_count: 2,
        },
        ProviderSpec {
            id: HOVER,
            org: "Hover",
            ns_suffix: "hover.com",
            policy: OwnerManaged,
            ns_count: 2,
        },
        ProviderSpec {
            id: SELFHOST,
            org: "Self-hosted",
            ns_suffix: "self.example.net",
            policy: OwnerManaged,
            ns_count: 1,
        },
        ProviderSpec {
            id: JPBERLIN,
            org: "JPBerlin",
            ns_suffix: "jpberlin.de",
            policy: OwnerManaged,
            ns_count: 2,
        },
        ProviderSpec {
            id: LEGACY,
            org: "Legacy Registrar DNS",
            ns_suffix: "legacydns.example",
            policy: Unsupported,
            ns_count: 2,
        },
    ]
}

impl ProviderCatalog {
    /// Build every provider's infrastructure: allocate NS IPs (one /24
    /// per provider in 172.16.0.0/12), create the shared zone set, and
    /// bind an authoritative server at every endpoint.
    pub fn build(network: &Network) -> ProviderCatalog {
        let mut providers = Vec::new();
        for spec in provider_specs() {
            let zones = ZoneSet::new();
            let server = Arc::new(AuthoritativeServer::new(zones.clone()));
            let mut endpoints = Vec::new();
            for k in 0..spec.ns_count {
                let ip = IpAddr::V4(Ipv4Addr::new(172, 16 + (spec.id.0 as u8), 0, 10 + k as u8));
                let ns_name = DnsName::parse(&format!("ns{}.{}", k + 1, spec.ns_suffix))
                    .expect("static suffixes are valid names");
                network.bind_datagram(ip, 53, server.clone());
                endpoints.push(NsEndpoint { name: ns_name, ip });
            }
            providers.push(ProviderInfra { spec, endpoints, zones });
        }
        ProviderCatalog { providers }
    }

    /// Look up a provider's infrastructure.
    pub fn get(&self, id: ProviderId) -> &ProviderInfra {
        &self.providers[id.0 as usize]
    }

    /// All providers.
    pub fn all(&self) -> &[ProviderInfra] {
        &self.providers
    }

    /// The NS IP block owner map for WHOIS: (first-octet pair, org).
    pub fn whois_blocks(&self) -> Vec<(Ipv4Addr, &'static str)> {
        self.providers
            .iter()
            .map(|p| (Ipv4Addr::new(172, 16 + (p.spec.id.0 as u8), 0, 0), p.spec.org))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimClock;

    #[test]
    fn catalog_builds_and_binds() {
        let net = Network::new(SimClock::new());
        let catalog = ProviderCatalog::build(&net);
        assert_eq!(catalog.all().len(), provider_specs().len());
        let cf = catalog.get(well_known::CLOUDFLARE);
        assert_eq!(cf.endpoints.len(), 3);
        assert_eq!(cf.spec.policy, HttpsPolicy::CloudflareDefault);
        // Endpoints are actually bound (refused ≠ unreachable).
        for ep in &cf.endpoints {
            assert!(net.send_datagram(ep.ip, 53, b"garbage").is_err());
            assert!(net.can_connect(ep.ip, 53).is_ok());
        }
    }

    #[test]
    fn provider_ips_are_disjoint() {
        let net = Network::new(SimClock::new());
        let catalog = ProviderCatalog::build(&net);
        let mut seen = std::collections::HashSet::new();
        for p in catalog.all() {
            for ep in &p.endpoints {
                assert!(seen.insert(ep.ip), "duplicate NS IP {}", ep.ip);
            }
        }
    }

    #[test]
    fn well_known_ids_match_specs() {
        let specs = provider_specs();
        assert_eq!(specs[well_known::CLOUDFLARE.0 as usize].org, "Cloudflare, Inc.");
        assert_eq!(specs[well_known::GODADDY.0 as usize].policy, HttpsPolicy::AliasToEndpoint);
        assert_eq!(specs[well_known::GOOGLE.0 as usize].policy, HttpsPolicy::ServiceModeEmpty);
        assert_eq!(specs[well_known::LEGACY.0 as usize].policy, HttpsPolicy::Unsupported);
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.id.0 as usize, i);
        }
    }
}
