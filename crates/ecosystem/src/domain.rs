//! Per-domain state and HTTPS-record synthesis under provider policies.

use crate::providers::ProviderId;
use dns_wire::{DnsName, SvcParam, SvcbRdata};
use std::net::{Ipv4Addr, Ipv6Addr};

/// The HTTPS-record shape a domain publishes (when active).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpsShape {
    /// Cloudflare's auto-generated default: `1 . alpn=h2,h3 ipv4hint=…
    /// ipv6hint=…` (+ `h3-29` before the sunset, + `ech` while enabled).
    CfDefault,
    /// Customized Cloudflare config advertising only h2, no hints.
    CustomH2,
    /// Customized Cloudflare config advertising h3 as well.
    CustomH2H3,
    /// Customized config with hints but *no* alpn parameter.
    CustomNoAlpn,
    /// GoDaddy-style AliasMode redirect to a parking endpoint.
    AliasToEndpoint,
    /// AliasMode aliasing to the domain's own www subdomain (err.ee).
    AliasToWww,
    /// Broken AliasMode with `.` as TargetName (newlinesmag.com, §E.1).
    AliasSelfDot,
    /// Google-style ServiceMode with empty SvcParams.
    EmptyService,
    /// Owner-managed `1 . alpn=h2`.
    OwnerH2,
    /// Owner-managed `1 . alpn=h2,h3` with both hint types.
    OwnerH3H2Hints,
    /// Owner-managed HTTP/1.1-only alpn (jpberlin.de customers, §E.2).
    OwnerHttp11,
    /// Owner-managed draft alpn `h3-27,h3-29` (gentoo.org, §E.2).
    OwnerDraftAlpn,
    /// Broken: an IPv4 literal as TargetName (unze.com.pk, §E.1).
    IpLiteralTarget,
    /// Multi-record priority list 1..=N, one port each
    /// (geo-routing.nexuspipe.com, §E.1).
    PriorityList,
}

/// How this domain participates in HTTPS-RR publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpsIntent {
    /// Never publishes.
    None,
    /// Publishes whenever the Cloudflare proxied toggle is on.
    CfProxied(HttpsShape),
    /// A (rare) non-Cloudflare adopter.
    NonCf(HttpsShape),
}

/// Mutable per-domain state in the simulated world.
#[derive(Debug, Clone)]
pub struct DomainState {
    /// Universe index.
    pub id: u32,
    /// Apex name (e.g. `site00042.com`).
    pub apex: DnsName,
    /// Current primary DNS provider.
    pub provider: ProviderId,
    /// Optional second provider (mixed NS sets, §4.2.3).
    pub secondary_provider: Option<ProviderId>,
    /// HTTPS participation.
    pub intent: HttpsIntent,
    /// Cloudflare proxied toggle (meaningful for `CfProxied`).
    pub proxied: bool,
    /// Day the domain first enables proxied (None = from day 0 or never).
    pub adoption_day: Option<u64>,
    /// Period (days) of proxied on/off toggling, if intermittent.
    pub toggle_period: Option<u64>,
    /// Scheduled NS migration: (day, new provider).
    pub migrate: Option<(u64, ProviderId)>,
    /// Day the delegation disappears entirely, if scheduled.
    pub undelegate_day: Option<u64>,
    /// Whether the www subdomain also publishes HTTPS when the apex does.
    pub www_https: bool,
    /// ECH participation (Cloudflare-operated, §4.4).
    pub ech_enabled: bool,
    /// DNSSEC: zone is signed.
    pub signed: bool,
    /// DNSSEC: DS uploaded to the parent (secure vs insecure).
    pub ds_uploaded: bool,
    /// The service's true current address.
    pub ip: Ipv4Addr,
    /// What the A record currently says (may lag `ip` after renumber).
    pub a_ip: Ipv4Addr,
    /// What the IP hints currently say (may lag `ip`).
    pub hint_ip: Ipv4Addr,
    /// Day the lagging A record catches up, if pending.
    pub pending_a_sync: Option<u64>,
    /// Day the lagging hint catches up, if pending.
    pub pending_hint_sync: Option<u64>,
    /// cf-ns style permanent hint mismatch (§4.3.5's 5 domains).
    pub permanent_mismatch: bool,
    /// Previous address still serving during a renumber transition.
    pub old_ip_live: Option<Ipv4Addr>,
}

impl DomainState {
    /// Whether the apex currently publishes HTTPS records (given its
    /// intent, proxied state, and today's provider policy support).
    pub fn publishes_https(&self, provider_supports: bool) -> bool {
        if !provider_supports {
            return false;
        }
        match self.intent {
            HttpsIntent::None => false,
            HttpsIntent::CfProxied(_) => self.proxied,
            HttpsIntent::NonCf(_) => true,
        }
    }

    /// The shape published (when active).
    pub fn shape(&self) -> Option<HttpsShape> {
        match self.intent {
            HttpsIntent::None => None,
            HttpsIntent::CfProxied(s) | HttpsIntent::NonCf(s) => Some(s),
        }
    }

    /// A deterministic IPv6 companion of an IPv4 address (for ipv6hint).
    pub fn v6_of(v4: Ipv4Addr) -> Ipv6Addr {
        let o = v4.octets();
        Ipv6Addr::new(
            0x2606,
            0x4700,
            0,
            0,
            0,
            0,
            u16::from_be_bytes([o[0], o[1]]),
            u16::from_be_bytes([o[2], o[3]]),
        )
    }

    /// Whether the hint currently disagrees with the A record.
    pub fn hint_mismatch(&self) -> bool {
        self.hint_ip != self.a_ip
    }
}

/// Inputs needed to synthesize today's HTTPS RRset for a domain.
#[derive(Debug, Clone)]
pub struct SynthesisContext {
    /// Day number.
    pub day: u64,
    /// Day Cloudflare stops advertising h3-29.
    pub h3_29_sunset: u64,
    /// Day Cloudflare disables ECH.
    pub ech_disable: u64,
    /// Current shared Cloudflare ECH config bytes.
    pub cf_ech_configs: Option<Vec<u8>>,
    /// Record TTL.
    pub ttl: u32,
}

/// Synthesize the HTTPS RDATA set for (domain, shape) at `ctx.day`.
pub fn synthesize_https(
    d: &DomainState,
    shape: HttpsShape,
    ctx: &SynthesisContext,
) -> Vec<SvcbRdata> {
    let hints = |rd: &mut Vec<SvcParam>| {
        rd.push(SvcParam::Ipv4Hint(vec![d.hint_ip]));
        rd.push(SvcParam::Ipv6Hint(vec![DomainState::v6_of(d.hint_ip)]));
    };
    let alpn = |ids: &[&str]| -> SvcParam {
        SvcParam::Alpn(ids.iter().map(|s| s.as_bytes().to_vec()).collect())
    };
    match shape {
        HttpsShape::CfDefault => {
            let mut params = Vec::new();
            if ctx.day < ctx.h3_29_sunset {
                params.push(alpn(&["h2", "h3", "h3-29"]));
            } else {
                params.push(alpn(&["h2", "h3"]));
            }
            hints(&mut params);
            if d.ech_enabled && ctx.day < ctx.ech_disable {
                if let Some(cfg) = &ctx.cf_ech_configs {
                    params.push(SvcParam::Ech(cfg.clone()));
                }
            }
            vec![SvcbRdata::service_self(params)]
        }
        // Customized Cloudflare configs usually keep the IP hints while
        // narrowing alpn (the paper's §4.3.5: 97% of apexes carry hints).
        HttpsShape::CustomH2 => {
            let mut params = vec![alpn(&["h2"])];
            hints(&mut params);
            vec![SvcbRdata::service_self(params)]
        }
        HttpsShape::CustomH2H3 => vec![SvcbRdata::service_self(vec![alpn(&["h2", "h3"])])],
        HttpsShape::CustomNoAlpn => {
            let mut params = Vec::new();
            hints(&mut params);
            vec![SvcbRdata::service_self(params)]
        }
        HttpsShape::AliasToEndpoint => {
            vec![SvcbRdata::alias(DnsName::parse("park.secureserver.example.net").expect("static"))]
        }
        HttpsShape::AliasToWww => {
            let www = d.apex.prepend("www").unwrap_or_else(|_| d.apex.clone());
            vec![SvcbRdata::alias(www)]
        }
        HttpsShape::AliasSelfDot => {
            vec![SvcbRdata { priority: 0, target: DnsName::root(), params: vec![] }]
        }
        HttpsShape::EmptyService => vec![SvcbRdata::service_self(vec![])],
        HttpsShape::OwnerH2 => vec![SvcbRdata::service_self(vec![alpn(&["h2"])])],
        HttpsShape::OwnerH3H2Hints => {
            let mut params = vec![alpn(&["h2", "h3"])];
            hints(&mut params);
            vec![SvcbRdata::service_self(params)]
        }
        HttpsShape::OwnerHttp11 => vec![SvcbRdata::service_self(vec![alpn(&["http/1.1"])])],
        HttpsShape::OwnerDraftAlpn => {
            vec![SvcbRdata::service_self(vec![alpn(&["h3-27", "h3-29"])])]
        }
        HttpsShape::IpLiteralTarget => vec![SvcbRdata {
            priority: 1,
            target: DnsName::parse("1.2.3.4").expect("static"),
            params: vec![SvcParam::Port(443)],
        }],
        HttpsShape::PriorityList => (1u16..=12)
            .map(|p| SvcbRdata {
                priority: p,
                target: DnsName::parse("geo-routing.nexuspipe.example").expect("static"),
                params: vec![SvcParam::Port(4000 + p)],
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::providers::well_known;

    fn state(shape: HttpsShape) -> DomainState {
        DomainState {
            id: 1,
            apex: DnsName::parse("site00001.com").unwrap(),
            provider: well_known::CLOUDFLARE,
            secondary_provider: None,
            intent: HttpsIntent::CfProxied(shape),
            proxied: true,
            adoption_day: None,
            toggle_period: None,
            migrate: None,
            undelegate_day: None,
            www_https: true,
            ech_enabled: true,
            signed: false,
            ds_uploaded: false,
            ip: Ipv4Addr::new(10, 0, 0, 1),
            a_ip: Ipv4Addr::new(10, 0, 0, 1),
            hint_ip: Ipv4Addr::new(10, 0, 0, 1),
            pending_a_sync: None,
            pending_hint_sync: None,
            permanent_mismatch: false,
            old_ip_live: None,
        }
    }

    fn ctx(day: u64) -> SynthesisContext {
        SynthesisContext {
            day,
            h3_29_sunset: 23,
            ech_disable: 150,
            cf_ech_configs: Some(vec![1, 2, 3]),
            ttl: 300,
        }
    }

    #[test]
    fn cf_default_has_h3_29_before_sunset() {
        let d = state(HttpsShape::CfDefault);
        let early = synthesize_https(&d, HttpsShape::CfDefault, &ctx(5));
        assert!(early[0].alpn().unwrap().iter().any(|p| p == "h3-29"));
        let late = synthesize_https(&d, HttpsShape::CfDefault, &ctx(30));
        assert!(!late[0].alpn().unwrap().iter().any(|p| p == "h3-29"));
        assert!(late[0].alpn().unwrap().iter().any(|p| p == "h3"));
    }

    #[test]
    fn cf_default_drops_ech_after_kill_switch() {
        let d = state(HttpsShape::CfDefault);
        let before = synthesize_https(&d, HttpsShape::CfDefault, &ctx(100));
        assert!(before[0].ech().is_some());
        let after = synthesize_https(&d, HttpsShape::CfDefault, &ctx(150));
        assert!(after[0].ech().is_none());
    }

    #[test]
    fn cf_default_hints_follow_hint_ip() {
        let mut d = state(HttpsShape::CfDefault);
        d.hint_ip = Ipv4Addr::new(10, 9, 9, 9);
        d.a_ip = Ipv4Addr::new(10, 1, 1, 1);
        assert!(d.hint_mismatch());
        let rds = synthesize_https(&d, HttpsShape::CfDefault, &ctx(50));
        assert_eq!(rds[0].ipv4hint().unwrap(), &[Ipv4Addr::new(10, 9, 9, 9)]);
        assert!(rds[0].ipv6hint().is_some());
    }

    #[test]
    fn priority_list_has_twelve_records() {
        let d = state(HttpsShape::PriorityList);
        let rds = synthesize_https(&d, HttpsShape::PriorityList, &ctx(10));
        assert_eq!(rds.len(), 12);
        assert_eq!(rds[0].priority, 1);
        assert_eq!(rds[11].priority, 12);
        assert_eq!(rds[3].port(), Some(4004));
    }

    #[test]
    fn broken_shapes_lint_dirty() {
        let d = state(HttpsShape::AliasSelfDot);
        let rds = synthesize_https(&d, HttpsShape::AliasSelfDot, &ctx(10));
        assert!(!rds[0].lint().is_empty());
        let rds = synthesize_https(&d, HttpsShape::IpLiteralTarget, &ctx(10));
        assert!(!rds[0].lint().is_empty());
        let rds = synthesize_https(&d, HttpsShape::EmptyService, &ctx(10));
        assert!(!rds[0].lint().is_empty());
    }

    #[test]
    fn publishes_https_respects_proxied_and_support() {
        let mut d = state(HttpsShape::CfDefault);
        assert!(d.publishes_https(true));
        d.proxied = false;
        assert!(!d.publishes_https(true));
        d.proxied = true;
        assert!(!d.publishes_https(false));
        d.intent = HttpsIntent::None;
        assert!(!d.publishes_https(true));
        d.intent = HttpsIntent::NonCf(HttpsShape::OwnerH2);
        assert!(d.publishes_https(true));
    }

    #[test]
    fn v6_companion_is_deterministic() {
        let a = DomainState::v6_of(Ipv4Addr::new(10, 1, 2, 3));
        let b = DomainState::v6_of(Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(a, b);
        assert_ne!(a, DomainState::v6_of(Ipv4Addr::new(10, 1, 2, 4)));
    }
}
