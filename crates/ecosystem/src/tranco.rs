//! The Tranco-like top-list model: a ranked daily list over a domain
//! universe with popularity-driven churn and the 2023-08-01 source
//! change.
//!
//! Each domain has a base popularity weight (Zipf-flavoured by index)
//! and a churn class. A day's score is `base_weight × lognormal(σ)` with
//! σ small for stable domains and large for churners; the top
//! `list_size` scores form the day's list. At the source change a
//! configured fraction of base weights is re-sampled, changing the list
//! composition exactly as the paper observed.

use crate::config::EcosystemConfig;
use crate::daylist::DayListCache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// Per-domain popularity state.
#[derive(Debug, Clone)]
pub struct Popularity {
    /// Base weight (higher = more popular).
    pub base_weight: f64,
    /// Daily noise sigma (churn class).
    pub sigma: f64,
}

/// The list model.
pub struct TrancoModel {
    seed: u64,
    list_size: usize,
    source_change_day: u64,
    pop: Vec<Popularity>,
    /// Base weights in effect from the source-change day onward: the
    /// reshuffled slice of the universe gets re-sampled values, everyone
    /// else keeps their original weight. Day-invariant, so computed once
    /// here instead of re-deriving the reshuffle RNG per domain per day.
    post_change_weight: Vec<f64>,
    /// Worker threads for chunked day-list scoring (resolved, ≥ 1). The
    /// per-domain score streams are index-seeded, so any chunking of the
    /// universe yields bit-identical lists; threads only change
    /// wall-clock time.
    score_threads: usize,
    /// Shared memoizing day → list cache behind [`TrancoModel::day_list`].
    cache: DayListCache,
}

/// One day's list: domain ids ordered by rank (index 0 = rank 1).
#[derive(Debug, Clone)]
pub struct DailyList {
    /// Domain ids in rank order. Private and frozen after construction:
    /// the first [`DailyList::rank_of`]/[`DailyList::contains`] call
    /// snapshots this vector into the cached index below, so in-place
    /// mutation would serve stale ranks — build a new list via
    /// [`DailyList::new`] instead.
    ranked: Vec<u32>,
    /// Lazily-built id → 1-based rank index backing [`DailyList::rank_of`]
    /// and [`DailyList::contains`]; built on first membership/rank query
    /// and reused for the rest of the list's life.
    index: OnceLock<HashMap<u32, u32>>,
    /// Per-rank popularity weights aligned with `ranked` (the model's
    /// precomputed Zipf `base_weight`, or its post-source-change
    /// re-sample). `None` for lists built without a model (tests,
    /// the reference baseline).
    weights: Option<Vec<f64>>,
    /// Lazily-built cumulative weight sums backing
    /// [`DailyList::sample_by_popularity`].
    cumulative: OnceLock<Vec<f64>>,
}

impl DailyList {
    /// Wrap a ranked id vector (index 0 = rank 1).
    pub fn new(ranked: Vec<u32>) -> DailyList {
        DailyList { ranked, index: OnceLock::new(), weights: None, cumulative: OnceLock::new() }
    }

    /// Wrap a ranked id vector with per-rank popularity weights (same
    /// order and length as `ranked`), enabling
    /// [`DailyList::sample_by_popularity`].
    pub fn with_weights(ranked: Vec<u32>, weights: Vec<f64>) -> DailyList {
        assert_eq!(ranked.len(), weights.len(), "one weight per ranked id");
        DailyList {
            ranked,
            index: OnceLock::new(),
            weights: Some(weights),
            cumulative: OnceLock::new(),
        }
    }

    /// Domain ids in rank order (index 0 = rank 1).
    pub fn ranked(&self) -> &[u32] {
        &self.ranked
    }

    /// The set of included domain ids.
    pub fn id_set(&self) -> HashSet<u32> {
        self.ranked.iter().copied().collect()
    }

    fn rank_index(&self) -> &HashMap<u32, u32> {
        self.index.get_or_init(|| {
            self.ranked.iter().enumerate().map(|(i, id)| (*id, (i + 1) as u32)).collect()
        })
    }

    /// Whether a domain id is on the list (O(1) after the first call).
    pub fn contains(&self, id: u32) -> bool {
        self.rank_index().contains_key(&id)
    }

    /// Rank (1-based) of a domain id, if listed (O(1) after the first
    /// call; previously a linear scan per lookup).
    pub fn rank_of(&self, id: u32) -> Option<usize> {
        self.rank_index().get(&id).map(|r| *r as usize)
    }

    /// Per-rank popularity weights, if this list carries them.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Draw one domain id with probability proportional to its
    /// popularity weight — the stub-client query distribution of the
    /// serving subsystem, reusing the model's precomputed Zipf
    /// `base_weight` rather than re-deriving a popularity model.
    ///
    /// O(log n) per draw via a lazily-built cumulative-sum table.
    /// Deterministic: the same seeded RNG always yields the same id
    /// stream.
    ///
    /// # Panics
    ///
    /// If the list was built without weights (see
    /// [`DailyList::with_weights`]), is empty, or the weights sum to
    /// zero.
    pub fn sample_by_popularity(&self, rng: &mut StdRng) -> u32 {
        assert!(!self.ranked.is_empty(), "cannot sample an empty list");
        let cumulative = self.cumulative.get_or_init(|| {
            let weights =
                self.weights.as_ref().expect("sample_by_popularity requires a weighted list");
            let mut acc = 0.0;
            weights
                .iter()
                .map(|w| {
                    acc += w.max(0.0);
                    acc
                })
                .collect()
        });
        let total = *cumulative.last().expect("non-empty cumulative table");
        assert!(total > 0.0, "list weights must have a positive sum");
        let u: f64 = rng.gen_range(0.0..1.0) * total;
        let idx = cumulative.partition_point(|&c| c <= u).min(self.ranked.len() - 1);
        self.ranked[idx]
    }
}

impl TrancoModel {
    /// Build the model for a universe of `population` domains.
    pub fn new(config: &EcosystemConfig) -> TrancoModel {
        let mut rng = StdRng::seed_from_u64(config.seed ^ TRANCO_STREAM);
        let mut pop = Vec::with_capacity(config.population);
        for i in 0..config.population {
            // Zipf-ish base weight by universe index, with jitter so the
            // stable/churn classes interleave in rank space.
            let zipf = 1.0 / ((i + 1) as f64).powf(0.9);
            let jitter: f64 = rng.gen_range(0.8..1.25);
            let stable = rng.gen_bool(config.stable_fraction);
            pop.push(Popularity {
                base_weight: zipf * jitter,
                sigma: if stable { config.stable_sigma } else { config.churn_sigma },
            });
        }
        // Source change: a slice of the universe gets re-sampled weights
        // from the change day onward. The re-sampled values are
        // day-invariant, so derive them once here (same per-domain RNG
        // stream the per-day path used to rebuild on every call).
        let post_change_weight = pop
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut reshuffle_rng = StdRng::seed_from_u64(config.seed ^ 0xC0FFEE ^ (i as u64));
                if reshuffle_rng.gen_bool(config.source_change_reshuffle) {
                    reshuffle_rng.gen_range(0.0..1.0) * reshuffle_rng.gen_range(0.0..0.02)
                } else {
                    p.base_weight
                }
            })
            .collect();
        TrancoModel {
            seed: config.seed,
            list_size: config.list_size.min(config.population),
            source_change_day: config.landmarks.source_change,
            pop,
            post_change_weight,
            score_threads: resolve_score_threads(config.score_threads),
            cache: DayListCache::new(config.day_cache_capacity),
        }
    }

    /// The cached list for `day`, shared as one `Arc` by every consumer
    /// (world stepping, the scanner, overlap windows). Computes via
    /// [`TrancoModel::list_for_day`] on a miss.
    pub fn day_list(&self, day: u64) -> Arc<DailyList> {
        self.cache.get_or_compute(day, || self.list_for_day(day))
    }

    /// The shared day-list cache (for hit/miss introspection).
    pub fn day_cache(&self) -> &DayListCache {
        &self.cache
    }

    /// Deterministically compute the list for `day` (uncached), using
    /// the model's configured scoring thread count.
    pub fn list_for_day(&self, day: u64) -> DailyList {
        self.list_for_day_with_threads(day, self.score_threads)
    }

    /// [`TrancoModel::list_for_day`] with an explicit thread count.
    ///
    /// Every domain's score is drawn from its own `(seed, day, index)`-
    /// seeded RNG, so scoring is embarrassingly parallel and the output
    /// is bit-identical for every `threads` value — pinned by the golden
    /// fingerprints below and the parallel-scoring property tests. Each
    /// chunk pre-selects its own top `list_size` candidates so the merge
    /// touches O(threads × list_size) entries, then a partial selection
    /// (`select_nth_unstable_by_key`) and a top-only sort replace the
    /// historical full-population sort.
    pub fn list_for_day_with_threads(&self, day: u64, threads: usize) -> DailyList {
        let n = self.pop.len();
        let k = self.list_size;
        let threads = threads.clamp(1, n.max(1));
        let mut candidates: Vec<(u64, u32)> = if threads <= 1 || n < 2 * PAR_CHUNK_MIN {
            self.score_range(day, 0, n)
        } else {
            let chunk = n.div_ceil(threads).max(PAR_CHUNK_MIN);
            let ranges: Vec<(usize, usize)> =
                (0..n).step_by(chunk).map(|lo| (lo, (lo + chunk).min(n))).collect();
            let mut chunks: Vec<Vec<(u64, u32)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|&(lo, hi)| {
                        scope.spawn(move || {
                            let mut scored = self.score_range(day, lo, hi);
                            // Per-chunk pre-selection: the global top k is
                            // a subset of the union of per-chunk top ks.
                            partial_select(&mut scored, k);
                            scored
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("scoring worker")).collect()
            });
            let mut merged = chunks.pop().unwrap_or_default();
            merged.reserve(chunks.iter().map(Vec::len).sum());
            for chunk in chunks {
                merged.extend(chunk);
            }
            merged
        };
        partial_select(&mut candidates, k);
        candidates.sort_unstable();
        let ranked: Vec<u32> = candidates.into_iter().map(|(_, id)| id).collect();
        let weights = ranked.iter().map(|&id| self.weight_on_day(day, id)).collect();
        DailyList::with_weights(ranked, weights)
    }

    /// The popularity weight in effect for domain `id` on `day`: the
    /// precomputed Zipf `base_weight`, or its re-sampled value from the
    /// source-change day onward. This is the weight the day's list
    /// scoring uses (before lognormal noise), and the one
    /// [`DailyList::sample_by_popularity`] draws against.
    pub fn weight_on_day(&self, day: u64, id: u32) -> f64 {
        let i = id as usize;
        if day >= self.source_change_day {
            self.post_change_weight[i]
        } else {
            self.pop[i].base_weight
        }
    }

    /// Score domains `[lo, hi)` for `day` into `(descending sort key,
    /// id)` pairs. The key is the score's IEEE-754 bit pattern inverted
    /// (all scores are non-negative finite, where bit order ≡ value
    /// order), so ascending integer order reproduces the historical
    /// stable descending `partial_cmp` sort exactly — ties in score fall
    /// back to ascending id via the tuple's second field, which is what
    /// a stable sort over index-ordered pushes produced.
    fn score_range(&self, day: u64, lo: usize, hi: usize) -> Vec<(u64, u32)> {
        let mut scores: Vec<(u64, u32)> = Vec::with_capacity(hi - lo);
        let post_change = day >= self.source_change_day;
        for (i, p) in self.pop[lo..hi].iter().enumerate() {
            let i = lo + i;
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ day.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64) << 20,
            );
            let base = if post_change { self.post_change_weight[i] } else { p.base_weight };
            // Mean-corrected lognormal noise (E[exp] = 1): without the
            // −σ²/2 drift term, high-σ churners' heavy upper tail
            // systematically out-scores stable domains on the days they
            // spike into the list, inverting the Fig 8 rank shape.
            let noise: f64 = normal_sample(&mut rng) * p.sigma - p.sigma * p.sigma / 2.0;
            scores.push((!(base * noise.exp()).to_bits(), i as u32));
        }
        scores
    }

    /// The pre-refactor `list_for_day`: sequential scoring into `(f64,
    /// id)` pairs and a full stable sort of the whole population. Kept
    /// verbatim as the same-binary A/B baseline for `bench --scale` and
    /// the equivalence tests; not used by any production path.
    #[doc(hidden)]
    pub fn list_for_day_reference(&self, day: u64) -> DailyList {
        let mut scores: Vec<(f64, u32)> = Vec::with_capacity(self.pop.len());
        for (i, p) in self.pop.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ day.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64) << 20,
            );
            let base = if day >= self.source_change_day {
                self.post_change_weight[i]
            } else {
                p.base_weight
            };
            let noise: f64 = normal_sample(&mut rng) * p.sigma - p.sigma * p.sigma / 2.0;
            scores.push((base * noise.exp(), i as u32));
        }
        scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        scores.truncate(self.list_size);
        DailyList::new(scores.into_iter().map(|(_, id)| id).collect())
    }

    /// Domains present every day of `[from, to]` (the paper's
    /// "overlapping" set for a phase). Day lists come from the shared
    /// [`DayListCache`], so a window that a campaign already stepped
    /// through costs only membership checks, and no per-day id set is
    /// materialized (the first day's ranked vector seeds the running
    /// set, later days answer through their lazy rank index).
    pub fn overlapping(&self, from: u64, to: u64) -> HashSet<u32> {
        let mut set: HashSet<u32> = self.day_list(from).ranked().iter().copied().collect();
        for day in (from + 1)..=to {
            let today = self.day_list(day);
            set.retain(|id| today.contains(*id));
            if set.is_empty() {
                break;
            }
        }
        set
    }
}

/// Minimum per-chunk population before chunked scoring spawns threads:
/// below this the spawn overhead dwarfs the scoring work.
const PAR_CHUNK_MIN: usize = 4_096;

/// Resolve a configured scoring thread count: 0 means "one per
/// available CPU".
fn resolve_score_threads(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Keep the `k` smallest entries of `scores` (by the descending-score
/// integer key, i.e. the top `k` scores), unsorted. No-op when `scores`
/// already fits.
fn partial_select(scores: &mut Vec<(u64, u32)>, k: usize) {
    if scores.len() > k {
        if k > 0 {
            scores.select_nth_unstable(k - 1);
        }
        scores.truncate(k);
    }
}

/// Box–Muller standard normal from a uniform RNG.
pub(crate) fn normal_sample(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Stream-separation constant so the tranco RNG stream never collides
/// with other per-seed streams derived from the same user seed.
const TRANCO_STREAM: u64 = 0x7_2a_c0;

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> EcosystemConfig {
        EcosystemConfig { population: 500, list_size: 300, ..EcosystemConfig::tiny() }
    }

    #[test]
    fn list_is_deterministic_and_sized() {
        let model = TrancoModel::new(&config());
        let a = model.list_for_day(10);
        let b = model.list_for_day(10);
        assert_eq!(a.ranked, b.ranked);
        assert_eq!(a.ranked.len(), 300);
        // All ids unique.
        assert_eq!(a.id_set().len(), 300);
    }

    #[test]
    fn lists_churn_day_to_day() {
        let model = TrancoModel::new(&config());
        let d0 = model.list_for_day(0).id_set();
        let d1 = model.list_for_day(1).id_set();
        let overlap = d0.intersection(&d1).count();
        assert!(overlap < 300, "lists should differ");
        assert!(overlap > 150, "lists should overlap substantially, got {overlap}");
    }

    #[test]
    fn overlapping_set_shrinks_with_window() {
        let model = TrancoModel::new(&config());
        let short = model.overlapping(0, 3);
        let long = model.overlapping(0, 10);
        assert!(long.len() <= short.len());
        assert!(!long.is_empty(), "some stable core must persist");
        for id in &long {
            assert!(short.contains(id));
        }
    }

    #[test]
    fn source_change_changes_composition() {
        let model = TrancoModel::new(&config());
        let day_before = model.list_for_day(84).id_set();
        let day_after = model.list_for_day(85).id_set();
        let cross = day_before.intersection(&day_after).count();
        let same_side = day_before.intersection(&model.list_for_day(83).id_set()).count();
        assert!(
            cross < same_side,
            "source change should disrupt composition more than daily churn ({cross} vs {same_side})"
        );
    }

    #[test]
    fn stable_domains_rank_higher_on_average() {
        let cfg = config();
        let model = TrancoModel::new(&cfg);
        let overlapping = model.overlapping(0, 8);
        let list = model.list_for_day(4);
        let (mut ov_sum, mut ov_n, mut non_sum, mut non_n) = (0usize, 0usize, 0usize, 0usize);
        for (idx, id) in list.ranked.iter().enumerate() {
            if overlapping.contains(id) {
                ov_sum += idx;
                ov_n += 1;
            } else {
                non_sum += idx;
                non_n += 1;
            }
        }
        if ov_n > 0 && non_n > 0 {
            assert!(
                (ov_sum / ov_n) < (non_sum / non_n),
                "overlapping domains should rank better (Fig 8 shape)"
            );
        }
    }

    #[test]
    fn rank_of_works() {
        let model = TrancoModel::new(&config());
        let list = model.list_for_day(0);
        let first = list.ranked[0];
        assert_eq!(list.rank_of(first), Some(1));
        // Some universe id not in the list.
        let missing = (0..500u32).find(|i| !list.id_set().contains(i)).unwrap();
        assert_eq!(list.rank_of(missing), None);
        assert!(!list.contains(missing));
    }

    #[test]
    fn rank_index_matches_linear_scan() {
        // The lazily-built index agrees position-for-position with the
        // ranked vector it replaces as the lookup path.
        let model = TrancoModel::new(&config());
        for day in [0u64, 85] {
            let list = model.list_for_day(day);
            for (i, id) in list.ranked.iter().enumerate() {
                assert_eq!(list.rank_of(*id), Some(i + 1), "day {day} id {id}");
                assert!(list.contains(*id));
            }
        }
    }

    /// FNV-1a over the ranked id vector, the fingerprint the golden pins
    /// below are expressed in.
    fn fingerprint(ids: &[u32]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for id in ids {
            for b in id.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let model = TrancoModel::new(&config());
        let list = model.list_for_day(3);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..500).map(|_| list.sample_by_popularity(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42), "same seed must give the same id stream");
        assert_ne!(draw(42), draw(43), "different seeds should diverge");
    }

    #[test]
    fn sampling_prefers_top_ranks() {
        let model = TrancoModel::new(&config());
        let list = model.list_for_day(0);
        let n = list.ranked.len();
        let mut rng = StdRng::seed_from_u64(7);
        let mut rank_hits = vec![0u32; n];
        let draws = 30_000;
        for _ in 0..draws {
            let id = list.sample_by_popularity(&mut rng);
            rank_hits[list.rank_of(id).unwrap() - 1] += 1;
        }
        let decile = n / 10;
        let top: u32 = rank_hits[..decile].iter().sum();
        let bottom: u32 = rank_hits[n - decile..].iter().sum();
        assert!(
            top > 3 * bottom.max(1),
            "Zipf shape: top decile ({top}) must dominate bottom decile ({bottom})"
        );
        let mean_rank: f64 =
            rank_hits.iter().enumerate().map(|(i, c)| (i + 1) as f64 * *c as f64).sum::<f64>()
                / draws as f64;
        assert!(
            mean_rank < n as f64 / 2.0 * 0.8,
            "mean sampled rank {mean_rank:.1} should sit well above uniform ({})",
            n / 2
        );
    }

    #[test]
    fn list_weights_reuse_model_base_weights() {
        let model = TrancoModel::new(&config());
        let before = model.list_for_day(10);
        let weights = before.weights().expect("model lists carry weights");
        assert_eq!(weights.len(), before.ranked.len());
        for (i, id) in before.ranked.iter().enumerate() {
            assert_eq!(weights[i], model.pop[*id as usize].base_weight, "rank {i} weight");
        }
        // From the source-change day onward the re-sampled weights apply.
        let after = model.list_for_day(85);
        let weights = after.weights().unwrap();
        for (i, id) in after.ranked.iter().enumerate() {
            assert_eq!(weights[i], model.post_change_weight[*id as usize]);
            assert_eq!(weights[i], model.weight_on_day(85, *id));
        }
        assert!(
            model.pop.iter().zip(&model.post_change_weight).any(|(p, w)| p.base_weight != *w),
            "the source change must re-sample some weights"
        );
    }

    #[test]
    #[should_panic(expected = "requires a weighted list")]
    fn sampling_unweighted_list_panics() {
        let list = DailyList::new(vec![1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(0);
        list.sample_by_popularity(&mut rng);
    }

    #[test]
    fn daily_lists_match_pre_refactor_golden_values() {
        // Captured from the per-day reshuffle-RNG implementation before
        // the precompute refactor: moving the source-change re-sampling
        // into `TrancoModel::new` must keep every daily list
        // byte-identical, on both sides of the change day.
        let model = TrancoModel::new(&config());
        let golden: [(u64, u64); 6] = [
            (0, 0x1ed108cb7d8fab6f),
            (42, 0xff40044098dbb273),
            (84, 0x8bd73a8aabd2105c),
            (85, 0x04dd210a08e87ef2),
            (86, 0xf7b1bf1c63efd87a),
            (120, 0x28ff4ff2240599b0),
        ];
        for (day, expected) in golden {
            assert_eq!(
                fingerprint(&model.list_for_day(day).ranked),
                expected,
                "day {day} list diverged from the pre-refactor golden fingerprint"
            );
        }
    }
}
