//! The simulated Internet: domains, providers, TLD/root DNSSEC
//! infrastructure, web servers, daily evolution events, and the
//! Cloudflare-style shared ECH rotation.
//!
//! `World::build` constructs the day-0 state as a pure function of the
//! config seed; `step_to_day` replays the study timeline (adoptions,
//! proxied toggles, NS migrations, renumbering with lagging records, the
//! h3-29 sunset, the ECH kill switch) while keeping every authoritative
//! zone, delegation, and web binding in sync.

use crate::config::EcosystemConfig;
use crate::domain::{synthesize_https, DomainState, HttpsIntent, HttpsShape, SynthesisContext};
use crate::providers::{well_known, HttpsPolicy, ProviderCatalog, ProviderId};
use crate::tranco::{normal_sample, DailyList, TrancoModel};
use crate::whois::WhoisDb;
use authserver::{DelegationRegistry, NsEndpoint, Zone, ZoneSet};
use dns_wire::{DnsName, RData, Record};
use dnssec::ZoneKeys;
use netsim::{Calendar, Network, SimClock, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;
use tlsech::{EchKeyManager, EchServerState, HttpServer, WebServer, WebServerConfig};

/// Cloudflare's shared ECH key state: one client-facing server
/// (`cloudflare-ech.com`) whose key rotates every 1.1–1.4 h.
pub struct CfEch {
    manager: EchKeyManager,
    /// Simulated-seconds boundary at which the next rotation happens.
    next_boundary: u64,
    index: u64,
    mean_period: u64,
}

impl CfEch {
    fn new(mean_period: u64) -> CfEch {
        let public_name = DnsName::parse("cloudflare-ech.com").expect("static");
        let mut ech = CfEch {
            manager: EchKeyManager::new(public_name, "cf-ech", 2),
            next_boundary: 0,
            index: 0,
            mean_period,
        };
        ech.next_boundary = ech.period_of(0);
        ech
    }

    /// Rotation period of interval `i`: 1.1–1.4 h around the mean.
    fn period_of(&self, i: u64) -> u64 {
        let step = self.mean_period / 14; // ~0.09 h granularity
        let pick = simcrypto::siphash::siphash24(&[7u8; 16], &i.to_le_bytes()) % 5;
        // mean - 2*step .. mean + 2*step
        self.mean_period - 2 * step + pick * step
    }

    /// Advance rotation state to `now`; returns true when a rotation
    /// happened (records must be re-synced).
    pub fn refresh(&mut self, now: Timestamp) -> bool {
        let mut rotated = false;
        while now.0 >= self.next_boundary {
            self.manager.rotate("cf-ech");
            self.index += 1;
            self.next_boundary += self.period_of(self.index);
            rotated = true;
        }
        rotated
    }

    /// Current ECHConfigList bytes to publish.
    pub fn configs(&self) -> Vec<u8> {
        self.manager.current_config_list().encode()
    }

    /// The key manager (for wiring a client-facing server).
    pub fn manager_state(&self) -> EchServerState {
        EchServerState {
            manager: {
                // Hand the web server an equivalent manager (same label
                // stream) so it accepts what DNS advertises.
                let mut m = EchKeyManager::new(
                    DnsName::parse("cloudflare-ech.com").expect("static"),
                    "cf-ech",
                    2,
                );
                for _ in 0..self.index {
                    m.rotate("cf-ech");
                }
                m
            },
            retry_enabled: true,
        }
    }
}

/// The complete simulated world.
pub struct World {
    /// Configuration used to build this world.
    pub config: EcosystemConfig,
    /// Shared simulation clock.
    pub clock: SimClock,
    /// Calendar anchored at 2023-05-08.
    pub calendar: Calendar,
    /// The simulated network.
    pub network: Network,
    /// Delegation registry.
    pub registry: DelegationRegistry,
    /// Provider infrastructure.
    pub catalog: ProviderCatalog,
    /// WHOIS database for NS attribution.
    pub whois: WhoisDb,
    /// All domain states, indexed by universe id.
    pub domains: Vec<DomainState>,
    /// The Tranco-like list model.
    pub tranco: TrancoModel,
    /// Cloudflare shared ECH state.
    pub cf_ech: CfEch,
    /// Current simulated day.
    pub current_day: u64,
    today: Arc<DailyList>,
    tld_zones: ZoneSet,
    web_servers: HashMap<u32, Arc<WebServer>>,
    next_ip: u32,
    schedule: DaySchedule,
}

/// The per-day wake-up schedule behind dirty-set world stepping: instead
/// of sweeping every domain every day, [`World::apply_day`] visits only
/// the domains something can actually happen to. Scheduled lifecycle
/// events (adoptions, migrations, undelegations) are bucketed by day
/// once at build; toggling domains wake at their period boundaries; the
/// ECH and Cloudflare cohorts wake on rotation/landmark days; renumber
/// completions are queued at runtime when the renumber starts.
#[derive(Default)]
struct DaySchedule {
    /// Build-time event buckets: day → domain indices with a scheduled
    /// adoption, NS migration, or undelegation on that day.
    events: HashMap<u64, Vec<u32>>,
    /// `(index, period)` of every periodically-toggling domain; dirty on
    /// each period boundary (`day % period == 0`), when its proxied
    /// parity flips.
    toggles: Vec<(u32, u64)>,
    /// Indices with Cloudflare-proxied intent: dirty on the h3-29 sunset
    /// and ECH kill-switch landmark days, which force re-synthesis.
    cf_ids: Vec<u32>,
    /// ECH-enabled indices: dirty whenever the shared key rotated (until
    /// the kill switch), since their record bytes change.
    ech_ids: Vec<u32>,
    /// Runtime wheel: day → indices whose lagging A/hint record syncs
    /// that day. Filled when a renumber event schedules its catch-up.
    pending: HashMap<u64, Vec<u32>>,
    /// Domains eligible to renumber (population minus the build-time
    /// permanent-mismatch cohort, which never renumbers). Counted once
    /// here so the per-day sampler stays O(churn).
    renumber_eligible: usize,
}

impl DaySchedule {
    /// Bucket every statically-known wake-up from the populated domains.
    fn build(domains: &[DomainState]) -> DaySchedule {
        let mut s = DaySchedule::default();
        for (i, d) in domains.iter().enumerate() {
            let idx = i as u32;
            let events = [d.adoption_day, d.migrate.map(|(day, _)| day), d.undelegate_day];
            for day in events.into_iter().flatten() {
                s.events.entry(day).or_default().push(idx);
            }
            if let Some(period) = d.toggle_period {
                s.toggles.push((idx, period));
            }
            if matches!(d.intent, HttpsIntent::CfProxied(_)) {
                s.cf_ids.push(idx);
            }
            if d.ech_enabled {
                s.ech_ids.push(idx);
            }
            if !d.permanent_mismatch {
                s.renumber_eligible += 1;
            }
        }
        s
    }
}

const TLD_SERVER_IP: &str = "192.5.6.30";
const ROOT_SERVER_IP: &str = "198.41.0.4";

impl World {
    /// Build the day-0 world.
    pub fn build(config: EcosystemConfig) -> World {
        let clock = SimClock::new();
        let calendar = Calendar::paper();
        let network = Network::new(clock.clone());
        let registry = DelegationRegistry::new();
        let catalog = ProviderCatalog::build(&network);
        let tranco = TrancoModel::new(&config);
        let cf_ech = CfEch::new(config.ech_rotation_mean_secs);

        // WHOIS: provider NS blocks + a BYOIP carve-out in the NSONE
        // block (tail-attribution noise the paper warns about).
        let mut whois = WhoisDb::new();
        for (net_addr, org) in catalog.whois_blocks() {
            whois.allocate(net_addr, 24, org);
        }
        whois.allocate(
            Ipv4Addr::new(172, 16 + well_known::NSONE.0 as u8, 0, 128),
            26,
            "BYOIP Customer Org",
        );

        let mut world = World {
            config,
            clock,
            calendar,
            network,
            registry,
            catalog,
            whois,
            domains: Vec::new(),
            tranco,
            cf_ech,
            current_day: 0,
            today: Arc::new(DailyList::new(Vec::new())),
            tld_zones: ZoneSet::new(),
            web_servers: HashMap::new(),
            next_ip: 0,
            schedule: DaySchedule::default(),
        };
        world.build_tld_infra();
        world.build_ns_suffix_zones();
        world.populate_domains();
        world.schedule = DaySchedule::build(&world.domains);
        for idx in 0..world.domains.len() {
            world.sync_domain(idx);
            world.bind_web(idx);
        }
        world.today = world.tranco.day_list(0);
        world
    }

    /// Root + TLD zones with a full DNSSEC chain (root is the trust
    /// anchor; TLDs carry DS records for signed, DS-uploaded domains).
    fn build_tld_infra(&mut self) {
        let root_keys = ZoneKeys::derive(&DnsName::root(), 0);
        let mut root_zone = Zone::new(DnsName::root());
        root_zone.enable_signing(root_keys, 0, u32::MAX - 1);

        for tld in ["com", "net", "org"] {
            let apex = DnsName::parse(tld).expect("static");
            let keys = ZoneKeys::derive(&apex, 0);
            root_zone.add(keys.ds_record(86_400));
            let mut zone = Zone::new(apex.clone());
            zone.enable_signing(keys, 0, u32::MAX - 1);
            self.tld_zones.insert(zone);
            self.registry.delegate(
                &apex,
                vec![NsEndpoint {
                    name: DnsName::parse(&format!("a.gtld.{tld}")).expect("static"),
                    ip: TLD_SERVER_IP.parse().expect("static"),
                }],
            );
        }
        let root_set = ZoneSet::new();
        root_set.insert(root_zone);
        self.network.bind_datagram(
            ROOT_SERVER_IP.parse().expect("static"),
            53,
            Arc::new(authserver::AuthoritativeServer::new(root_set)),
        );
        self.registry.delegate(
            &DnsName::root(),
            vec![NsEndpoint {
                name: DnsName::parse("a.root-servers.net").expect("static"),
                ip: ROOT_SERVER_IP.parse().expect("static"),
            }],
        );
        self.network.bind_datagram(
            TLD_SERVER_IP.parse().expect("static"),
            53,
            Arc::new(authserver::AuthoritativeServer::new(self.tld_zones.clone())),
        );
    }

    /// Each provider serves a zone for its own NS names (glue), so the
    /// scanner can resolve name-server addresses through the DNS itself.
    fn build_ns_suffix_zones(&mut self) {
        for infra in self.catalog.all() {
            let Ok(apex) = DnsName::parse(infra.spec.ns_suffix) else { continue };
            let mut zone = Zone::new(apex.clone());
            for ep in &infra.endpoints {
                if let IpAddr::V4(v4) = ep.ip {
                    zone.add(Record::new(ep.name.clone(), 3600, RData::A(v4)));
                }
            }
            infra.zones.insert(zone);
            self.registry.delegate(&apex, infra.endpoints.clone());
        }
    }

    /// Maximum unique addresses the 10.0.0.0/8 allocation plan yields
    /// (256 × 250 × 250): past this the first octet computation would
    /// wrap and start re-issuing addresses.
    const IP_PLAN_CAPACITY: u32 = 16_000_000;

    fn alloc_ip(&mut self) -> Ipv4Addr {
        let n = self.next_ip;
        assert!(
            n < Self::IP_PLAN_CAPACITY,
            "IPv4 allocation plan exhausted after {n} addresses; \
             duplicate addresses would follow"
        );
        self.next_ip += 1;
        Ipv4Addr::new(10, (n / 62_500) as u8, ((n / 250) % 250) as u8, (n % 250 + 1) as u8)
    }

    /// Create all domain states per the configured mix.
    fn populate_domains(&mut self) {
        let cfg = self.config.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD0_0D);
        let days = cfg.study_days();

        // Provider assignment plan for non-CF HTTPS adopters.
        let mut noncf_plan: Vec<(ProviderId, HttpsShape, &'static str)> = Vec::new();
        for (count, org) in &cfg.noncf_adopters {
            let provider = match *org {
                "eName" => well_known::ENAME,
                "Google" => well_known::GOOGLE,
                "GoDaddy" => well_known::GODADDY,
                "NSONE" => well_known::NSONE,
                "Domeneshop" => well_known::DOMENESHOP,
                "Hover" => well_known::HOVER,
                "Gentoo" => well_known::SELFHOST,
                "JPBerlin" => well_known::JPBERLIN,
                _ => well_known::LEGACY,
            };
            for k in 0..*count {
                let shape = match provider {
                    well_known::GODADDY => {
                        if k == 0 {
                            HttpsShape::OwnerH3H2Hints
                        } else {
                            HttpsShape::AliasToEndpoint
                        }
                    }
                    well_known::GOOGLE => {
                        if k == 0 {
                            HttpsShape::AliasToWww // the err.ee analogue
                        } else if k == 1 {
                            HttpsShape::OwnerH2
                        } else {
                            HttpsShape::EmptyService
                        }
                    }
                    well_known::SELFHOST => HttpsShape::OwnerDraftAlpn,
                    well_known::JPBERLIN => HttpsShape::OwnerHttp11,
                    _ => {
                        if k % 5 == 4 {
                            HttpsShape::EmptyService
                        } else {
                            HttpsShape::OwnerH2
                        }
                    }
                };
                noncf_plan.push((provider, shape, org));
            }
        }

        let mut specials_left = [1usize, 1, 2]; // AliasSelfDot, IpLiteralTarget, PriorityList
        let mut toggles_left = cfg.toggling_domains;
        let mut migrations_left = cfg.migrating_domains;
        let mut mixed_left = cfg.mixed_ns_domains;
        let mut undelegated_left = cfg.undelegated_domains;
        let mut perm_mismatch_left = cfg.permanent_mismatch_domains;

        for id in 0..cfg.population as u32 {
            let tld = ["com", "net", "org"][(id % 3) as usize];
            let apex = DnsName::parse(&format!("site{id:05}.{tld}")).expect("generated");
            let ip = self.alloc_ip();

            let roll: f64 = rng.gen();
            let (provider, intent): (ProviderId, HttpsIntent) = if roll < cfg.cloudflare_share {
                // Cloudflare customer.
                let shape = if rng.gen_bool(cfg.customized_rate) {
                    if specials_left[0] > 0 && rng.gen_bool(0.02) {
                        specials_left[0] -= 1;
                        HttpsShape::AliasSelfDot
                    } else if specials_left[1] > 0 && rng.gen_bool(0.02) {
                        specials_left[1] -= 1;
                        HttpsShape::IpLiteralTarget
                    } else if specials_left[2] > 0 && rng.gen_bool(0.02) {
                        specials_left[2] -= 1;
                        HttpsShape::PriorityList
                    } else {
                        let c: f64 = rng.gen();
                        if c < 0.93 {
                            HttpsShape::CustomH2
                        } else if c < 0.96 {
                            HttpsShape::CustomH2H3
                        } else {
                            HttpsShape::CustomNoAlpn
                        }
                    }
                } else {
                    HttpsShape::CfDefault
                };
                (well_known::CLOUDFLARE, HttpsIntent::CfProxied(shape))
            } else if roll < cfg.cloudflare_share + cfg.cf_china_share {
                (well_known::CF_CHINA, HttpsIntent::CfProxied(HttpsShape::CfDefault))
            } else if let Some((provider, shape, _)) = noncf_plan.pop() {
                (provider, HttpsIntent::NonCf(shape))
            } else {
                // Bulk non-adopters, spread over the non-CF providers with
                // the legacy registrar dominating.
                let p = match rng.gen_range(0..10) {
                    0 => well_known::GODADDY,
                    1 => well_known::GOOGLE,
                    2 => well_known::ENAME,
                    3 => well_known::NSONE,
                    _ => well_known::LEGACY,
                };
                (p, HttpsIntent::None)
            };

            let is_cf = matches!(intent, HttpsIntent::CfProxied(_));
            let proxied0 = is_cf && rng.gen_bool(cfg.proxied_rate_day0);
            let adoption_day = match &intent {
                HttpsIntent::CfProxied(_) if !proxied0 => {
                    let p_total = (cfg.proxied_daily_enable * days as f64).min(0.9);
                    if rng.gen_bool(p_total) {
                        Some(rng.gen_range(1..days))
                    } else {
                        None
                    }
                }
                // Non-CF adopters activate over the study (Fig 3's rise).
                HttpsIntent::NonCf(_) if rng.gen_bool(0.6) => Some(rng.gen_range(0..days * 2 / 3)),
                _ => None,
            };

            let publishes_eventually = !matches!(intent, HttpsIntent::None);
            let signed_rate = if !publishes_eventually {
                cfg.signed_rate_no_https
            } else if is_cf {
                cfg.signed_rate_cf_https
            } else {
                cfg.signed_rate_noncf_https
            };
            let signed = rng.gen_bool(signed_rate);
            let ds_rate = if !publishes_eventually {
                cfg.ds_rate_no_https
            } else if is_cf {
                cfg.ds_rate_cf_https
            } else {
                cfg.ds_rate_noncf_https
            };
            let ds_uploaded = signed && rng.gen_bool(ds_rate);

            let toggle_period = if is_cf && proxied0 && toggles_left > 0 && rng.gen_bool(0.25) {
                toggles_left -= 1;
                Some(cfg.toggle_period_days + (id as u64 % 5))
            } else {
                None
            };
            let migrate = if is_cf
                && proxied0
                && toggle_period.is_none()
                && migrations_left > 0
                && rng.gen_bool(0.2)
            {
                migrations_left -= 1;
                Some((rng.gen_range(days / 4..days * 3 / 4), well_known::LEGACY))
            } else {
                None
            };
            let secondary_provider = if is_cf && proxied0 && mixed_left > 0 && rng.gen_bool(0.2) {
                mixed_left -= 1;
                Some(well_known::LEGACY)
            } else {
                None
            };
            let undelegate_day = if is_cf && proxied0 && undelegated_left > 0 && rng.gen_bool(0.1) {
                undelegated_left -= 1;
                Some(rng.gen_range(days / 2..days))
            } else {
                None
            };
            let permanent_mismatch = (provider == well_known::CF_CHINA
                || (is_cf && proxied0 && rng.gen_bool(0.03)))
                && perm_mismatch_left > 0
                && {
                    perm_mismatch_left -= 1;
                    true
                };

            // ECH rides Cloudflare's auto-activation for free (default
            // config) zones; customized/paid zones rarely carry it.
            let is_default_shape = matches!(intent, HttpsIntent::CfProxied(HttpsShape::CfDefault));
            let ech_enabled = is_default_shape && rng.gen_bool(cfg.ech_rate_apex);
            let hint_ip = if permanent_mismatch { self.alloc_ip() } else { ip };

            self.domains.push(DomainState {
                id,
                apex,
                provider,
                secondary_provider,
                intent,
                proxied: proxied0,
                adoption_day,
                toggle_period,
                migrate,
                undelegate_day,
                www_https: rng.gen_bool(cfg.www_https_rate),
                ech_enabled,
                signed,
                ds_uploaded,
                ip,
                a_ip: ip,
                hint_ip,
                pending_a_sync: None,
                pending_hint_sync: None,
                permanent_mismatch,
                old_ip_live: None,
            });
        }

        // DS records for signed + uploaded domains go into their TLD zone.
        for d in &self.domains {
            if d.signed && d.ds_uploaded {
                let keys = ZoneKeys::derive(&d.apex, 0);
                let tld = d.apex.parent().expect("apex has a TLD");
                self.tld_zones.with_zone(&tld, |z| z.add(keys.ds_record(86_400)));
            }
        }
    }

    /// Whether a provider's servers publish HTTPS records for customers.
    pub fn provider_supports_https(&self, id: ProviderId) -> bool {
        self.catalog.get(id).spec.policy != HttpsPolicy::Unsupported
    }

    /// Whether a domain publishes HTTPS records today (apex). A domain
    /// whose delegation has been removed publishes nothing observable.
    pub fn publishes_today(&self, d: &DomainState) -> bool {
        if d.undelegate_day.is_some_and(|ud| self.current_day >= ud) {
            return false;
        }
        let supports = self.provider_supports_https(d.provider);
        let active = match d.intent {
            HttpsIntent::NonCf(_) => d.adoption_day.is_none_or(|ad| self.current_day >= ad),
            _ => true,
        };
        active && d.publishes_https(supports)
    }

    /// (Re)materialize a domain's zone(s) and delegation.
    pub fn sync_domain(&mut self, idx: usize) {
        let day = self.current_day;
        let cfg = &self.config;
        let ctx = SynthesisContext {
            day,
            h3_29_sunset: cfg.landmarks.h3_29_sunset,
            ech_disable: cfg.landmarks.ech_disable,
            cf_ech_configs: Some(self.cf_ech.configs()),
            ttl: cfg.cf_https_ttl,
        };
        let d = self.domains[idx].clone();
        let publishes = self.publishes_today(&d);
        let primary = self.catalog.get(d.provider);
        let www = d.apex.prepend("www").expect("www label fits");

        let build_zone = |with_https: bool| -> Zone {
            let mut zone = Zone::new(d.apex.clone());
            // NS records reflect the full (possibly mixed) NS set.
            let mut ns_names: Vec<DnsName> =
                primary.endpoints.iter().map(|e| e.name.clone()).collect();
            if let Some(sec) = d.secondary_provider {
                ns_names.extend(self.catalog.get(sec).endpoints.iter().map(|e| e.name.clone()));
            }
            for ns in &ns_names {
                zone.add(Record::new(d.apex.clone(), 3600, RData::Ns(ns.clone())));
            }
            zone.add(Record::new(d.apex.clone(), cfg.cf_https_ttl, RData::A(d.a_ip)));
            zone.add(Record::new(
                d.apex.clone(),
                cfg.cf_https_ttl,
                RData::Aaaa(DomainState::v6_of(d.a_ip)),
            ));
            zone.add(Record::new(www.clone(), cfg.cf_https_ttl, RData::A(d.a_ip)));
            if with_https && publishes {
                if let Some(shape) = d.shape() {
                    for rd in synthesize_https(&d, shape, &ctx) {
                        zone.add(Record::new(
                            d.apex.clone(),
                            cfg.cf_https_ttl,
                            RData::Https(rd.clone()),
                        ));
                        if d.www_https {
                            zone.add(Record::new(www.clone(), cfg.cf_https_ttl, RData::Https(rd)));
                        }
                    }
                }
            }
            if d.signed {
                zone.enable_signing(ZoneKeys::derive(&d.apex, 0), 0, u32::MAX - 1);
            }
            zone
        };

        primary.zones.insert(build_zone(true));
        // A mixed secondary provider serves the same zone *without*
        // HTTPS records when it does not support them.
        if let Some(sec) = d.secondary_provider {
            let sec_supports = self.provider_supports_https(sec);
            self.catalog.get(sec).zones.insert(build_zone(sec_supports));
        }

        // Delegation: primary endpoints (+ secondary's for mixed sets),
        // unless the domain has lost its delegation.
        if d.undelegate_day.is_none_or(|ud| day < ud) {
            let mut endpoints = primary.endpoints.clone();
            if let Some(sec) = d.secondary_provider {
                endpoints.extend(self.catalog.get(sec).endpoints.clone());
            }
            self.registry.delegate(&d.apex, endpoints);
        } else {
            self.registry.undelegate(&d.apex);
        }
    }

    /// Bind (or re-bind) a domain's web servers at its current address.
    fn bind_web(&mut self, idx: usize) {
        let d = &self.domains[idx];
        let www = d.apex.prepend("www").expect("www label fits");
        let server = Arc::new(WebServer::new(
            self.network.clone(),
            WebServerConfig {
                cert_names: vec![d.apex.clone(), www],
                alpn: vec!["h2".into(), "h3".into(), "http/1.1".into()],
            },
        ));
        if d.ech_enabled {
            server.enable_ech(self.cf_ech.manager_state());
        }
        self.network.bind_stream(IpAddr::V4(d.ip), 443, server.clone());
        // Permanent-mismatch domains (cf-ns style) advertise a second,
        // also-live anycast address in their hints.
        if d.permanent_mismatch {
            self.network.bind_stream(IpAddr::V4(d.hint_ip), 443, server.clone());
        }
        self.network.bind_stream(IpAddr::V4(d.ip), 80, Arc::new(HttpServer { host: d.apex.key() }));
        self.web_servers.insert(d.id, server);
    }

    /// Advance the world to `day`, applying all intermediate days.
    pub fn step_to_day(&mut self, day: u64) {
        assert!(day >= self.current_day, "world time is monotonic");
        while self.current_day < day {
            let next = self.current_day + 1;
            self.apply_day(next);
        }
    }

    /// Apply one day of evolution via the dirty set: the union of the
    /// day's scheduled events, toggle boundaries, sampled renumber
    /// starts, queued record syncs, and the rotation/landmark cohorts.
    /// Only those domains are visited; cost is proportional to churn,
    /// not population.
    fn apply_day(&mut self, day: u64) {
        self.current_day = day;
        self.clock.set(Timestamp(day * 86_400));
        let rotated = self.cf_ech.refresh(self.clock.now());
        let lm = self.config.landmarks;

        let mut dirty: Vec<u32> = self.schedule.events.get(&day).cloned().unwrap_or_default();
        if let Some(mut due) = self.schedule.pending.remove(&day) {
            dirty.append(&mut due);
        }
        for &(idx, period) in &self.schedule.toggles {
            if day.is_multiple_of(period) {
                dirty.push(idx);
            }
        }
        if day == lm.h3_29_sunset || day == lm.ech_disable {
            dirty.extend_from_slice(&self.schedule.cf_ids);
        } else if rotated && day < lm.ech_disable {
            // ECH domains are a subset of the Cloudflare cohort, so the
            // landmark branch above already covers them on those days.
            dirty.extend_from_slice(&self.schedule.ech_ids);
        }
        let renumbers = self.sample_renumbers(day);
        dirty.extend_from_slice(&renumbers);
        dirty.sort_unstable();
        dirty.dedup();

        let mut resync: Vec<u32> = Vec::with_capacity(dirty.len());
        for &idx in &dirty {
            let renumber = renumbers.binary_search(&idx).is_ok();
            let (changed, rebind) = self.visit_domain(idx as usize, day, rotated, renumber);
            if rebind {
                self.finish_renumber(idx as usize);
            }
            if changed {
                resync.push(idx);
            }
        }
        for idx in resync {
            self.sync_domain(idx as usize);
        }
        self.today = self.tranco.day_list(day);
    }

    /// Sample the set of domains that renumber on `day` (ascending,
    /// deduplicated). The per-day renumber volume is Poisson with mean
    /// `population × rate` — the same expected churn as the historical
    /// per-domain Bernoulli sweep, drawn in O(churn) instead of
    /// O(population). Permanent-mismatch domains never renumber.
    fn sample_renumbers(&self, day: u64) -> Vec<u32> {
        let n = self.domains.len();
        if n == 0 {
            return Vec::new();
        }
        let rate = if day < self.config.landmarks.hint_fix {
            self.config.renumber_rate_early
        } else {
            self.config.renumber_rate_late
        };
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ 0x4E17_5E1E ^ day.wrapping_mul(0x1000_0001));
        let eligible = self.schedule.renumber_eligible;
        let count = poisson_sample(&mut rng, rate * eligible as f64).min(eligible);
        let mut picked: Vec<u32> = Vec::with_capacity(count);
        while picked.len() < count {
            let idx = rng.gen_range(0..n as u64) as u32;
            if self.domains[idx as usize].permanent_mismatch || picked.contains(&idx) {
                continue;
            }
            picked.push(idx);
        }
        picked.sort_unstable();
        picked
    }

    /// Apply every day-`day` state transition to one domain; returns
    /// `(needs re-sync, needs renumber completion)`. Mirrors the checks
    /// the historical full sweep ran per domain — the dirty set decides
    /// who gets visited, this decides what actually changed.
    fn visit_domain(
        &mut self,
        idx: usize,
        day: u64,
        rotated: bool,
        renumber: bool,
    ) -> (bool, bool) {
        let lm = self.config.landmarks;
        let hint_lag_mean_days = self.config.hint_lag_mean_days;
        let seed = self.config.seed;
        let mut changed = false;
        let mut rebind = false;
        let mut pending_wake: Option<u64> = None;
        {
            let d = &mut self.domains[idx];

            // Scheduled adoption (Cloudflare proxied enable or non-CF
            // activation; either way the records must re-synthesize).
            if d.adoption_day == Some(day) {
                if let HttpsIntent::CfProxied(_) = d.intent {
                    d.proxied = true;
                }
                changed = true;
            }
            // Periodic proxied toggling (§4.2.3 same-NS intermittency).
            if let Some(period) = d.toggle_period {
                let on = (day / period).is_multiple_of(2);
                if d.proxied != on {
                    d.proxied = on;
                    changed = true;
                }
            }
            // NS migration (§4.2.3): provider change loses the record.
            if let Some((md, new_provider)) = d.migrate {
                if md == day {
                    d.provider = new_provider;
                    changed = true;
                }
            }
            if d.undelegate_day == Some(day) {
                changed = true;
            }

            // Renumbering with lagging records (§4.3.5); membership was
            // sampled in `sample_renumbers`, the follow-up draws (which
            // record lags and for how long) come from the domain's own
            // per-day stream.
            if renumber {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ 0x4E17 ^ day.wrapping_mul(0x1000_0001) ^ d.id as u64,
                );
                let old = d.ip;
                // Allocate outside the borrow below.
                d.old_ip_live = if rng.gen_bool(0.8) { Some(old) } else { None };
                let lag = 1 + rng.gen_range(0..(2.0 * hint_lag_mean_days) as u64 + 1);
                // Direction: 65% the A record lags (reachable only via
                // hints), 35% the hint lags.
                let a_lags = rng.gen_bool(0.65);
                d.pending_a_sync = a_lags.then_some(day + lag);
                d.pending_hint_sync = (!a_lags).then_some(day + lag);
                pending_wake = Some(day + lag);
                changed = true;
                rebind = true;
            }
            // Pending syncs completing today.
            if d.pending_a_sync == Some(day) {
                d.pending_a_sync = None;
                d.a_ip = d.ip;
                d.old_ip_live = None;
                changed = true;
            }
            if d.pending_hint_sync == Some(day) {
                d.pending_hint_sync = None;
                d.hint_ip = d.ip;
                d.old_ip_live = None;
                changed = true;
            }

            // Landmark days force re-synthesis of Cloudflare records.
            if (day == lm.h3_29_sunset || day == lm.ech_disable)
                && matches!(d.intent, HttpsIntent::CfProxied(_))
            {
                changed = true;
            }
            // ECH rotation changes record bytes for ECH domains.
            if rotated && d.ech_enabled && day < lm.ech_disable {
                changed = true;
            }
        }
        if let Some(wake) = pending_wake {
            self.schedule.pending.entry(wake).or_default().push(idx as u32);
        }
        (changed, rebind)
    }

    /// Complete a renumber started in `apply_day`: allocate the new
    /// address, move fields, rebind web servers.
    fn finish_renumber(&mut self, idx: usize) {
        let new_ip = self.alloc_ip();
        let (old_ip, keep_old) = {
            let d = &mut self.domains[idx];
            let old = d.ip;
            d.ip = new_ip;
            // Whichever record is not lagging follows immediately.
            if d.pending_a_sync.is_none() {
                d.a_ip = new_ip;
            }
            if d.pending_hint_sync.is_none() {
                d.hint_ip = new_ip;
            }
            (old, d.old_ip_live.is_some())
        };
        if !keep_old {
            self.network.unbind_stream(IpAddr::V4(old_ip), 443);
            self.network.unbind_stream(IpAddr::V4(old_ip), 80);
        }
        self.bind_web(idx);
    }

    /// Advance within the current day by whole hours (for the §4.4.2
    /// hourly ECH scans), re-syncing ECH-bearing records on rotation
    /// (the build-time ECH cohort; membership never changes).
    pub fn advance_hours(&mut self, hours: u64) {
        for _ in 0..hours {
            self.clock.advance(3_600);
            if self.cf_ech.refresh(self.clock.now()) {
                for i in 0..self.schedule.ech_ids.len() {
                    let idx = self.schedule.ech_ids[i] as usize;
                    self.sync_domain(idx);
                }
            }
        }
    }

    /// Today's Tranco list.
    pub fn today_list(&self) -> &DailyList {
        &self.today
    }

    /// Today's Tranco list as the shared cache entry: the same `Arc` the
    /// day-list cache and every other same-day consumer hold, so takers
    /// keep no private copy alive.
    pub fn today_list_shared(&self) -> Arc<DailyList> {
        self.today.clone()
    }

    /// Look up a domain by universe id.
    pub fn domain(&self, id: u32) -> &DomainState {
        &self.domains[id as usize]
    }

    /// The web server currently bound for a domain (if any).
    pub fn web_server_of(&self, id: u32) -> Option<&Arc<WebServer>> {
        self.web_servers.get(&id)
    }
}

/// Deterministic Poisson(λ) sample. Knuth's product method for small λ;
/// a clamped normal approximation for large λ (where the product method
/// underflows and its cost grows linearly anyway). Used to draw per-day
/// renumber volumes in O(churn) instead of per-domain Bernoulli sweeps.
fn poisson_sample(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 64.0 {
        let limit = (-lambda).exp();
        let mut k = 0usize;
        let mut product: f64 = rng.gen_range(0.0..1.0);
        while product > limit {
            k += 1;
            product *= rng.gen_range(0.0..1.0);
        }
        k
    } else {
        let sampled = lambda + lambda.sqrt() * normal_sample(rng);
        sampled.round().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::RecordType;

    fn tiny_world() -> World {
        World::build(EcosystemConfig::tiny())
    }

    #[test]
    fn build_is_deterministic() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.domains.len(), b.domains.len());
        for (x, y) in a.domains.iter().zip(&b.domains) {
            assert_eq!(x.apex, y.apex);
            assert_eq!(x.provider, y.provider);
            assert_eq!(x.proxied, y.proxied);
            assert_eq!(x.ip, y.ip);
        }
    }

    #[test]
    fn adoption_rate_is_plausible() {
        let w = tiny_world();
        let adopters = w.domains.iter().filter(|d| w.publishes_today(d)).count();
        let frac = adopters as f64 / w.domains.len() as f64;
        assert!((0.10..0.35).contains(&frac), "day-0 adoption {frac}");
    }

    #[test]
    fn stepping_days_changes_state() {
        let mut w = tiny_world();
        let day0 = w.domains.iter().filter(|d| w.publishes_today(d)).count();
        w.step_to_day(100);
        assert_eq!(w.current_day, 100);
        assert_eq!(w.clock.now().day(), 100);
        let day100 = w.domains.iter().filter(|d| w.publishes_today(d)).count();
        // Adoption grows over time in the dynamic universe.
        assert!(day100 >= day0, "{day100} vs {day0}");
    }

    #[test]
    fn ech_disappears_after_kill_switch() {
        let mut w = tiny_world();
        let lm = w.config.landmarks;
        w.step_to_day(lm.ech_disable - 1);
        let has_ech_before = w.domains.iter().any(|d| {
            d.ech_enabled
                && w.publishes_today(d)
                && matches!(d.intent, HttpsIntent::CfProxied(HttpsShape::CfDefault))
        });
        assert!(has_ech_before);
        // Check an actual zone's record bytes.
        let probe = w
            .domains
            .iter()
            .find(|d| {
                d.ech_enabled && w.publishes_today(d) && d.shape() == Some(HttpsShape::CfDefault)
            })
            .expect("an ECH domain exists")
            .clone();
        let infra = w.catalog.get(probe.provider);
        let has_ech_param = infra
            .zones
            .read_zone(&probe.apex, |z| {
                z.get(&probe.apex, RecordType::Https)
                    .map(|rs| {
                        rs.iter().any(|r| match &r.rdata {
                            RData::Https(rd) => rd.ech().is_some(),
                            _ => false,
                        })
                    })
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        assert!(has_ech_param, "ECH param present before the kill switch");

        w.step_to_day(lm.ech_disable);
        let infra = w.catalog.get(probe.provider);
        let has_ech_param = infra
            .zones
            .read_zone(&probe.apex, |z| {
                z.get(&probe.apex, RecordType::Https)
                    .map(|rs| {
                        rs.iter().any(|r| match &r.rdata {
                            RData::Https(rd) => rd.ech().is_some(),
                            _ => false,
                        })
                    })
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        assert!(!has_ech_param, "ECH param gone after the kill switch");
    }

    #[test]
    fn hourly_advance_rotates_ech_keys() {
        let mut w = tiny_world();
        let before = w.cf_ech.configs();
        w.advance_hours(3); // > 1.4h guarantees at least one rotation
        let after = w.cf_ech.configs();
        assert_ne!(before, after, "ECH config must rotate within 3 hours");
    }

    #[test]
    fn rotation_period_in_paper_range() {
        let w = tiny_world();
        for i in 0..50 {
            let p = w.cf_ech.period_of(i);
            let hours = p as f64 / 3600.0;
            assert!((1.05..=1.45).contains(&hours), "period {hours}h out of range");
        }
    }

    #[test]
    fn toggling_domain_loses_and_regains_record() {
        let mut w = tiny_world();
        let Some(probe) = w.domains.iter().find(|d| d.toggle_period.is_some()).map(|d| d.id) else {
            panic!("tiny config guarantees toggling domains");
        };
        let period = w.domain(probe).toggle_period.unwrap();
        let mut states = Vec::new();
        for day in (0..6 * period).step_by(period as usize) {
            w.step_to_day(day.max(w.current_day));
            states.push(w.publishes_today(w.domain(probe)));
        }
        assert!(states.contains(&true) && states.contains(&false), "{states:?}");
    }

    #[test]
    fn web_servers_reachable_at_domain_ip() {
        let w = tiny_world();
        let d = &w.domains[0];
        assert!(w.network.can_connect(IpAddr::V4(d.ip), 443).is_ok());
        assert!(w.network.can_connect(IpAddr::V4(d.ip), 80).is_ok());
    }

    #[test]
    fn poisson_sampler_tracks_mean_in_both_regimes() {
        // Small-λ Knuth product method and large-λ normal approximation
        // must both land near the requested mean.
        for lambda in [0.5f64, 4.0, 40.0, 400.0, 4_000.0] {
            let mut rng = StdRng::seed_from_u64(0xB0 ^ lambda.to_bits());
            let reps = 400usize;
            let total: usize = (0..reps).map(|_| poisson_sample(&mut rng, lambda)).sum();
            let mean = total as f64 / reps as f64;
            assert!((mean - lambda).abs() < lambda * 0.25 + 0.5, "λ {lambda}: sample mean {mean}");
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson_sample(&mut rng, 0.0), 0);
    }

    #[test]
    fn permanent_mismatch_domains_exist_and_never_sync() {
        let mut w = tiny_world();
        let ids: Vec<u32> =
            w.domains.iter().filter(|d| d.permanent_mismatch).map(|d| d.id).collect();
        assert!(!ids.is_empty());
        w.step_to_day(50);
        for id in ids {
            assert!(w.domain(id).hint_mismatch(), "domain {id} should stay mismatched");
        }
    }
}
