//! A WHOIS-like registry attributing IP addresses to operating
//! organizations, including the BYOIP failure mode the paper calls out
//! (customers bringing their own prefixes to a cloud provider, so WHOIS
//! reports the original owner).

use std::net::{IpAddr, Ipv4Addr};

/// One WHOIS allocation: a /16-ish block and its registered org.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Network address of the block.
    pub network: Ipv4Addr,
    /// Prefix length.
    pub prefix_len: u8,
    /// Registered organization.
    pub org: String,
}

/// The WHOIS database.
#[derive(Debug, Default)]
pub struct WhoisDb {
    allocations: Vec<Allocation>,
}

impl WhoisDb {
    /// Empty database.
    pub fn new() -> WhoisDb {
        WhoisDb::default()
    }

    /// Register a block.
    pub fn allocate(&mut self, network: Ipv4Addr, prefix_len: u8, org: &str) {
        self.allocations.push(Allocation { network, prefix_len, org: org.to_string() });
    }

    /// Look up the registered org of an address (most-specific match).
    pub fn lookup(&self, ip: IpAddr) -> Option<&str> {
        let IpAddr::V4(v4) = ip else { return None };
        let addr = u32::from(v4);
        self.allocations
            .iter()
            .filter(|a| {
                let net = u32::from(a.network);
                let mask = if a.prefix_len == 0 { 0 } else { u32::MAX << (32 - a.prefix_len) };
                (addr & mask) == (net & mask)
            })
            .max_by_key(|a| a.prefix_len)
            .map(|a| a.org.as_str())
    }

    /// Number of allocations.
    pub fn len(&self) -> usize {
        self.allocations.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.allocations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_specific_match_wins() {
        let mut db = WhoisDb::new();
        db.allocate(Ipv4Addr::new(172, 16, 0, 0), 12, "Cloud Provider");
        db.allocate(Ipv4Addr::new(172, 17, 0, 0), 24, "BYOIP Customer Org");
        assert_eq!(db.lookup("172.16.5.5".parse().unwrap()), Some("Cloud Provider"));
        // BYOIP: the /24 inside the cloud block reports the customer.
        assert_eq!(db.lookup("172.17.0.9".parse().unwrap()), Some("BYOIP Customer Org"));
        assert_eq!(db.lookup("10.0.0.1".parse().unwrap()), None);
        assert_eq!(db.lookup("::1".parse().unwrap()), None);
    }

    #[test]
    fn exact_boundaries() {
        let mut db = WhoisDb::new();
        db.allocate(Ipv4Addr::new(192, 0, 2, 0), 24, "TestNet");
        assert_eq!(db.lookup("192.0.2.0".parse().unwrap()), Some("TestNet"));
        assert_eq!(db.lookup("192.0.2.255".parse().unwrap()), Some("TestNet"));
        assert_eq!(db.lookup("192.0.3.0".parse().unwrap()), None);
    }
}
