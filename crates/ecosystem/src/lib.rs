//! # ecosystem
//!
//! The synthetic Internet the scanner measures: a Tranco-like ranked
//! domain universe with daily churn and the 2023-08-01 source change,
//! provider models (Cloudflare's proxied-default HTTPS record and hourly
//! ECH key rotation with the 2023-10-05 kill switch, GoDaddy AliasMode,
//! Google empty-SvcParams, legacy non-supporting registrars), domain
//! lifecycle events (proxied toggling, NS migrations, renumbering with
//! lagging A/hint records), full root→TLD→zone DNSSEC chains with the
//! registrar/operator DS-upload failure mode, a WHOIS registry with
//! BYOIP noise, and web servers bound for every domain.
//!
//! Everything is a deterministic function of `EcosystemConfig::seed`.

#![warn(missing_docs)]

pub mod config;
pub mod daylist;
pub mod domain;
pub mod providers;
pub mod tranco;
pub mod whois;
pub mod world;

pub use config::{EcosystemConfig, Landmarks};
pub use daylist::DayListCache;
pub use domain::{synthesize_https, DomainState, HttpsIntent, HttpsShape, SynthesisContext};
pub use providers::{
    provider_specs, well_known, HttpsPolicy, ProviderCatalog, ProviderId, ProviderInfra,
    ProviderSpec,
};
pub use tranco::{DailyList, TrancoModel};
pub use whois::{Allocation, WhoisDb};
pub use world::{CfEch, World};
