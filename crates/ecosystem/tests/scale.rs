//! Scale contracts for the ecosystem layer: the parallel chunked
//! day-list scorer is byte-identical to the sequential reference for
//! every thread count, the golden pre-refactor fingerprints still hold,
//! the shared day-list cache hands every consumer one `Arc`, and the
//! 100 k-population world allocates collision-free addresses.
//!
//! CI runs the thread-sensitive tests under the same matrix as the
//! resolver determinism suite: set `RESOLVER_TEST_THREADS` to a
//! comma-separated list (e.g. `16,32`) to extend the default
//! `{1, 2, 4, 8}` axis.

use ecosystem::{EcosystemConfig, TrancoModel, World};
use proptest::prelude::*;
use std::sync::Arc;

/// Thread counts to exercise: the built-in axis plus any counts named in
/// the `RESOLVER_TEST_THREADS` env var (the CI matrix hook, shared with
/// the resolver's engine-batch determinism suite).
fn thread_axis() -> Vec<usize> {
    let mut axis = vec![1, 2, 4, 8];
    if let Ok(extra) = std::env::var("RESOLVER_TEST_THREADS") {
        for tok in extra.split(',') {
            if let Ok(n) = tok.trim().parse::<usize>() {
                if n > 0 && !axis.contains(&n) {
                    axis.push(n);
                }
            }
        }
    }
    axis
}

fn model(population: usize, list_size: usize) -> TrancoModel {
    TrancoModel::new(&EcosystemConfig { population, list_size, ..EcosystemConfig::tiny() })
}

#[test]
fn parallel_scoring_matches_reference_across_thread_axis() {
    // Population large enough that chunked scoring actually splits
    // (chunks are at least 4096 domains), list size well under it so the
    // partial selection path is exercised, days on both sides of the
    // source change.
    let model = model(20_000, 3_000);
    for day in [0u64, 42, 84, 85, 86, 120] {
        let reference = model.list_for_day_reference(day);
        for &threads in &thread_axis() {
            let parallel = model.list_for_day_with_threads(day, threads);
            assert_eq!(
                parallel.ranked(),
                reference.ranked(),
                "day {day} list diverged at {threads} scoring threads"
            );
        }
    }
}

#[test]
fn full_population_lists_match_reference() {
    // list_size == population: no selection happens, pure sort-order
    // equivalence (the integer-key sort vs the stable float sort).
    let model = model(5_000, 5_000);
    for day in [0u64, 85] {
        let reference = model.list_for_day_reference(day);
        for &threads in &thread_axis() {
            let parallel = model.list_for_day_with_threads(day, threads);
            assert_eq!(parallel.ranked(), reference.ranked(), "day {day}, {threads} threads");
        }
    }
}

/// FNV-1a over a ranked id vector — the same fingerprint the tranco
/// unit tests pin.
fn fingerprint(ids: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in ids {
        for b in id.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[test]
fn golden_fingerprints_hold_for_every_thread_count() {
    // The pre-refactor golden pins (captured from the full-sort,
    // fresh-RNG-per-domain implementation at population 500 / list 300)
    // must survive parallel chunked scoring and partial selection at
    // every thread count, and via the cached entry point too.
    let config = EcosystemConfig { population: 500, list_size: 300, ..EcosystemConfig::tiny() };
    let golden: [(u64, u64); 6] = [
        (0, 0x1ed108cb7d8fab6f),
        (42, 0xff40044098dbb273),
        (84, 0x8bd73a8aabd2105c),
        (85, 0x04dd210a08e87ef2),
        (86, 0xf7b1bf1c63efd87a),
        (120, 0x28ff4ff2240599b0),
    ];
    for &threads in &thread_axis() {
        let model = TrancoModel::new(&EcosystemConfig { score_threads: threads, ..config.clone() });
        for (day, expected) in golden {
            assert_eq!(
                fingerprint(model.list_for_day(day).ranked()),
                expected,
                "golden list for day {day} diverged at {threads} scoring threads"
            );
            assert_eq!(
                fingerprint(model.day_list(day).ranked()),
                expected,
                "cached golden list for day {day} diverged at {threads} scoring threads"
            );
        }
    }
}

proptest! {
    /// Chunked/parallel scoring is a pure refactor of the sequential
    /// reference: byte-identical lists for arbitrary universe shapes,
    /// list sizes, days, and thread counts. The population range
    /// straddles the 2 × 4096-domain chunking threshold so a share of
    /// cases genuinely split across scoring threads (populations below
    /// it take the sequential branch whatever the thread count).
    #[test]
    fn parallel_scoring_equivalence(
        population in 1usize..12_000,
        list_pct in 5usize..100,
        day in 0u64..200,
        seed in 0u64..u64::MAX,
    ) {
        let list_size = (population * list_pct / 100).max(1);
        let model = TrancoModel::new(&EcosystemConfig {
            population,
            list_size,
            seed,
            ..EcosystemConfig::tiny()
        });
        let reference = model.list_for_day_reference(day);
        for &threads in &thread_axis() {
            let parallel = model.list_for_day_with_threads(day, threads);
            prop_assert_eq!(
                parallel.ranked(),
                reference.ranked(),
                "population {} list {} day {} threads {}",
                population, list_size, day, threads
            );
        }
    }
}

#[test]
fn day_list_cache_shares_one_arc_per_day() {
    let model = model(2_000, 1_200);
    let a = model.day_list(7);
    let b = model.day_list(7);
    assert!(Arc::ptr_eq(&a, &b), "same day must share one cached list");
    assert_eq!(model.day_cache().hits(), 1);
    assert_eq!(model.day_cache().misses(), 1);
    // The cached entry is byte-identical to a fresh computation.
    assert_eq!(a.ranked(), model.list_for_day(7).ranked());
}

#[test]
fn world_today_is_the_cached_day_list() {
    let mut world = World::build(EcosystemConfig::tiny());
    let today = world.today_list_shared();
    assert!(
        Arc::ptr_eq(&today, &world.tranco.day_list(0)),
        "world and cache must share day 0's list"
    );
    world.step_to_day(5);
    let today = world.today_list_shared();
    assert!(Arc::ptr_eq(&today, &world.tranco.day_list(5)));
    // Stepping computed each day exactly once; the re-requests above hit.
    assert_eq!(world.tranco.day_cache().misses(), 6);
}

#[test]
fn overlapping_reuses_cached_day_lists() {
    let model = model(600, 400);
    let first = model.overlapping(0, 6);
    let misses_after_first = model.day_cache().misses();
    assert_eq!(misses_after_first, 7, "one computation per window day");
    let second = model.overlapping(0, 6);
    assert_eq!(model.day_cache().misses(), misses_after_first, "second window is all hits");
    assert_eq!(first, second);
}

#[test]
fn stepped_worlds_are_deterministic() {
    // Dirty-set stepping must stay a pure function of the config: two
    // worlds stepped identically agree on every lifecycle field,
    // including the renumber-driven ones.
    let run = |day: u64| {
        let mut w = World::build(EcosystemConfig::tiny());
        w.step_to_day(day);
        w
    };
    let a = run(45);
    let b = run(45);
    for (x, y) in a.domains.iter().zip(&b.domains) {
        assert_eq!(x.ip, y.ip, "domain {}", x.id);
        assert_eq!(x.a_ip, y.a_ip, "domain {}", x.id);
        assert_eq!(x.hint_ip, y.hint_ip, "domain {}", x.id);
        assert_eq!(x.proxied, y.proxied, "domain {}", x.id);
        assert_eq!(x.provider, y.provider, "domain {}", x.id);
        assert_eq!(x.pending_a_sync, y.pending_a_sync, "domain {}", x.id);
        assert_eq!(x.pending_hint_sync, y.pending_hint_sync, "domain {}", x.id);
    }
}

#[test]
fn renumber_volume_tracks_configured_rates() {
    // The Poisson-sampled renumber schedule must preserve the configured
    // churn rates the old per-domain Bernoulli sweep implemented:
    // across the early window, daily renumber starts average close to
    // population × rate (and are not all zero / all population).
    let cfg = EcosystemConfig::tiny();
    let expected_daily = cfg.population as f64 * cfg.renumber_rate_early;
    let mut w = World::build(cfg);
    let mut starts = 0usize;
    let days = 40u64;
    for day in 1..=days {
        let before: Vec<_> = w.domains.iter().map(|d| d.ip).collect();
        w.step_to_day(day);
        starts += w.domains.iter().zip(&before).filter(|(d, old)| d.ip != **old).count();
    }
    let mean = starts as f64 / days as f64;
    assert!(
        mean > expected_daily * 0.3 && mean < expected_daily * 3.0,
        "daily renumber mean {mean} vs configured {expected_daily}"
    );
}

/// Slow (≈1 min in debug): run with `--ignored`, as the CI scale job
/// does in release mode.
#[test]
#[ignore = "builds a 100k-population world; run with --ignored (CI scale job)"]
fn hundred_k_world_has_no_duplicate_addresses() {
    let mut world = World::build(EcosystemConfig {
        population: 100_000,
        list_size: 10_000,
        ..EcosystemConfig::default()
    });
    world.step_to_day(3);
    let mut seen = std::collections::HashSet::new();
    for d in &world.domains {
        assert!(seen.insert(d.ip), "duplicate live address {} (domain {})", d.ip, d.id);
        if d.permanent_mismatch {
            assert!(seen.insert(d.hint_ip), "duplicate hint address {}", d.hint_ip);
        }
    }
    assert!(seen.len() >= 100_000);
}
