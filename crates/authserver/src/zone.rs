//! Zone data: RRsets keyed by (name, type), optional DNSSEC signing,
//! and lookup semantics (exact match, CNAME, DNAME synthesis, NODATA vs
//! NXDOMAIN).

use dns_wire::record::RrsigRdata;
use dns_wire::{DnsName, RData, Record, RecordType, SoaRdata};
use dnssec::ZoneKeys;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Outcome of a lookup inside a single zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// The RRset exists; includes RRSIGs when the zone is signed.
    Found {
        /// The answer RRset.
        records: Vec<Record>,
        /// Covering RRSIG records (empty when unsigned).
        rrsigs: Vec<Record>,
    },
    /// A CNAME exists at the name (and the query was for another type).
    Cname {
        /// The CNAME record.
        record: Record,
        /// Its RRSIG records (empty when unsigned).
        rrsigs: Vec<Record>,
        /// The alias target, for chasing.
        target: DnsName,
    },
    /// The name exists but has no RRset of the queried type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
}

/// Upper bound on precompiled responses retained per zone; beyond this
/// the cache stops admitting new entries until the next invalidation.
const COMPILED_CACHE_MAX: usize = 4096;

/// Full identity of a precompiled response: every query attribute the
/// response bytes depend on besides the transaction ID (which is patched
/// at serve time) and the question-name case (only all-lowercase names
/// are compiled).
struct CompiledKey {
    /// Canonical (lowercase, uncompressed) wire form of the qname.
    qname_wire: Box<[u8]>,
    qtype: u16,
    qclass: u16,
    /// Query RD flag (echoed into the response header).
    rd: bool,
    /// Whether the query carried an OPT record at all.
    edns: bool,
    /// EDNS DO bit (selects the DNSSEC variant of the answer).
    do_bit: bool,
}

impl CompiledKey {
    fn matches(
        &self,
        qname_wire: &[u8],
        qtype: u16,
        qclass: u16,
        rd: bool,
        edns: bool,
        do_bit: bool,
    ) -> bool {
        self.qtype == qtype
            && self.qclass == qclass
            && self.rd == rd
            && self.edns == edns
            && self.do_bit == do_bit
            && *self.qname_wire == *qname_wire
    }
}

/// Hash-then-verify map of precompiled responses. Keys are hashed with
/// FNV-1a over borrowed fields so a lookup never allocates; the bucket
/// scan verifies full equality before a hit is declared.
type CompiledBucket = Vec<(CompiledKey, Arc<[u8]>)>;

#[derive(Default)]
struct CompiledCache {
    map: HashMap<u64, CompiledBucket>,
    len: usize,
    /// Bumped on every invalidation; inserts carry the generation they
    /// were rendered under and are dropped if it has moved on, so a
    /// response rendered against pre-mutation zone state can never be
    /// cached after the mutation's invalidation ran.
    generation: u64,
}

fn fnv_step(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
}

fn compiled_hash(
    qname_wire: &[u8],
    qtype: u16,
    qclass: u16,
    rd: bool,
    edns: bool,
    do_bit: bool,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in qname_wire {
        h = fnv_step(h, b);
    }
    for b in qtype.to_be_bytes() {
        h = fnv_step(h, b);
    }
    for b in qclass.to_be_bytes() {
        h = fnv_step(h, b);
    }
    fnv_step(h, (rd as u8) | ((edns as u8) << 1) | ((do_bit as u8) << 2))
}

/// A single authoritative zone.
pub struct Zone {
    /// Apex name of the zone.
    pub apex: DnsName,
    rrsets: BTreeMap<(DnsName, u16), Vec<Record>>,
    /// Signing keys; `Some` when the zone is DNSSEC-signed.
    keys: Option<ZoneKeys>,
    /// Signature validity window applied to generated RRSIGs.
    sig_window: (u32, u32),
    /// Precompiled wire-format responses, invalidated on any mutation.
    compiled: Mutex<CompiledCache>,
}

impl Clone for Zone {
    fn clone(&self) -> Zone {
        // The compiled cache is a derived artifact; clones start cold.
        Zone {
            apex: self.apex.clone(),
            rrsets: self.rrsets.clone(),
            keys: self.keys.clone(),
            sig_window: self.sig_window,
            compiled: Mutex::new(CompiledCache::default()),
        }
    }
}

impl fmt::Debug for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Zone")
            .field("apex", &self.apex)
            .field("rrsets", &self.rrsets)
            .field("keys", &self.keys)
            .field("sig_window", &self.sig_window)
            .finish_non_exhaustive()
    }
}

impl Zone {
    /// Create an empty zone with a default SOA.
    pub fn new(apex: DnsName) -> Zone {
        let soa = Record::new(
            apex.clone(),
            3600,
            RData::Soa(SoaRdata {
                mname: apex.prepend("ns1").unwrap_or_else(|_| apex.clone()),
                rname: apex.prepend("hostmaster").unwrap_or_else(|_| apex.clone()),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            }),
        );
        let mut zone = Zone {
            apex,
            rrsets: BTreeMap::new(),
            keys: None,
            sig_window: (0, u32::MAX - 1),
            compiled: Mutex::new(CompiledCache::default()),
        };
        zone.add(soa);
        zone
    }

    /// Enable DNSSEC signing with the given keys.
    pub fn enable_signing(&mut self, keys: ZoneKeys, inception: u32, expiration: u32) {
        self.keys = Some(keys);
        self.sig_window = (inception, expiration);
        self.invalidate_compiled();
    }

    /// Disable DNSSEC signing.
    pub fn disable_signing(&mut self) {
        self.keys = None;
        self.invalidate_compiled();
    }

    /// Whether the zone is signed.
    pub fn is_signed(&self) -> bool {
        self.keys.is_some()
    }

    /// The signing keys, if any.
    pub fn keys(&self) -> Option<&ZoneKeys> {
        self.keys.as_ref()
    }

    /// Add a record to its RRset (no deduplication of identical records).
    pub fn add(&mut self, record: Record) {
        debug_assert!(
            record.name.is_subdomain_of(&self.apex),
            "record {} outside zone {}",
            record.name,
            self.apex
        );
        self.rrsets.entry((record.name.clone(), record.rtype.code())).or_default().push(record);
        self.invalidate_compiled();
    }

    /// Replace the whole RRset at (name, type).
    pub fn set(&mut self, name: DnsName, rtype: RecordType, records: Vec<Record>) {
        if records.is_empty() {
            self.rrsets.remove(&(name, rtype.code()));
        } else {
            self.rrsets.insert((name, rtype.code()), records);
        }
        self.invalidate_compiled();
    }

    /// Remove the RRset at (name, type); returns whether it existed.
    pub fn remove(&mut self, name: &DnsName, rtype: RecordType) -> bool {
        let removed = self.rrsets.remove(&(name.clone(), rtype.code())).is_some();
        if removed {
            self.invalidate_compiled();
        }
        removed
    }

    /// Fetch the RRset at (name, type) if present.
    pub fn get(&self, name: &DnsName, rtype: RecordType) -> Option<&Vec<Record>> {
        self.rrsets.get(&(name.clone(), rtype.code()))
    }

    /// Iterate over every record in the zone.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.rrsets.values().flatten()
    }

    /// The zone's SOA record.
    pub fn soa(&self) -> Option<&Record> {
        self.get(&self.apex, RecordType::Soa).and_then(|v| v.first())
    }

    /// RRSIG records covering `rrset`, if the zone is signed.
    pub fn sign_rrset(&self, rrset: &[Record]) -> Vec<Record> {
        match (&self.keys, rrset.first()) {
            (Some(keys), Some(_)) => {
                vec![keys.sign(rrset, self.sig_window.0, self.sig_window.1)]
            }
            _ => Vec::new(),
        }
    }

    /// Look up (name, type) with full zone semantics.
    pub fn lookup(&self, name: &DnsName, rtype: RecordType) -> LookupResult {
        if !name.is_subdomain_of(&self.apex) {
            return LookupResult::NxDomain;
        }
        // DNSKEY queries are answered from the signing keys directly so
        // key state can never drift from record state.
        if rtype == RecordType::Dnskey && *name == self.apex {
            if let Some(keys) = &self.keys {
                let rec = keys.dnskey_record(300);
                let rrsigs = self.sign_rrset(std::slice::from_ref(&rec));
                return LookupResult::Found { records: vec![rec], rrsigs };
            }
        }
        if let Some(rrset) = self.get(name, rtype) {
            let rrsigs = self.sign_rrset(rrset);
            return LookupResult::Found { records: rrset.clone(), rrsigs };
        }
        // CNAME at the name answers any other type (except CNAME itself,
        // handled above, and DNSSEC meta-queries at the apex).
        if rtype != RecordType::Cname {
            if let Some(cnames) = self.get(name, RecordType::Cname) {
                if let Some(rec) = cnames.first() {
                    if let RData::Cname(target) = &rec.rdata {
                        let rrsigs = self.sign_rrset(std::slice::from_ref(rec));
                        return LookupResult::Cname {
                            record: rec.clone(),
                            rrsigs,
                            target: target.clone(),
                        };
                    }
                }
            }
        }
        // DNAME at a strict ancestor synthesizes a CNAME (RFC 6672).
        let mut ancestor = name.parent();
        while let Some(anc) = ancestor {
            if !anc.is_subdomain_of(&self.apex) {
                break;
            }
            if let Some(dnames) = self.get(&anc, RecordType::Dname) {
                if let Some(rec) = dnames.first() {
                    if let RData::Dname(target) = &rec.rdata {
                        if let Some(synth_target) = substitute_dname(name, &anc, target) {
                            let synth = Record::new(
                                name.clone(),
                                rec.ttl,
                                RData::Cname(synth_target.clone()),
                            );
                            return LookupResult::Cname {
                                record: synth,
                                rrsigs: Vec::new(),
                                target: synth_target,
                            };
                        }
                    }
                }
            }
            ancestor = anc.parent();
        }
        // Does the name exist at all (any type, or as an empty non-terminal)?
        let exists = self.rrsets.keys().any(|(n, _)| n == name || n.is_subdomain_of(name));
        if exists {
            LookupResult::NoData
        } else {
            LookupResult::NxDomain
        }
    }
}

/// Precompiled-response cache plumbing. Responses are rendered once by
/// the reference path and then served as `lookup + clone + ID patch`
/// until the zone mutates.
impl Zone {
    /// Fetch the precompiled response for a query shape, if cached.
    /// `qname_wire` must be the canonical (lowercase) wire form of the
    /// question name.
    pub fn compiled_lookup(
        &self,
        qname_wire: &[u8],
        qtype: u16,
        qclass: u16,
        rd: bool,
        edns: bool,
        do_bit: bool,
    ) -> Option<Arc<[u8]>> {
        let h = compiled_hash(qname_wire, qtype, qclass, rd, edns, do_bit);
        let cache = self.compiled.lock();
        cache
            .map
            .get(&h)?
            .iter()
            .find(|(k, _)| k.matches(qname_wire, qtype, qclass, rd, edns, do_bit))
            .map(|(_, bytes)| bytes.clone())
    }

    /// The cache generation a response must be rendered under for
    /// [`Zone::compiled_insert`] to accept it.
    pub fn compiled_generation(&self) -> u64 {
        self.compiled.lock().generation
    }

    /// Remember a rendered response for a query shape. No-op once the
    /// per-zone cap is reached (until the next invalidation), or when the
    /// cache generation moved past `generation` since the response was
    /// rendered.
    #[allow(clippy::too_many_arguments)]
    pub fn compiled_insert(
        &self,
        generation: u64,
        qname_wire: &[u8],
        qtype: u16,
        qclass: u16,
        rd: bool,
        edns: bool,
        do_bit: bool,
        bytes: Arc<[u8]>,
    ) {
        let h = compiled_hash(qname_wire, qtype, qclass, rd, edns, do_bit);
        let mut cache = self.compiled.lock();
        if cache.generation != generation || cache.len >= COMPILED_CACHE_MAX {
            return;
        }
        let bucket = cache.map.entry(h).or_default();
        if bucket.iter().any(|(k, _)| k.matches(qname_wire, qtype, qclass, rd, edns, do_bit)) {
            return;
        }
        bucket.push((
            CompiledKey { qname_wire: qname_wire.into(), qtype, qclass, rd, edns, do_bit },
            bytes,
        ));
        cache.len += 1;
    }

    /// Number of precompiled responses currently cached.
    pub fn compiled_len(&self) -> usize {
        self.compiled.lock().len
    }

    /// Drop every precompiled response (zone content changed).
    pub(crate) fn invalidate_compiled(&self) {
        let mut cache = self.compiled.lock();
        cache.map.clear();
        cache.len = 0;
        cache.generation += 1;
    }
}

impl Zone {
    /// Build a zone from presentation-format text (a BIND-style master
    /// file). The default SOA is replaced if the text provides one.
    pub fn from_text(apex: DnsName, text: &str) -> Result<Zone, dns_wire::ParseError> {
        let records = dns_wire::presentation::parse_zone_text(text, &apex)?;
        let mut zone = Zone::new(apex);
        for rec in records {
            if rec.rtype == RecordType::Soa {
                let owner = rec.name.clone();
                zone.set(owner, RecordType::Soa, vec![rec]);
            } else {
                zone.add(rec);
            }
        }
        Ok(zone)
    }

    /// Render the zone as presentation-format text.
    pub fn to_text(&self) -> String {
        let records: Vec<Record> = self.iter().cloned().collect();
        dns_wire::presentation::to_zone_text(&records)
    }
}

/// Replace the `owner` suffix of `name` with `target` (DNAME logic).
fn substitute_dname(name: &DnsName, owner: &DnsName, target: &DnsName) -> Option<DnsName> {
    if !name.is_subdomain_of(owner) || name == owner {
        return None;
    }
    let keep = name.label_count() - owner.label_count();
    let mut labels: Vec<Vec<u8>> = name.labels()[..keep].to_vec();
    labels.extend(target.labels().iter().cloned());
    Some(DnsName::from_labels(labels))
}

/// The RRSIG RDATA values inside a set of RRSIG records.
pub fn rrsig_rdatas(records: &[Record]) -> Vec<RrsigRdata> {
    records
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Rrsig(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::SvcbRdata;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn test_zone() -> Zone {
        let mut z = Zone::new(name("a.com"));
        z.add(Record::new(name("a.com"), 300, RData::A(Ipv4Addr::new(1, 2, 3, 4))));
        z.add(Record::new(
            name("a.com"),
            300,
            RData::Https(SvcbRdata::service_self(vec![dns_wire::SvcParam::Alpn(vec![
                b"h2".to_vec()
            ])])),
        ));
        z.add(Record::new(name("www.a.com"), 300, RData::Cname(name("a.com"))));
        z.add(Record::new(name("mail.a.com"), 300, RData::A(Ipv4Addr::new(5, 6, 7, 8))));
        z
    }

    #[test]
    fn exact_match() {
        let z = test_zone();
        match z.lookup(&name("a.com"), RecordType::A) {
            LookupResult::Found { records, rrsigs } => {
                assert_eq!(records.len(), 1);
                assert!(rrsigs.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cname_for_other_types() {
        let z = test_zone();
        match z.lookup(&name("www.a.com"), RecordType::Https) {
            LookupResult::Cname { target, .. } => assert_eq!(target, name("a.com")),
            other => panic!("{other:?}"),
        }
        // Query for the CNAME itself returns it as Found.
        match z.lookup(&name("www.a.com"), RecordType::Cname) {
            LookupResult::Found { records, .. } => assert_eq!(records.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nodata_vs_nxdomain() {
        let z = test_zone();
        assert_eq!(z.lookup(&name("mail.a.com"), RecordType::Https), LookupResult::NoData);
        assert_eq!(z.lookup(&name("nope.a.com"), RecordType::A), LookupResult::NxDomain);
        assert_eq!(z.lookup(&name("other.org"), RecordType::A), LookupResult::NxDomain);
    }

    #[test]
    fn empty_non_terminal_is_nodata() {
        let mut z = Zone::new(name("a.com"));
        z.add(Record::new(name("x.y.a.com"), 60, RData::A(Ipv4Addr::new(1, 1, 1, 1))));
        // y.a.com has no records but has a descendant.
        assert_eq!(z.lookup(&name("y.a.com"), RecordType::A), LookupResult::NoData);
    }

    #[test]
    fn signed_zone_attaches_rrsigs() {
        let mut z = test_zone();
        z.enable_signing(ZoneKeys::derive(&name("a.com"), 0), 0, u32::MAX - 1);
        match z.lookup(&name("a.com"), RecordType::Https) {
            LookupResult::Found { rrsigs, .. } => {
                assert_eq!(rrsigs.len(), 1);
                let sigs = rrsig_rdatas(&rrsigs);
                assert_eq!(sigs[0].type_covered, RecordType::Https);
            }
            other => panic!("{other:?}"),
        }
        // DNSKEY query is answered from key state.
        match z.lookup(&name("a.com"), RecordType::Dnskey) {
            LookupResult::Found { records, rrsigs } => {
                assert_eq!(records.len(), 1);
                assert_eq!(rrsigs.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        z.disable_signing();
        match z.lookup(&name("a.com"), RecordType::Https) {
            LookupResult::Found { rrsigs, .. } => assert!(rrsigs.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dname_synthesis() {
        let mut z = Zone::new(name("a.com"));
        z.add(Record::new(name("legacy.a.com"), 300, RData::Dname(name("modern.a.com"))));
        z.add(Record::new(name("svc.modern.a.com"), 300, RData::A(Ipv4Addr::new(9, 9, 9, 9))));
        match z.lookup(&name("svc.legacy.a.com"), RecordType::A) {
            LookupResult::Cname { target, .. } => {
                assert_eq!(target, name("svc.modern.a.com"));
            }
            other => panic!("{other:?}"),
        }
        // The DNAME owner itself is not rewritten (HTTPS RR can live there,
        // per the paper's §2 discussion).
        z.add(Record::new(
            name("legacy.a.com"),
            300,
            RData::Https(SvcbRdata::alias(name("modern.a.com"))),
        ));
        match z.lookup(&name("legacy.a.com"), RecordType::Https) {
            LookupResult::Found { records, .. } => assert_eq!(records.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_and_remove() {
        let mut z = test_zone();
        assert!(z.remove(&name("a.com"), RecordType::Https));
        assert!(!z.remove(&name("a.com"), RecordType::Https));
        assert_eq!(z.lookup(&name("a.com"), RecordType::Https), LookupResult::NoData);
        z.set(
            name("a.com"),
            RecordType::A,
            vec![Record::new(name("a.com"), 60, RData::A(Ipv4Addr::new(9, 9, 9, 9)))],
        );
        match z.lookup(&name("a.com"), RecordType::A) {
            LookupResult::Found { records, .. } => {
                assert_eq!(records[0].rdata, RData::A(Ipv4Addr::new(9, 9, 9, 9)));
            }
            other => panic!("{other:?}"),
        }
        z.set(name("a.com"), RecordType::A, vec![]);
        assert_eq!(z.lookup(&name("a.com"), RecordType::A), LookupResult::NoData);
    }

    #[test]
    fn zone_from_text_round_trip() {
        let text = "\
$ORIGIN a.com.
$TTL 300
@ IN SOA ns1.a.com. hostmaster.a.com. 7 7200 3600 1209600 300
@ IN NS ns1.a.com.
@ IN A 2.2.3.4
@ IN HTTPS 1 . alpn=h2,h3 ipv4hint=104.16.1.1
www IN CNAME a.com.
";
        let zone = Zone::from_text(name("a.com"), text).unwrap();
        match zone.lookup(&name("a.com"), RecordType::Https) {
            LookupResult::Found { records, .. } => assert_eq!(records.len(), 1),
            other => panic!("{other:?}"),
        }
        // The SOA from the file replaced the default (serial 7).
        match &zone.soa().unwrap().rdata {
            RData::Soa(soa) => assert_eq!(soa.serial, 7),
            other => panic!("{other:?}"),
        }
        // Round-trip through text preserves lookups.
        let again = Zone::from_text(name("a.com"), &zone.to_text()).unwrap();
        assert_eq!(
            again.lookup(&name("www.a.com"), RecordType::Https),
            zone.lookup(&name("www.a.com"), RecordType::Https)
        );
    }

    #[test]
    fn zone_from_text_rejects_bad_lines() {
        assert!(Zone::from_text(name("a.com"), "@ IN BOGUS x").is_err());
        assert!(Zone::from_text(name("a.com"), "@ IN HTTPS one .").is_err());
    }

    #[test]
    fn soa_present_by_default() {
        let z = Zone::new(name("a.com"));
        assert!(z.soa().is_some());
    }
}
