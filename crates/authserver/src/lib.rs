//! # authserver
//!
//! Authoritative DNS serving for the simulated ecosystem: [`Zone`] data
//! with real lookup semantics (CNAME, DNAME synthesis, NODATA/NXDOMAIN,
//! DNSSEC RRSIG attachment), the [`AuthoritativeServer`] datagram
//! service, and the [`DelegationRegistry`] that tells resolvers which
//! name servers serve which apex.
//!
//! A provider in the ecosystem owns one or more `AuthoritativeServer`
//! instances bound to IPs on the simulated network; domains migrate
//! between providers by re-pointing their registry delegation — the
//! mechanism behind the paper's §4.2.3 intermittent-HTTPS findings.

#![warn(missing_docs)]

pub mod registry;
pub mod server;
pub mod zone;

pub use registry::{DelegationRegistry, NsEndpoint};
pub use server::{AuthoritativeServer, ZoneSet};
pub use zone::{rrsig_rdatas, LookupResult, Zone};
