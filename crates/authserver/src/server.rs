//! The authoritative DNS server: a [`DatagramService`] answering wire
//! queries from its set of zones, with in-zone CNAME chasing, DNSSEC
//! record attachment (honouring the EDNS DO bit), and NXDOMAIN/NODATA
//! semantics.

use crate::zone::{LookupResult, Zone};
use dns_wire::{DnsName, Message, Rcode, RecordType};
use netsim::{DatagramService, NetError, Timestamp};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared, mutable set of zones served by one authoritative server.
///
/// Ecosystem policies mutate zones through this handle while the server
/// keeps serving — exactly how provider dashboards mutate production
/// zones under live traffic.
#[derive(Clone, Default)]
pub struct ZoneSet {
    zones: Arc<RwLock<HashMap<String, Zone>>>,
}

impl ZoneSet {
    /// Empty zone set.
    pub fn new() -> ZoneSet {
        ZoneSet::default()
    }

    /// Insert or replace a zone.
    pub fn insert(&self, zone: Zone) {
        self.zones.write().insert(zone.apex.key(), zone);
    }

    /// Remove a zone by apex.
    pub fn remove(&self, apex: &DnsName) -> bool {
        self.zones.write().remove(&apex.key()).is_some()
    }

    /// Run `f` over the zone with the given apex, if present.
    pub fn with_zone<R>(&self, apex: &DnsName, f: impl FnOnce(&mut Zone) -> R) -> Option<R> {
        let mut zones = self.zones.write();
        zones.get_mut(&apex.key()).map(f)
    }

    /// Run `f` over a snapshot of the zone (read-only).
    pub fn read_zone<R>(&self, apex: &DnsName, f: impl FnOnce(&Zone) -> R) -> Option<R> {
        let zones = self.zones.read();
        zones.get(&apex.key()).map(f)
    }

    /// Find the deepest zone containing `name`, returning its apex.
    pub fn find_zone_for(&self, name: &DnsName) -> Option<DnsName> {
        let zones = self.zones.read();
        let mut candidate = Some(name.clone());
        while let Some(c) = candidate {
            if zones.contains_key(&c.key()) {
                return Some(c);
            }
            candidate = c.parent();
        }
        None
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.read().len()
    }

    /// Whether there are no zones.
    pub fn is_empty(&self) -> bool {
        self.zones.read().is_empty()
    }
}

/// An authoritative DNS server instance.
///
/// One server may serve many zones (a provider's name server), and one
/// zone may be served by many servers (possibly with *different*
/// contents when providers disagree — the §4.2.3 mixed-provider case is
/// modelled by giving each provider's servers their own `ZoneSet`).
pub struct AuthoritativeServer {
    zones: ZoneSet,
    /// Maximum CNAME chain length followed within our own zones.
    max_cname_chase: usize,
}

impl AuthoritativeServer {
    /// Create a server over a zone set.
    pub fn new(zones: ZoneSet) -> AuthoritativeServer {
        AuthoritativeServer { zones, max_cname_chase: 8 }
    }

    /// The served zone set handle.
    pub fn zones(&self) -> &ZoneSet {
        &self.zones
    }

    /// Answer a decoded query message.
    pub fn answer(&self, query: &Message) -> Message {
        let mut resp = query.response();
        resp.flags.ra = false; // authoritative servers do not recurse
        let Some(q) = query.question() else {
            resp.rcode = Rcode::FormErr;
            return resp;
        };
        let want_dnssec = query.dnssec_ok();

        let Some(apex) = self.zones.find_zone_for(&q.name) else {
            resp.rcode = Rcode::Refused;
            return resp;
        };
        resp.flags.aa = true;

        let mut current = q.name.clone();
        for _ in 0..=self.max_cname_chase {
            let outcome = self
                .zones
                .read_zone(&apex, |z| z.lookup(&current, q.qtype))
                .unwrap_or(LookupResult::NxDomain);
            match outcome {
                LookupResult::Found { records, rrsigs } => {
                    resp.answers.extend(records);
                    if want_dnssec {
                        resp.answers.extend(rrsigs);
                    }
                    return resp;
                }
                LookupResult::Cname { record, rrsigs, target } => {
                    resp.answers.push(record);
                    if want_dnssec {
                        resp.answers.extend(rrsigs);
                    }
                    // Chase within the same zone set only; out-of-zone
                    // targets are left for the resolver.
                    if target.is_subdomain_of(&apex) && q.qtype != RecordType::Cname {
                        current = target;
                        continue;
                    }
                    return resp;
                }
                LookupResult::NoData => {
                    self.attach_soa(&apex, &mut resp);
                    return resp;
                }
                LookupResult::NxDomain => {
                    resp.rcode = Rcode::NxDomain;
                    self.attach_soa(&apex, &mut resp);
                    return resp;
                }
            }
        }
        // CNAME chain exceeded the budget.
        resp.rcode = Rcode::ServFail;
        resp
    }

    fn attach_soa(&self, apex: &DnsName, resp: &mut Message) {
        if let Some(Some(soa)) = self.zones.read_zone(apex, |z| z.soa().cloned()) {
            resp.authorities.push(soa);
        }
    }
}

impl DatagramService for AuthoritativeServer {
    fn handle(&self, request: &[u8], _now: Timestamp) -> Result<Vec<u8>, NetError> {
        let query = match Message::decode(request) {
            Ok(m) => m,
            Err(_) => {
                // Unparseable datagram: a real server answers FORMERR when
                // it can extract an id; we drop, which the caller sees as
                // a reset.
                return Err(NetError::Reset);
            }
        };
        Ok(self.answer(&query).encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{RData, Record, SvcbRdata};
    use dnssec::ZoneKeys;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn server_with_zone() -> AuthoritativeServer {
        let zones = ZoneSet::new();
        let mut z = Zone::new(name("a.com"));
        z.add(Record::new(name("a.com"), 300, RData::A(Ipv4Addr::new(1, 2, 3, 4))));
        z.add(Record::new(
            name("a.com"),
            300,
            RData::Https(SvcbRdata::service_self(vec![dns_wire::SvcParam::Alpn(vec![
                b"h2".to_vec()
            ])])),
        ));
        z.add(Record::new(name("www.a.com"), 300, RData::Cname(name("a.com"))));
        zones.insert(z);
        AuthoritativeServer::new(zones)
    }

    #[test]
    fn answers_https_query() {
        let s = server_with_zone();
        let q = Message::query(1, name("a.com"), RecordType::Https);
        let resp = s.answer(&q);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.flags.aa);
        assert!(!resp.flags.ra);
        assert_eq!(resp.answers_of(RecordType::Https).len(), 1);
    }

    #[test]
    fn chases_cname_in_zone() {
        let s = server_with_zone();
        let q = Message::query(2, name("www.a.com"), RecordType::A);
        let resp = s.answer(&q);
        assert_eq!(resp.answers_of(RecordType::Cname).len(), 1);
        assert_eq!(resp.answers_of(RecordType::A).len(), 1);
    }

    #[test]
    fn https_query_through_cname() {
        // The paper's scanner follows CNAME responses for HTTPS queries.
        let s = server_with_zone();
        let q = Message::query(3, name("www.a.com"), RecordType::Https);
        let resp = s.answer(&q);
        assert_eq!(resp.answers_of(RecordType::Cname).len(), 1);
        assert_eq!(resp.answers_of(RecordType::Https).len(), 1);
    }

    #[test]
    fn refused_outside_zones() {
        let s = server_with_zone();
        let q = Message::query(4, name("other.org"), RecordType::A);
        assert_eq!(s.answer(&q).rcode, Rcode::Refused);
    }

    #[test]
    fn nxdomain_with_soa() {
        let s = server_with_zone();
        let q = Message::query(5, name("missing.a.com"), RecordType::A);
        let resp = s.answer(&q);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert_eq!(resp.authorities.len(), 1);
        assert_eq!(resp.authorities[0].rtype, RecordType::Soa);
    }

    #[test]
    fn nodata_with_soa() {
        let s = server_with_zone();
        let q = Message::query(6, name("a.com"), RecordType::Aaaa);
        let resp = s.answer(&q);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities.len(), 1);
    }

    #[test]
    fn rrsigs_only_with_do_bit() {
        let s = server_with_zone();
        s.zones()
            .with_zone(&name("a.com"), |z| {
                z.enable_signing(ZoneKeys::derive(&name("a.com"), 0), 0, u32::MAX - 1)
            })
            .unwrap();
        let plain = Message::query(7, name("a.com"), RecordType::Https);
        let resp = s.answer(&plain);
        assert!(resp.answers_of(RecordType::Rrsig).is_empty());

        let signed = Message::query_dnssec(8, name("a.com"), RecordType::Https);
        let resp = s.answer(&signed);
        assert_eq!(resp.answers_of(RecordType::Rrsig).len(), 1);
    }

    #[test]
    fn wire_round_trip_through_datagram_service() {
        let s = server_with_zone();
        let q = Message::query(9, name("a.com"), RecordType::Https);
        let resp_bytes = s.handle(&q.encode(), Timestamp(0)).unwrap();
        let resp = Message::decode(&resp_bytes).unwrap();
        assert_eq!(resp.id, 9);
        assert_eq!(resp.answers_of(RecordType::Https).len(), 1);
    }

    #[test]
    fn garbage_datagram_rejected() {
        let s = server_with_zone();
        assert!(s.handle(&[0xFF; 7], Timestamp(0)).is_err());
    }

    #[test]
    fn cname_loop_servfails() {
        let zones = ZoneSet::new();
        let mut z = Zone::new(name("loop.com"));
        z.add(Record::new(name("x.loop.com"), 60, RData::Cname(name("y.loop.com"))));
        z.add(Record::new(name("y.loop.com"), 60, RData::Cname(name("x.loop.com"))));
        zones.insert(z);
        let s = AuthoritativeServer::new(zones);
        let q = Message::query(10, name("x.loop.com"), RecordType::A);
        assert_eq!(s.answer(&q).rcode, Rcode::ServFail);
    }

    #[test]
    fn zone_mutation_visible_to_server() {
        let s = server_with_zone();
        s.zones()
            .with_zone(&name("a.com"), |z| {
                z.remove(&name("a.com"), RecordType::Https);
            })
            .unwrap();
        let q = Message::query(11, name("a.com"), RecordType::Https);
        let resp = s.answer(&q);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.rcode, Rcode::NoError);
    }

    #[test]
    fn deepest_zone_wins() {
        let zones = ZoneSet::new();
        let mut parent = Zone::new(name("com"));
        parent.add(Record::new(name("a.com"), 300, RData::Ns(name("ns1.prov.net"))));
        zones.insert(parent);
        let mut child = Zone::new(name("a.com"));
        child.add(Record::new(name("a.com"), 300, RData::A(Ipv4Addr::new(7, 7, 7, 7))));
        zones.insert(child);
        let s = AuthoritativeServer::new(zones);
        let resp = s.answer(&Message::query(12, name("a.com"), RecordType::A));
        assert_eq!(resp.answers_of(RecordType::A).len(), 1);
    }
}
