//! The authoritative DNS server: a [`DatagramService`] answering wire
//! queries from its set of zones, with in-zone CNAME chasing, DNSSEC
//! record attachment (honouring the EDNS DO bit), and NXDOMAIN/NODATA
//! semantics.

use crate::zone::{LookupResult, Zone};
use dns_wire::{DnsName, Message, MessageView, NameView, Opcode, Rcode, RecordType};
use netsim::{DatagramService, NetError, Timestamp};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared, mutable set of zones served by one authoritative server.
///
/// Ecosystem policies mutate zones through this handle while the server
/// keeps serving — exactly how provider dashboards mutate production
/// zones under live traffic.
#[derive(Clone, Default)]
pub struct ZoneSet {
    zones: Arc<RwLock<HashMap<String, Zone>>>,
}

impl ZoneSet {
    /// Empty zone set.
    pub fn new() -> ZoneSet {
        ZoneSet::default()
    }

    /// Insert or replace a zone.
    pub fn insert(&self, zone: Zone) {
        self.zones.write().insert(zone.apex.key(), zone);
    }

    /// Remove a zone by apex.
    pub fn remove(&self, apex: &DnsName) -> bool {
        self.zones.write().remove(&apex.key()).is_some()
    }

    /// Run `f` over the zone with the given apex, if present.
    pub fn with_zone<R>(&self, apex: &DnsName, f: impl FnOnce(&mut Zone) -> R) -> Option<R> {
        let mut zones = self.zones.write();
        zones.get_mut(&apex.key()).map(|zone| {
            let out = f(zone);
            // The closure had `&mut Zone`: assume it mutated and drop the
            // precompiled answers (the zone's own mutators also do this,
            // but a closure can touch fields directly).
            zone.invalidate_compiled();
            out
        })
    }

    /// Run `f` over a snapshot of the zone (read-only).
    pub fn read_zone<R>(&self, apex: &DnsName, f: impl FnOnce(&Zone) -> R) -> Option<R> {
        let zones = self.zones.read();
        zones.get(&apex.key()).map(f)
    }

    /// Find the deepest zone containing `name`, returning its apex.
    pub fn find_zone_for(&self, name: &DnsName) -> Option<DnsName> {
        let zones = self.zones.read();
        let mut candidate = Some(name.clone());
        while let Some(c) = candidate {
            if zones.contains_key(&c.key()) {
                return Some(c);
            }
            candidate = c.parent();
        }
        None
    }

    /// Serve a query from the deepest matching zone's precompiled cache.
    /// `qname_key` is the lowercase dotted form [`DnsName::key`] uses as
    /// the zones-map key; the suffix walk mirrors [`ZoneSet::find_zone_for`]
    /// without materializing a `DnsName`. A miss in the deepest zone is a
    /// miss outright — shallower zones are shadowed.
    #[allow(clippy::too_many_arguments)]
    fn compiled_for(
        &self,
        qname_key: &str,
        qname_wire: &[u8],
        qtype: u16,
        qclass: u16,
        rd: bool,
        edns: bool,
        do_bit: bool,
    ) -> Option<Arc<[u8]>> {
        let zones = self.zones.read();
        let mut key = qname_key;
        loop {
            if let Some(zone) = zones.get(key) {
                return zone.compiled_lookup(qname_wire, qtype, qclass, rd, edns, do_bit);
            }
            if key == "." {
                return None;
            }
            key = match key.split_once('.') {
                Some((_, rest)) if !rest.is_empty() => rest,
                _ => ".",
            };
        }
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.zones.read().len()
    }

    /// Whether there are no zones.
    pub fn is_empty(&self) -> bool {
        self.zones.read().is_empty()
    }
}

/// An authoritative DNS server instance.
///
/// One server may serve many zones (a provider's name server), and one
/// zone may be served by many servers (possibly with *different*
/// contents when providers disagree — the §4.2.3 mixed-provider case is
/// modelled by giving each provider's servers their own `ZoneSet`).
pub struct AuthoritativeServer {
    zones: ZoneSet,
    /// Maximum CNAME chain length followed within our own zones.
    max_cname_chase: usize,
}

impl AuthoritativeServer {
    /// Create a server over a zone set.
    pub fn new(zones: ZoneSet) -> AuthoritativeServer {
        AuthoritativeServer { zones, max_cname_chase: 8 }
    }

    /// The served zone set handle.
    pub fn zones(&self) -> &ZoneSet {
        &self.zones
    }

    /// Answer a decoded query message.
    pub fn answer(&self, query: &Message) -> Message {
        let mut resp = query.response();
        resp.flags.ra = false; // authoritative servers do not recurse
        let Some(q) = query.question() else {
            resp.rcode = Rcode::FormErr;
            return resp;
        };
        let want_dnssec = query.dnssec_ok();

        let Some(apex) = self.zones.find_zone_for(&q.name) else {
            resp.rcode = Rcode::Refused;
            return resp;
        };
        resp.flags.aa = true;

        let mut current = q.name.clone();
        for _ in 0..=self.max_cname_chase {
            let outcome = self
                .zones
                .read_zone(&apex, |z| z.lookup(&current, q.qtype))
                .unwrap_or(LookupResult::NxDomain);
            match outcome {
                LookupResult::Found { records, rrsigs } => {
                    resp.answers.extend(records);
                    if want_dnssec {
                        resp.answers.extend(rrsigs);
                    }
                    return resp;
                }
                LookupResult::Cname { record, rrsigs, target } => {
                    resp.answers.push(record);
                    if want_dnssec {
                        resp.answers.extend(rrsigs);
                    }
                    // Chase within the same zone set only; out-of-zone
                    // targets are left for the resolver.
                    if target.is_subdomain_of(&apex) && q.qtype != RecordType::Cname {
                        current = target;
                        continue;
                    }
                    return resp;
                }
                LookupResult::NoData => {
                    self.attach_soa(&apex, &mut resp);
                    return resp;
                }
                LookupResult::NxDomain => {
                    resp.rcode = Rcode::NxDomain;
                    self.attach_soa(&apex, &mut resp);
                    return resp;
                }
            }
        }
        // CNAME chain exceeded the budget.
        resp.rcode = Rcode::ServFail;
        resp
    }

    fn attach_soa(&self, apex: &DnsName, resp: &mut Message) {
        if let Some(Some(soa)) = self.zones.read_zone(apex, |z| z.soa().cloned()) {
            resp.authorities.push(soa);
        }
    }

    /// Try the precompiled fast path: parse the datagram as a borrowed
    /// view, and if the query's shape is compilable, look it up in the
    /// owning zone's cache. On a hit the response is the cached bytes
    /// with only the transaction ID patched.
    fn serve_precompiled(&self, view: &MessageView<'_>) -> Option<Vec<u8>> {
        if !compilable_shape(view) {
            return None;
        }
        let q = view.question()?;
        let name = q.name();
        let mut qname_wire = Vec::with_capacity(64);
        name.write_canonical_wire(&mut qname_wire);
        let mut qname_key = String::with_capacity(qname_wire.len());
        name.write_key(&mut qname_key);
        let cached = self.zones.compiled_for(
            &qname_key,
            &qname_wire,
            q.qtype().code(),
            q.qclass().code(),
            view.flags().rd,
            view.edns().is_some(),
            view.dnssec_ok(),
        )?;
        let mut bytes = cached.to_vec();
        bytes[0..2].copy_from_slice(&view.as_bytes()[0..2]);
        Some(bytes)
    }

    /// If the decoded query is compilable, capture the owning zone's apex
    /// and cache generation *before* the answer is rendered, so a zone
    /// mutation in between makes the later insert a no-op.
    fn compile_context(&self, query: &Message) -> Option<(DnsName, u64)> {
        if query.opcode != Opcode::Query
            || query.questions.len() != 1
            || !query.answers.is_empty()
            || !query.authorities.is_empty()
            || !query.additionals.is_empty()
        {
            return None;
        }
        let q = &query.questions[0];
        if !q.name.labels().iter().all(|l| l.iter().all(|&b| plain_lowercase_byte(b))) {
            return None;
        }
        let apex = self.zones.find_zone_for(&q.name)?;
        let generation = self.zones.read_zone(&apex, |z| z.compiled_generation())?;
        Some((apex, generation))
    }

    /// Remember a rendered response in the owning zone's compiled cache.
    fn compile(&self, query: &Message, apex: &DnsName, generation: u64, wire: &[u8]) {
        let q = &query.questions[0];
        self.zones.read_zone(apex, |z| {
            z.compiled_insert(
                generation,
                &q.name.canonical_wire(),
                q.qtype.code(),
                q.qclass.code(),
                query.flags.rd,
                query.edns.is_some(),
                query.dnssec_ok(),
                wire.into(),
            );
        });
    }
}

/// Whether a query's response bytes depend only on the compiled-key
/// fields (plus the patched ID): opcode QUERY, exactly one question, no
/// records beyond an optional OPT, and a qname that round-trips through
/// the lowercase dotted zone key unchanged.
fn compilable_shape(view: &MessageView<'_>) -> bool {
    view.opcode() == Opcode::Query
        && view.question_count() == 1
        && view.answer_count() == 0
        && view.authority_count() == 0
        && view.additionals().next().is_none()
        && view.question().is_some_and(|q| plain_lowercase_name(&q.name()))
}

/// Labels restricted to the hostname-ish charset that [`DnsName::key`]
/// renders verbatim (no dots, escapes, or uppercase); anything else
/// skips the precompiled path and takes the reference path instead.
fn plain_lowercase_name(name: &NameView<'_>) -> bool {
    name.labels().all(|l| l.iter().all(|&b| plain_lowercase_byte(b)))
}

fn plain_lowercase_byte(b: u8) -> bool {
    matches!(b, b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_')
}

impl DatagramService for AuthoritativeServer {
    fn handle(&self, request: &[u8], _now: Timestamp) -> Result<Vec<u8>, NetError> {
        // Fast path: lookup + memcpy + 2-byte ID patch, no record
        // decoding or wire assembly.
        if let Ok(view) = MessageView::parse(request) {
            if let Some(bytes) = self.serve_precompiled(&view) {
                return Ok(bytes);
            }
        }
        // Reference path: full decode, answer assembly, encode. Also
        // compiles the rendered bytes so the next identical query shape
        // is served from cache.
        let query = match Message::decode(request) {
            Ok(m) => m,
            Err(_) => {
                // Unparseable datagram: a real server answers FORMERR when
                // it can extract an id; we drop, which the caller sees as
                // a reset.
                return Err(NetError::Reset);
            }
        };
        let compile_ctx = self.compile_context(&query);
        let wire = self.answer(&query).encode();
        if let Some((apex, generation)) = compile_ctx {
            self.compile(&query, &apex, generation, &wire);
        }
        Ok(wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{RData, Record, SvcbRdata};
    use dnssec::ZoneKeys;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn server_with_zone() -> AuthoritativeServer {
        let zones = ZoneSet::new();
        let mut z = Zone::new(name("a.com"));
        z.add(Record::new(name("a.com"), 300, RData::A(Ipv4Addr::new(1, 2, 3, 4))));
        z.add(Record::new(
            name("a.com"),
            300,
            RData::Https(SvcbRdata::service_self(vec![dns_wire::SvcParam::Alpn(vec![
                b"h2".to_vec()
            ])])),
        ));
        z.add(Record::new(name("www.a.com"), 300, RData::Cname(name("a.com"))));
        zones.insert(z);
        AuthoritativeServer::new(zones)
    }

    #[test]
    fn answers_https_query() {
        let s = server_with_zone();
        let q = Message::query(1, name("a.com"), RecordType::Https);
        let resp = s.answer(&q);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.flags.aa);
        assert!(!resp.flags.ra);
        assert_eq!(resp.answers_of(RecordType::Https).len(), 1);
    }

    #[test]
    fn chases_cname_in_zone() {
        let s = server_with_zone();
        let q = Message::query(2, name("www.a.com"), RecordType::A);
        let resp = s.answer(&q);
        assert_eq!(resp.answers_of(RecordType::Cname).len(), 1);
        assert_eq!(resp.answers_of(RecordType::A).len(), 1);
    }

    #[test]
    fn https_query_through_cname() {
        // The paper's scanner follows CNAME responses for HTTPS queries.
        let s = server_with_zone();
        let q = Message::query(3, name("www.a.com"), RecordType::Https);
        let resp = s.answer(&q);
        assert_eq!(resp.answers_of(RecordType::Cname).len(), 1);
        assert_eq!(resp.answers_of(RecordType::Https).len(), 1);
    }

    #[test]
    fn refused_outside_zones() {
        let s = server_with_zone();
        let q = Message::query(4, name("other.org"), RecordType::A);
        assert_eq!(s.answer(&q).rcode, Rcode::Refused);
    }

    #[test]
    fn nxdomain_with_soa() {
        let s = server_with_zone();
        let q = Message::query(5, name("missing.a.com"), RecordType::A);
        let resp = s.answer(&q);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert_eq!(resp.authorities.len(), 1);
        assert_eq!(resp.authorities[0].rtype, RecordType::Soa);
    }

    #[test]
    fn nodata_with_soa() {
        let s = server_with_zone();
        let q = Message::query(6, name("a.com"), RecordType::Aaaa);
        let resp = s.answer(&q);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities.len(), 1);
    }

    #[test]
    fn rrsigs_only_with_do_bit() {
        let s = server_with_zone();
        s.zones()
            .with_zone(&name("a.com"), |z| {
                z.enable_signing(ZoneKeys::derive(&name("a.com"), 0), 0, u32::MAX - 1)
            })
            .unwrap();
        let plain = Message::query(7, name("a.com"), RecordType::Https);
        let resp = s.answer(&plain);
        assert!(resp.answers_of(RecordType::Rrsig).is_empty());

        let signed = Message::query_dnssec(8, name("a.com"), RecordType::Https);
        let resp = s.answer(&signed);
        assert_eq!(resp.answers_of(RecordType::Rrsig).len(), 1);
    }

    #[test]
    fn wire_round_trip_through_datagram_service() {
        let s = server_with_zone();
        let q = Message::query(9, name("a.com"), RecordType::Https);
        let resp_bytes = s.handle(&q.encode(), Timestamp(0)).unwrap();
        let resp = Message::decode(&resp_bytes).unwrap();
        assert_eq!(resp.id, 9);
        assert_eq!(resp.answers_of(RecordType::Https).len(), 1);
    }

    #[test]
    fn garbage_datagram_rejected() {
        let s = server_with_zone();
        assert!(s.handle(&[0xFF; 7], Timestamp(0)).is_err());
    }

    #[test]
    fn cname_loop_servfails() {
        let zones = ZoneSet::new();
        let mut z = Zone::new(name("loop.com"));
        z.add(Record::new(name("x.loop.com"), 60, RData::Cname(name("y.loop.com"))));
        z.add(Record::new(name("y.loop.com"), 60, RData::Cname(name("x.loop.com"))));
        zones.insert(z);
        let s = AuthoritativeServer::new(zones);
        let q = Message::query(10, name("x.loop.com"), RecordType::A);
        assert_eq!(s.answer(&q).rcode, Rcode::ServFail);
    }

    #[test]
    fn zone_mutation_visible_to_server() {
        let s = server_with_zone();
        s.zones()
            .with_zone(&name("a.com"), |z| {
                z.remove(&name("a.com"), RecordType::Https);
            })
            .unwrap();
        let q = Message::query(11, name("a.com"), RecordType::Https);
        let resp = s.answer(&q);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.rcode, Rcode::NoError);
    }

    #[test]
    fn precompiled_serve_matches_reference_bytes() {
        let s = server_with_zone();
        let q = Message::query(21, name("a.com"), RecordType::Https).encode();
        let first = s.handle(&q, Timestamp(0)).unwrap(); // reference path, compiles
        let cached = s.handle(&q, Timestamp(0)).unwrap(); // precompiled path
        assert_eq!(first, cached);
        // A different ID serves the same bytes with only the ID patched.
        let q2 = Message::query(0x55AA, name("a.com"), RecordType::Https).encode();
        let served = s.handle(&q2, Timestamp(0)).unwrap();
        assert_eq!(served[0..2], 0x55AAu16.to_be_bytes());
        assert_eq!(served[2..], first[2..]);
    }

    #[test]
    fn do_bit_selects_separate_precompiled_variant() {
        let s = server_with_zone();
        s.zones()
            .with_zone(&name("a.com"), |z| {
                z.enable_signing(ZoneKeys::derive(&name("a.com"), 0), 0, u32::MAX - 1)
            })
            .unwrap();
        let plain = Message::query(31, name("a.com"), RecordType::Https).encode();
        let signed = Message::query_dnssec(31, name("a.com"), RecordType::Https).encode();
        for q in [&plain, &signed, &plain, &signed] {
            let _ = s.handle(q, Timestamp(0)).unwrap();
        }
        let plain_resp = Message::decode(&s.handle(&plain, Timestamp(0)).unwrap()).unwrap();
        assert!(plain_resp.answers_of(RecordType::Rrsig).is_empty());
        let signed_resp = Message::decode(&s.handle(&signed, Timestamp(0)).unwrap()).unwrap();
        assert_eq!(signed_resp.answers_of(RecordType::Rrsig).len(), 1);
    }

    #[test]
    fn zone_mutation_invalidates_precompiled() {
        let s = server_with_zone();
        let q = Message::query(22, name("a.com"), RecordType::Https).encode();
        let before = s.handle(&q, Timestamp(0)).unwrap();
        let _ = s.handle(&q, Timestamp(0)).unwrap(); // now served from cache
        s.zones()
            .with_zone(&name("a.com"), |z| {
                z.remove(&name("a.com"), RecordType::Https);
            })
            .unwrap();
        let after = s.handle(&q, Timestamp(0)).unwrap();
        assert_ne!(before, after);
        assert!(Message::decode(&after).unwrap().answers.is_empty());
    }

    #[test]
    fn uppercase_qname_bypasses_precompiled_and_echoes_case() {
        let s = server_with_zone();
        // Warm the cache with the lowercase shape first.
        let warm = Message::query(23, name("a.com"), RecordType::A).encode();
        let _ = s.handle(&warm, Timestamp(0)).unwrap();
        let _ = s.handle(&warm, Timestamp(0)).unwrap();
        let mixed = Message::query(24, DnsName::parse("A.com").unwrap(), RecordType::A).encode();
        let out = s.handle(&mixed, Timestamp(0)).unwrap();
        // The echoed question must keep the query's original case, which
        // the lowercase-keyed cache could not have produced.
        assert!(out.windows(6).any(|w| w == [1, b'A', 3, b'c', b'o', b'm']));
        assert_eq!(Message::decode(&out).unwrap().answers_of(RecordType::A).len(), 1);
    }

    #[test]
    fn compiled_cache_counts_entries() {
        let s = server_with_zone();
        assert_eq!(s.zones().read_zone(&name("a.com"), |z| z.compiled_len()).unwrap(), 0);
        let q = Message::query(25, name("a.com"), RecordType::A).encode();
        let _ = s.handle(&q, Timestamp(0)).unwrap();
        assert_eq!(s.zones().read_zone(&name("a.com"), |z| z.compiled_len()).unwrap(), 1);
        // Same shape again hits the cache rather than growing it.
        let _ = s.handle(&q, Timestamp(0)).unwrap();
        assert_eq!(s.zones().read_zone(&name("a.com"), |z| z.compiled_len()).unwrap(), 1);
    }

    #[test]
    fn deepest_zone_wins() {
        let zones = ZoneSet::new();
        let mut parent = Zone::new(name("com"));
        parent.add(Record::new(name("a.com"), 300, RData::Ns(name("ns1.prov.net"))));
        zones.insert(parent);
        let mut child = Zone::new(name("a.com"));
        child.add(Record::new(name("a.com"), 300, RData::A(Ipv4Addr::new(7, 7, 7, 7))));
        zones.insert(child);
        let s = AuthoritativeServer::new(zones);
        let resp = s.answer(&Message::query(12, name("a.com"), RecordType::A));
        assert_eq!(resp.answers_of(RecordType::A).len(), 1);
    }
}
