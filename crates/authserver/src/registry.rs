//! The delegation registry: which name servers (by name and IP) are
//! authoritative for which zone apex.
//!
//! This stands in for full root/TLD referral chasing: resolvers consult
//! the registry to find the NS set of the deepest enclosing zone, then
//! query those servers directly. Parent-zone information (needed for the
//! DNSSEC DS lookup) is derived by walking apex ancestors in the same
//! registry.

use dns_wire::DnsName;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

/// One authoritative name-server endpoint for a zone.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NsEndpoint {
    /// The NS host name (e.g. `amir.ns.cloudflare.com.`).
    pub name: DnsName,
    /// Its address on the simulated network.
    pub ip: IpAddr,
}

#[derive(Default)]
struct RegistryState {
    delegations: HashMap<String, Vec<NsEndpoint>>,
}

/// Shared registry of zone delegations.
#[derive(Clone, Default)]
pub struct DelegationRegistry {
    state: Arc<RwLock<RegistryState>>,
}

impl DelegationRegistry {
    /// Empty registry.
    pub fn new() -> DelegationRegistry {
        DelegationRegistry::default()
    }

    /// Set (replace) the NS endpoints for a zone apex.
    pub fn delegate(&self, apex: &DnsName, endpoints: Vec<NsEndpoint>) {
        self.state.write().delegations.insert(apex.key(), endpoints);
    }

    /// Remove a delegation entirely (the §4.2.3 "no NS records" case).
    pub fn undelegate(&self, apex: &DnsName) -> bool {
        self.state.write().delegations.remove(&apex.key()).is_some()
    }

    /// NS endpoints for exactly this apex.
    pub fn endpoints_of(&self, apex: &DnsName) -> Option<Vec<NsEndpoint>> {
        self.state.read().delegations.get(&apex.key()).cloned()
    }

    /// Find the deepest delegated zone containing `name`, returning
    /// `(zone apex, endpoints)`.
    pub fn find_authority(&self, name: &DnsName) -> Option<(DnsName, Vec<NsEndpoint>)> {
        let st = self.state.read();
        let mut candidate = Some(name.clone());
        while let Some(c) = candidate {
            if let Some(eps) = st.delegations.get(&c.key()) {
                return Some((c, eps.clone()));
            }
            candidate = c.parent();
        }
        None
    }

    /// Find the deepest delegated zone containing the name rendered as
    /// `key` (a [`DnsName::key`] string), returning the apex as a
    /// sub-slice of `key` (or `"."` for a root delegation).
    ///
    /// This is [`find_authority`](Self::find_authority) stripped to what
    /// batch partitioning needs: every ancestor of a key-rendered name is
    /// one of its dot-suffixes, so the walk borrows slices of the
    /// caller's buffer instead of allocating a candidate `String` (and
    /// cloning the endpoint set) per ancestor level.
    pub fn authority_apex_of_key<'k>(&self, key: &'k str) -> Option<&'k str> {
        let st = self.state.read();
        let mut suffix = key;
        loop {
            if st.delegations.contains_key(suffix) {
                return Some(suffix);
            }
            match suffix.split_once('.') {
                Some((_, rest)) if !rest.is_empty() => suffix = rest,
                _ => break,
            }
        }
        if key != "." && st.delegations.contains_key(".") {
            return Some(".");
        }
        None
    }

    /// Find the authority for the *parent* of `apex` — where the DS
    /// record for `apex` lives.
    pub fn find_parent_authority(&self, apex: &DnsName) -> Option<(DnsName, Vec<NsEndpoint>)> {
        self.find_authority(&apex.parent()?)
    }

    /// All delegated apexes (sorted, for deterministic iteration).
    pub fn apexes(&self) -> Vec<String> {
        let mut v: Vec<String> = self.state.read().delegations.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of delegations.
    pub fn len(&self) -> usize {
        self.state.read().delegations.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.state.read().delegations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn ep(ns: &str, ip: &str) -> NsEndpoint {
        NsEndpoint { name: name(ns), ip: ip.parse().unwrap() }
    }

    #[test]
    fn deepest_delegation_wins() {
        let reg = DelegationRegistry::new();
        reg.delegate(&DnsName::root(), vec![ep("a.root-servers.net", "198.41.0.4")]);
        reg.delegate(&name("com"), vec![ep("a.gtld-servers.net", "192.5.6.30")]);
        reg.delegate(&name("a.com"), vec![ep("ns1.cloudflare.com", "173.245.58.1")]);

        let (apex, eps) = reg.find_authority(&name("www.a.com")).unwrap();
        assert_eq!(apex, name("a.com"));
        assert_eq!(eps.len(), 1);

        let (apex, _) = reg.find_authority(&name("b.com")).unwrap();
        assert_eq!(apex, name("com"));

        let (apex, _) = reg.find_authority(&name("x.org")).unwrap();
        assert_eq!(apex, DnsName::root());
    }

    #[test]
    fn apex_of_key_agrees_with_find_authority() {
        let reg = DelegationRegistry::new();
        reg.delegate(&DnsName::root(), vec![ep("a.root-servers.net", "198.41.0.4")]);
        reg.delegate(&name("com"), vec![ep("a.gtld-servers.net", "192.5.6.30")]);
        reg.delegate(&name("a.com"), vec![ep("ns1.cloudflare.com", "173.245.58.1")]);

        for n in ["www.a.com", "a.com", "b.com", "x.org", "."] {
            let key = name(n).key();
            let borrowed = reg.authority_apex_of_key(&key);
            let owned = reg.find_authority(&name(n)).map(|(apex, _)| apex.key());
            assert_eq!(borrowed.map(str::to_string), owned, "name {n}");
        }

        let empty = DelegationRegistry::new();
        assert_eq!(empty.authority_apex_of_key("www.a.com"), None);
        assert_eq!(empty.authority_apex_of_key("."), None);
    }

    #[test]
    fn parent_authority_for_ds() {
        let reg = DelegationRegistry::new();
        reg.delegate(&DnsName::root(), vec![ep("a.root-servers.net", "198.41.0.4")]);
        reg.delegate(&name("com"), vec![ep("a.gtld-servers.net", "192.5.6.30")]);
        reg.delegate(&name("a.com"), vec![ep("ns1.cloudflare.com", "173.245.58.1")]);

        let (apex, _) = reg.find_parent_authority(&name("a.com")).unwrap();
        assert_eq!(apex, name("com"));
        let (apex, _) = reg.find_parent_authority(&name("com")).unwrap();
        assert_eq!(apex, DnsName::root());
        assert!(reg.find_parent_authority(&DnsName::root()).is_none());
    }

    #[test]
    fn undelegate_removes() {
        let reg = DelegationRegistry::new();
        reg.delegate(&name("a.com"), vec![ep("ns1.x.net", "1.1.1.1")]);
        assert!(reg.undelegate(&name("a.com")));
        assert!(!reg.undelegate(&name("a.com")));
        assert!(reg.find_authority(&name("a.com")).is_none());
    }

    #[test]
    fn multiple_endpoints_preserved_in_order() {
        let reg = DelegationRegistry::new();
        let eps = vec![ep("ns1.x.net", "1.1.1.1"), ep("ns2.y.net", "2.2.2.2")];
        reg.delegate(&name("a.com"), eps.clone());
        assert_eq!(reg.endpoints_of(&name("a.com")).unwrap(), eps);
        assert_eq!(reg.len(), 1);
    }
}
