//! RRset signing: canonical signing bytes, RRSIG generation, and zone
//! key material (DNSKEY + parent-side DS).

use dns_wire::record::{DnskeyRdata, DsRdata, RrsigRdata};
use dns_wire::wire::WireWriter;
use dns_wire::{DnsName, RData, Record, RecordType};
use simcrypto::{SimKeyPair, SimPublicKey};

/// Private algorithm number used for the simulated scheme (PRIVATEDNS).
pub const SIM_ALGORITHM: u8 = 253;
/// Private digest-type number for simulated DS digests.
pub const SIM_DIGEST_TYPE: u8 = 253;

/// Key material for a signed zone: one zone-signing key used both as ZSK
/// and KSK (single-key zones keep the simulation simple; the chain logic
/// is unchanged).
#[derive(Debug, Clone)]
pub struct ZoneKeys {
    /// The zone apex these keys sign for.
    pub apex: DnsName,
    key: SimKeyPair,
}

impl ZoneKeys {
    /// Deterministically derive keys for a zone (same apex+generation →
    /// same key; bump `generation` to roll the key).
    pub fn derive(apex: &DnsName, generation: u32) -> ZoneKeys {
        let label = format!("zonekey:{}:{generation}", apex.key());
        ZoneKeys { apex: apex.clone(), key: SimKeyPair::derive(&label) }
    }

    /// The public half.
    pub fn public(&self) -> SimPublicKey {
        self.key.public()
    }

    /// The DNSKEY record to publish at the zone apex.
    pub fn dnskey_record(&self, ttl: u32) -> Record {
        Record::new(self.apex.clone(), ttl, RData::Dnskey(self.dnskey_rdata()))
    }

    /// The DNSKEY RDATA (flags 257: zone key + SEP).
    pub fn dnskey_rdata(&self) -> DnskeyRdata {
        DnskeyRdata {
            flags: 257,
            protocol: 3,
            algorithm: SIM_ALGORITHM,
            public_key: self.key.public().to_bytes(),
        }
    }

    /// The key tag of the published DNSKEY.
    pub fn key_tag(&self) -> u16 {
        self.dnskey_rdata().key_tag()
    }

    /// The DS record the *parent* zone should publish for this zone.
    /// A registrar/operator mismatch in the ecosystem model simply omits
    /// this record, yielding the Insecure state.
    pub fn ds_record(&self, ttl: u32) -> Record {
        let dnskey = self.dnskey_rdata();
        let mut w = WireWriter::new();
        w.put_name_uncompressed(&self.apex);
        let mut rdw = WireWriter::new();
        RData::Dnskey(dnskey.clone()).encode(&mut rdw);
        w.put_bytes(rdw.as_bytes());
        let digest = simcrypto::unkeyed_digest(w.as_bytes()).to_vec();
        Record::new(
            self.apex.clone(),
            ttl,
            RData::Ds(DsRdata {
                key_tag: dnskey.key_tag(),
                algorithm: SIM_ALGORITHM,
                digest_type: SIM_DIGEST_TYPE,
                digest,
            }),
        )
    }

    /// Sign an RRset, producing its RRSIG record. All records must share
    /// owner name, type, and TTL.
    pub fn sign(&self, rrset: &[Record], inception: u32, expiration: u32) -> Record {
        sign_rrset(&self.key, &self.apex, rrset, inception, expiration)
    }
}

/// Compute the canonical bytes an RRSIG covers (RFC 4034 §3.1.8.1,
/// simplified: RRSIG-RDATA-minus-signature || canonical RRset).
pub fn rrset_signing_bytes(sig_template: &RrsigRdata, rrset: &[Record]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u16(sig_template.type_covered.code());
    w.put_u8(sig_template.algorithm);
    w.put_u8(sig_template.labels);
    w.put_u32(sig_template.original_ttl);
    w.put_u32(sig_template.expiration);
    w.put_u32(sig_template.inception);
    w.put_u16(sig_template.key_tag);
    w.put_name_uncompressed(&sig_template.signer);

    // Canonical RRset: sort by RDATA wire form; lowercase owner.
    let mut rdatas: Vec<Vec<u8>> = rrset
        .iter()
        .map(|r| {
            let mut rw = WireWriter::new();
            r.rdata.encode(&mut rw);
            rw.into_bytes()
        })
        .collect();
    rdatas.sort();
    for (i, rdata) in rdatas.iter().enumerate() {
        let owner =
            rrset.get(i.min(rrset.len() - 1)).map(|r| r.name.canonical_wire()).unwrap_or_default();
        // Owner is identical across the set; use the canonical form.
        w.put_bytes(&owner);
        w.put_u16(sig_template.type_covered.code());
        w.put_u16(1); // class IN
        w.put_u32(sig_template.original_ttl);
        w.put_u16(rdata.len() as u16);
        w.put_bytes(rdata);
    }
    w.into_bytes()
}

/// Sign an RRset with an arbitrary key (used directly by tests that need
/// a *wrong* key; production code goes through [`ZoneKeys::sign`]).
pub fn sign_rrset(
    key: &SimKeyPair,
    signer: &DnsName,
    rrset: &[Record],
    inception: u32,
    expiration: u32,
) -> Record {
    assert!(!rrset.is_empty(), "cannot sign an empty RRset");
    let first = &rrset[0];
    debug_assert!(rrset.iter().all(|r| r.name == first.name && r.rtype == first.rtype));
    let dnskey = DnskeyRdata {
        flags: 257,
        protocol: 3,
        algorithm: SIM_ALGORITHM,
        public_key: key.public().to_bytes(),
    };
    let template = RrsigRdata {
        type_covered: first.rtype,
        algorithm: SIM_ALGORITHM,
        labels: first.name.label_count() as u8,
        original_ttl: first.ttl,
        expiration,
        inception,
        key_tag: dnskey.key_tag(),
        signer: signer.clone(),
        signature: Vec::new(),
    };
    let bytes = rrset_signing_bytes(&template, rrset);
    let sig = key.sign(&bytes);
    let mut rdata = template;
    rdata.signature = sig.0.to_vec();
    Record::with_type(first.name.clone(), RecordType::Rrsig, first.ttl, RData::Rrsig(rdata))
}

/// Verify an RRSIG over an RRset with a DNSKEY. Checks algorithm, key
/// tag, signer, validity window, and the signature itself.
pub fn verify_rrsig(sig: &RrsigRdata, rrset: &[Record], dnskey: &DnskeyRdata, now: u32) -> bool {
    if rrset.is_empty()
        || sig.algorithm != SIM_ALGORITHM
        || dnskey.algorithm != SIM_ALGORITHM
        || sig.key_tag != dnskey.key_tag()
        || now < sig.inception
        || now > sig.expiration
    {
        return false;
    }
    let Some(pk) = SimPublicKey::from_bytes(&dnskey.public_key) else {
        return false;
    };
    let mut template = sig.clone();
    let signature = std::mem::take(&mut template.signature);
    if signature.len() != 16 {
        return false;
    }
    let bytes = rrset_signing_bytes(&template, rrset);
    let mut sig_arr = [0u8; 16];
    sig_arr.copy_from_slice(&signature);
    pk.verify(&bytes, &simcrypto::Signature(sig_arr))
}

/// Check a DS record against a child DNSKEY (digest match).
pub fn ds_matches_dnskey(ds: &DsRdata, owner: &DnsName, dnskey: &DnskeyRdata) -> bool {
    if ds.algorithm != SIM_ALGORITHM
        || ds.digest_type != SIM_DIGEST_TYPE
        || ds.key_tag != dnskey.key_tag()
    {
        return false;
    }
    let mut w = WireWriter::new();
    w.put_name_uncompressed(owner);
    let mut rdw = WireWriter::new();
    RData::Dnskey(dnskey.clone()).encode(&mut rdw);
    w.put_bytes(rdw.as_bytes());
    simcrypto::unkeyed_digest(w.as_bytes()).to_vec() == ds.digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn a_rrset() -> Vec<Record> {
        vec![
            Record::new(name("a.com"), 300, RData::A(Ipv4Addr::new(1, 2, 3, 4))),
            Record::new(name("a.com"), 300, RData::A(Ipv4Addr::new(5, 6, 7, 8))),
        ]
    }

    fn rrsig_of(rec: &Record) -> &RrsigRdata {
        match &rec.rdata {
            RData::Rrsig(s) => s,
            other => panic!("expected RRSIG, got {other:?}"),
        }
    }

    #[test]
    fn sign_then_verify() {
        let keys = ZoneKeys::derive(&name("a.com"), 0);
        let rrset = a_rrset();
        let sig = keys.sign(&rrset, 100, 10_000);
        assert!(verify_rrsig(rrsig_of(&sig), &rrset, &keys.dnskey_rdata(), 5_000));
    }

    #[test]
    fn verification_fails_outside_validity_window() {
        let keys = ZoneKeys::derive(&name("a.com"), 0);
        let rrset = a_rrset();
        let sig = keys.sign(&rrset, 100, 10_000);
        assert!(!verify_rrsig(rrsig_of(&sig), &rrset, &keys.dnskey_rdata(), 50));
        assert!(!verify_rrsig(rrsig_of(&sig), &rrset, &keys.dnskey_rdata(), 10_001));
    }

    #[test]
    fn verification_fails_on_tampered_rrset() {
        let keys = ZoneKeys::derive(&name("a.com"), 0);
        let rrset = a_rrset();
        let sig = keys.sign(&rrset, 0, u32::MAX);
        let mut tampered = rrset.clone();
        tampered[0].rdata = RData::A(Ipv4Addr::new(6, 6, 6, 6));
        assert!(!verify_rrsig(rrsig_of(&sig), &tampered, &keys.dnskey_rdata(), 1));
    }

    #[test]
    fn verification_fails_with_rotated_key() {
        let gen0 = ZoneKeys::derive(&name("a.com"), 0);
        let gen1 = ZoneKeys::derive(&name("a.com"), 1);
        let rrset = a_rrset();
        let sig = gen0.sign(&rrset, 0, u32::MAX);
        assert!(!verify_rrsig(rrsig_of(&sig), &rrset, &gen1.dnskey_rdata(), 1));
    }

    #[test]
    fn rrset_order_does_not_matter() {
        let keys = ZoneKeys::derive(&name("a.com"), 0);
        let rrset = a_rrset();
        let mut reversed = rrset.clone();
        reversed.reverse();
        let sig = keys.sign(&rrset, 0, u32::MAX);
        assert!(verify_rrsig(rrsig_of(&sig), &reversed, &keys.dnskey_rdata(), 1));
    }

    #[test]
    fn ds_matches_only_its_key() {
        let keys = ZoneKeys::derive(&name("a.com"), 0);
        let other = ZoneKeys::derive(&name("a.com"), 1);
        let ds_rec = keys.ds_record(300);
        let ds = match &ds_rec.rdata {
            RData::Ds(d) => d.clone(),
            other => panic!("expected DS, got {other:?}"),
        };
        assert!(ds_matches_dnskey(&ds, &name("a.com"), &keys.dnskey_rdata()));
        assert!(!ds_matches_dnskey(&ds, &name("a.com"), &other.dnskey_rdata()));
        assert!(!ds_matches_dnskey(&ds, &name("b.com"), &keys.dnskey_rdata()));
    }

    #[test]
    fn owner_name_case_does_not_matter() {
        let keys = ZoneKeys::derive(&name("a.com"), 0);
        let rrset = a_rrset();
        let sig = keys.sign(&rrset, 0, u32::MAX);
        let mut upper = rrset.clone();
        for r in &mut upper {
            r.name = name("A.COM");
        }
        assert!(verify_rrsig(rrsig_of(&sig), &upper, &keys.dnskey_rdata(), 1));
    }

    #[test]
    fn dnskey_flags_and_tag() {
        let keys = ZoneKeys::derive(&name("example.org"), 3);
        let rd = keys.dnskey_rdata();
        assert!(rd.is_zone_key());
        assert!(rd.is_sep());
        assert_eq!(rd.algorithm, SIM_ALGORITHM);
        assert_eq!(keys.key_tag(), rd.key_tag());
    }
}
