//! Chain-of-trust validation: walk DS→DNSKEY links from a trust anchor
//! down to the zone that signed an RRset, then verify the RRSIG.

use crate::signer::{ds_matches_dnskey, verify_rrsig};
use dns_wire::record::{DnskeyRdata, DsRdata, RrsigRdata};
use dns_wire::{DnsName, RData, Record};
use std::collections::HashSet;

/// Validation outcome for an RRset, matching RFC 4035 terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationState {
    /// Unbroken chain from the trust anchor; the AD bit may be set.
    Secure,
    /// A zone cut without a DS record breaks the chain: the data is not
    /// protected but not provably bad (the paper's "insecure" bucket).
    Insecure,
    /// Signatures/digests exist but fail: tampering or misconfiguration.
    Bogus,
    /// The RRset carries no signature at all.
    Unsigned,
}

impl std::fmt::Display for ValidationState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationState::Secure => write!(f, "secure"),
            ValidationState::Insecure => write!(f, "insecure"),
            ValidationState::Bogus => write!(f, "bogus"),
            ValidationState::Unsigned => write!(f, "unsigned"),
        }
    }
}

/// Supplies DNSSEC records on demand during a chain walk. Implemented by
/// the recursive resolver (which fetches them over the simulated network)
/// and by in-memory fixtures in tests.
pub trait ChainSource {
    /// DNSKEY RRset of a zone apex, with its RRSIGs, if the zone is signed.
    fn dnskeys(&mut self, zone: &DnsName) -> Option<(Vec<DnskeyRdata>, Vec<RrsigRdata>)>;
    /// DS RRset for `zone` as published in its *parent* zone.
    fn ds_set(&mut self, zone: &DnsName) -> Option<Vec<DsRdata>>;
}

/// A DNSSEC validator rooted at a trust anchor.
pub struct Validator {
    /// Zones whose keys are trusted axiomatically (normally just the root).
    trust_anchors: HashSet<DnsName>,
}

impl Validator {
    /// Validator trusting the root zone.
    pub fn new() -> Validator {
        let mut trust_anchors = HashSet::new();
        trust_anchors.insert(DnsName::root());
        Validator { trust_anchors }
    }

    /// Add an additional trust anchor (for closed-world tests).
    pub fn add_anchor(&mut self, zone: DnsName) {
        self.trust_anchors.insert(zone);
    }

    /// Validate an RRset with its RRSIGs at time `now`.
    ///
    /// `source` provides DNSKEY/DS lookups. The walk starts at the
    /// signer's zone and climbs toward a trust anchor, requiring each
    /// zone's DNSKEY to be endorsed by a DS in its parent, and each DS /
    /// DNSKEY RRset itself to be signed.
    pub fn validate(
        &self,
        rrset: &[Record],
        rrsigs: &[RrsigRdata],
        source: &mut dyn ChainSource,
        now: u32,
    ) -> ValidationState {
        if rrset.is_empty() {
            return ValidationState::Unsigned;
        }
        let covering: Vec<&RrsigRdata> =
            rrsigs.iter().filter(|s| s.type_covered == rrset[0].rtype).collect();
        if covering.is_empty() {
            return ValidationState::Unsigned;
        }

        for sig in covering {
            match self.validate_with_sig(rrset, sig, source, now) {
                ValidationState::Secure => return ValidationState::Secure,
                ValidationState::Insecure => return ValidationState::Insecure,
                _ => continue,
            }
        }
        ValidationState::Bogus
    }

    fn validate_with_sig(
        &self,
        rrset: &[Record],
        sig: &RrsigRdata,
        source: &mut dyn ChainSource,
        now: u32,
    ) -> ValidationState {
        let zone = &sig.signer;
        // The owner must be within the signer's zone.
        if !rrset[0].name.is_subdomain_of(zone) {
            return ValidationState::Bogus;
        }
        let Some((keys, key_sigs)) = source.dnskeys(zone) else {
            return ValidationState::Insecure;
        };
        // Find a key that verifies the RRset signature.
        let Some(signing_key) = keys.iter().find(|k| verify_rrsig(sig, rrset, k, now)) else {
            return ValidationState::Bogus;
        };
        // The DNSKEY RRset itself must be signed by one of its keys
        // (self-signed apex keyset), unless the zone is a trust anchor.
        if self.trust_anchors.contains(zone) {
            return ValidationState::Secure;
        }
        let dnskey_rrset: Vec<Record> = keys
            .iter()
            .map(|k| Record::new(zone.clone(), sig.original_ttl, RData::Dnskey(k.clone())))
            .collect();
        let keyset_ok = key_sigs.iter().any(|ks| {
            ks.type_covered == dns_wire::RecordType::Dnskey
                && keys.iter().any(|k| verify_rrsig(ks, &dnskey_rrset, k, now))
        });
        if !keyset_ok {
            return ValidationState::Bogus;
        }
        // Climb: the parent must endorse this zone's key via DS.
        let Some(ds_set) = source.ds_set(zone) else {
            // Signed zone, no DS uploaded: the paper's "insecure" case.
            return ValidationState::Insecure;
        };
        if !ds_set.iter().any(|ds| ds_matches_dnskey(ds, zone, signing_key)) {
            return ValidationState::Bogus;
        }
        // Recurse up to the parent zone: the DS RRset lives in the parent
        // and must itself be validated. We model parent endorsement by
        // walking the ancestor chain of zone apexes.
        let mut current = zone.clone();
        loop {
            let Some(parent) = self.enclosing_zone(&current, source) else {
                return ValidationState::Insecure;
            };
            if self.trust_anchors.contains(&parent) {
                return ValidationState::Secure;
            }
            // Parent must be a signed zone endorsed by *its* parent.
            let Some((pkeys, _)) = source.dnskeys(&parent) else {
                return ValidationState::Insecure;
            };
            let Some(pds) = source.ds_set(&parent) else {
                return ValidationState::Insecure;
            };
            if !pds.iter().any(|ds| pkeys.iter().any(|k| ds_matches_dnskey(ds, &parent, k))) {
                return ValidationState::Bogus;
            }
            current = parent;
        }
    }

    /// The nearest enclosing zone apex above `zone` that publishes keys,
    /// or the root.
    fn enclosing_zone(&self, zone: &DnsName, source: &mut dyn ChainSource) -> Option<DnsName> {
        let mut candidate = zone.parent()?;
        loop {
            if candidate.is_root() || self.trust_anchors.contains(&candidate) {
                return Some(candidate);
            }
            if source.dnskeys(&candidate).is_some() {
                return Some(candidate);
            }
            candidate = candidate.parent()?;
        }
    }
}

impl Default for Validator {
    fn default() -> Self {
        Validator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::ZoneKeys;
    use dns_wire::RecordType;
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    /// In-memory fixture: a hierarchy of signed zones with optional DS.
    #[derive(Default)]
    struct Fixture {
        keys: HashMap<DnsName, ZoneKeys>,
        ds: HashMap<DnsName, Vec<DsRdata>>,
    }

    impl Fixture {
        /// Create a signed zone; `link_ds=false` models the missing-DS
        /// registrar problem.
        fn add_zone(&mut self, apex: &str, link_ds: bool) {
            let apex = name(apex);
            let keys = ZoneKeys::derive(&apex, 0);
            if link_ds {
                let ds = match keys.ds_record(300).rdata {
                    RData::Ds(d) => d,
                    _ => unreachable!(),
                };
                self.ds.insert(apex.clone(), vec![ds]);
            }
            self.keys.insert(apex, keys);
        }

        fn sign(&self, zone: &str, rrset: &[Record]) -> Vec<RrsigRdata> {
            let sig = self.keys[&name(zone)].sign(rrset, 0, u32::MAX - 1);
            match sig.rdata {
                RData::Rrsig(s) => vec![s],
                _ => unreachable!(),
            }
        }
    }

    impl ChainSource for Fixture {
        fn dnskeys(&mut self, zone: &DnsName) -> Option<(Vec<DnskeyRdata>, Vec<RrsigRdata>)> {
            let keys = self.keys.get(zone)?;
            let rdata = keys.dnskey_rdata();
            let rrset = vec![keys.dnskey_record(300)];
            let sig = keys.sign(&rrset, 0, u32::MAX - 1);
            let sig_rdata = match sig.rdata {
                RData::Rrsig(s) => s,
                _ => unreachable!(),
            };
            Some((vec![rdata], vec![sig_rdata]))
        }

        fn ds_set(&mut self, zone: &DnsName) -> Option<Vec<DsRdata>> {
            self.ds.get(zone).cloned()
        }
    }

    fn https_rrset() -> Vec<Record> {
        use dns_wire::SvcbRdata;
        vec![Record::new(
            name("a.com"),
            300,
            RData::Https(SvcbRdata::service_self(vec![dns_wire::SvcParam::Alpn(vec![
                b"h2".to_vec()
            ])])),
        )]
    }

    fn full_chain_fixture(link_child_ds: bool) -> Fixture {
        let mut fx = Fixture::default();
        fx.add_zone("com", true);
        fx.add_zone("a.com", link_child_ds);
        fx
    }

    #[test]
    fn secure_chain_validates() {
        let mut fx = full_chain_fixture(true);
        let rrset = https_rrset();
        let sigs = fx.sign("a.com", &rrset);
        let v = Validator::new();
        assert_eq!(v.validate(&rrset, &sigs, &mut fx, 100), ValidationState::Secure);
    }

    #[test]
    fn missing_ds_is_insecure() {
        // The paper's headline DNSSEC finding: signed HTTPS records whose
        // zones never uploaded DS → insecure (49.4% of signed, Table 9).
        let mut fx = full_chain_fixture(false);
        let rrset = https_rrset();
        let sigs = fx.sign("a.com", &rrset);
        let v = Validator::new();
        assert_eq!(v.validate(&rrset, &sigs, &mut fx, 100), ValidationState::Insecure);
    }

    #[test]
    fn no_rrsig_is_unsigned() {
        let mut fx = full_chain_fixture(true);
        let rrset = https_rrset();
        let v = Validator::new();
        assert_eq!(v.validate(&rrset, &[], &mut fx, 100), ValidationState::Unsigned);
    }

    #[test]
    fn tampered_rrset_is_bogus() {
        let mut fx = full_chain_fixture(true);
        let mut rrset = https_rrset();
        let sigs = fx.sign("a.com", &rrset);
        rrset[0].rdata = RData::A(Ipv4Addr::new(6, 6, 6, 6));
        // Type changed → sig no longer covers; rebuild as same-type tamper:
        let mut rrset2 = https_rrset();
        rrset2[0].ttl = 300;
        if let RData::Https(rd) = &mut rrset2[0].rdata {
            rd.priority = 2;
        }
        let v = Validator::new();
        assert_eq!(v.validate(&rrset2, &sigs, &mut fx, 100), ValidationState::Bogus);
    }

    #[test]
    fn expired_signature_is_bogus() {
        let mut fx = full_chain_fixture(true);
        let rrset = https_rrset();
        let sig = fx.keys[&name("a.com")].sign(&rrset, 0, 50);
        let sigs = match sig.rdata {
            RData::Rrsig(s) => vec![s],
            _ => unreachable!(),
        };
        let v = Validator::new();
        assert_eq!(v.validate(&rrset, &sigs, &mut fx, 100), ValidationState::Bogus);
    }

    #[test]
    fn wrong_key_ds_is_bogus() {
        let mut fx = full_chain_fixture(true);
        // Replace the child DS with one derived from a different key.
        let rogue = ZoneKeys::derive(&name("a.com"), 99);
        let ds = match rogue.ds_record(300).rdata {
            RData::Ds(d) => d,
            _ => unreachable!(),
        };
        fx.ds.insert(name("a.com"), vec![ds]);
        let rrset = https_rrset();
        let sigs = fx.sign("a.com", &rrset);
        let v = Validator::new();
        assert_eq!(v.validate(&rrset, &sigs, &mut fx, 100), ValidationState::Bogus);
    }

    #[test]
    fn unsigned_parent_breaks_chain_to_insecure() {
        let mut fx = Fixture::default();
        // a.com is signed and has DS, but "com" has keys with no DS of its
        // own, and com's parent (root) is the anchor. Walk: a.com secure
        // requires com endorsement... com has no DS → insecure.
        fx.add_zone("com", false);
        fx.add_zone("a.com", true);
        let rrset = https_rrset();
        let sigs = fx.sign("a.com", &rrset);
        let v = Validator::new();
        assert_eq!(v.validate(&rrset, &sigs, &mut fx, 100), ValidationState::Insecure);
    }

    #[test]
    fn sig_from_unrelated_zone_is_bogus() {
        let mut fx = full_chain_fixture(true);
        fx.add_zone("evil.org", true);
        let rrset = https_rrset(); // owner a.com
        let sigs = fx.sign("evil.org", &rrset);
        let v = Validator::new();
        assert_eq!(v.validate(&rrset, &sigs, &mut fx, 100), ValidationState::Bogus);
    }

    #[test]
    fn trust_anchor_shortcut() {
        // Anchoring a.com directly makes the chain trivially secure even
        // without com/root involvement.
        let mut fx = Fixture::default();
        fx.add_zone("a.com", false);
        let rrset = https_rrset();
        let sigs = fx.sign("a.com", &rrset);
        let mut v = Validator::new();
        v.add_anchor(name("a.com"));
        assert_eq!(v.validate(&rrset, &sigs, &mut fx, 100), ValidationState::Secure);
    }

    #[test]
    fn sig_covering_wrong_type_is_unsigned() {
        let mut fx = full_chain_fixture(true);
        let a_rrset = vec![Record::new(name("a.com"), 300, RData::A(Ipv4Addr::new(1, 1, 1, 1)))];
        let sigs = fx.sign("a.com", &a_rrset);
        let https = https_rrset();
        let v = Validator::new();
        // RRSIG covers A, not HTTPS.
        assert_eq!(v.validate(&https, &sigs, &mut fx, 100), ValidationState::Unsigned);
        assert_eq!(sigs[0].type_covered, RecordType::A);
    }
}
