//! # dnssec
//!
//! Zone signing and chain-of-trust validation over [`simcrypto`]'s
//! simulated keys. The record formats are the real RFC 4034 ones (from
//! `dns-wire`); only the signature algorithm is simulated, registered
//! under algorithm number 253 (`PRIVATEDNS`).
//!
//! The validation states mirror RFC 4035 and the paper's §4.5 analysis:
//!
//! * **Secure** — an unbroken DS→DNSKEY→RRSIG chain from the trust anchor.
//! * **Insecure** — the zone is signed but its parent has no DS record
//!   (the paper's dominant failure: third-party DNS operators whose
//!   customers never upload DS records to the registrar, §4.5.1/App. G).
//! * **Bogus** — a signature or digest exists but fails verification
//!   (tampering, expired signature, wrong key).
//! * **Unsigned** — no RRSIG at all.

#![warn(missing_docs)]

pub mod chain;
pub mod signer;

pub use chain::{ChainSource, ValidationState, Validator};
pub use signer::{rrset_signing_bytes, sign_rrset, ZoneKeys, SIM_ALGORITHM, SIM_DIGEST_TYPE};
