//! The navigation engine: drives one URL load through DNS (HTTPS, A and
//! AAAA queries via the shared [`QueryEngine`]), HTTPS-RR
//! interpretation, TLS (optionally with ECH), and the profile's failover
//! behaviours, producing a typed event trace that the testbed asserts
//! on.

use crate::profile::{BrowserProfile, IpFallback, MalformedEchBehavior};
use dns_wire::{DnsName, RData, Record, RecordType, SvcbRdata};
use netsim::Network;
use resolver::QueryEngine;
use std::net::IpAddr;
use tlsech::{AlertCause, ClientHello, EchConfigList, EchExtension, InnerHello, ServerResponse};

/// URL form entered by the user (the three §5.1 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UrlScheme {
    /// `example.com` typed bare into the address bar.
    Bare,
    /// `http://example.com`.
    Http,
    /// `https://example.com`.
    Https,
}

/// One observable step of a navigation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NavEvent {
    /// A DNS query was issued.
    DnsQuery {
        /// Queried name.
        name: String,
        /// Queried type.
        qtype: RecordType,
    },
    /// A TLS connection attempt.
    TlsAttempt {
        /// Destination address.
        ip: IpAddr,
        /// Destination port.
        port: u16,
        /// Outer SNI sent.
        sni: String,
        /// Whether an ECH extension was attached.
        ech: bool,
        /// ALPN protocols offered.
        alpn: Vec<String>,
    },
    /// A plaintext HTTP connection attempt.
    HttpAttempt {
        /// Destination address.
        ip: IpAddr,
        /// Destination port (80).
        port: u16,
    },
    /// A failover action taken by the browser.
    Fallback(&'static str),
    /// The browser accepted server-provided ECH retry configs.
    EchRetry,
    /// Firefox's compatibility h2 attempt after an h3-only connection.
    H2CompatAttempt,
}

/// Why a navigation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureReason {
    /// No usable IP address for the intended endpoint.
    NoAddress,
    /// All connection attempts failed at the network layer.
    ConnectFailed,
    /// The presented certificate did not cover the expected name
    /// (includes `ERR_ECH_FALLBACK_CERTIFICATE_INVALID`).
    CertificateInvalid,
    /// Hard failure on an unparsable ECH configuration.
    MalformedEch,
    /// TLS alert from the server (ALPN mismatch etc.).
    TlsAlert,
    /// DNS resolution failed outright.
    DnsFailure,
}

/// Final outcome of a navigation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Connected over plaintext HTTP (port 80).
    HttpOk {
        /// Address connected to.
        ip: IpAddr,
    },
    /// TLS session established.
    HttpsOk {
        /// Address connected to.
        ip: IpAddr,
        /// Port connected to.
        port: u16,
        /// Negotiated ALPN protocol (None = HTTP/1.1 without ALPN).
        alpn: Option<String>,
        /// Whether the session used (accepted) ECH.
        used_ech: bool,
    },
    /// Navigation failed.
    Failed(FailureReason),
}

/// The result of a navigation: outcome plus the full event trace.
#[derive(Debug, Clone)]
pub struct Navigation {
    /// Final outcome.
    pub outcome: Outcome,
    /// Ordered observable events.
    pub events: Vec<NavEvent>,
}

impl Navigation {
    /// Whether an HTTPS-type DNS query was issued.
    pub fn queried_https_rr(&self) -> bool {
        self.events.iter().any(|e| matches!(e, NavEvent::DnsQuery { qtype: RecordType::Https, .. }))
    }

    /// Whether any TLS attempt carried ECH.
    pub fn attempted_ech(&self) -> bool {
        self.events.iter().any(|e| matches!(e, NavEvent::TlsAttempt { ech: true, .. }))
    }

    /// The ports of all TLS attempts, in order.
    pub fn tls_ports(&self) -> Vec<u16> {
        self.events
            .iter()
            .filter_map(|e| match e {
                NavEvent::TlsAttempt { port, .. } => Some(*port),
                _ => None,
            })
            .collect()
    }

    /// The IPs of all TLS attempts, in order.
    pub fn tls_ips(&self) -> Vec<IpAddr> {
        self.events
            .iter()
            .filter_map(|e| match e {
                NavEvent::TlsAttempt { ip, .. } => Some(*ip),
                _ => None,
            })
            .collect()
    }
}

/// A browser instance resolving through a [`QueryEngine`] and connecting
/// over the engine's simulated network.
pub struct Browser {
    profile: BrowserProfile,
    engine: QueryEngine,
    /// The advertised address of the configured recursive resolver. DNS
    /// semantics come from the engine, but the stub-to-recursive hop is
    /// still subject to this address's reachability (so tests can
    /// blackhole the resolver).
    resolver_ip: IpAddr,
}

impl Browser {
    /// Create a browser resolving through `engine`, whose recursive
    /// resolver is advertised at `resolver_ip:53`.
    pub fn new(profile: BrowserProfile, engine: QueryEngine, resolver_ip: IpAddr) -> Browser {
        Browser { profile, engine, resolver_ip }
    }

    /// The profile in use.
    pub fn profile(&self) -> &BrowserProfile {
        &self.profile
    }

    fn network(&self) -> &Network {
        self.engine.network()
    }

    /// Load `host` with the given URL form.
    pub fn navigate(&self, host: &str, scheme: UrlScheme) -> Navigation {
        let mut events = Vec::new();
        let outcome = self.navigate_inner(host, scheme, &mut events);
        Navigation { outcome, events }
    }

    fn navigate_inner(&self, host: &str, scheme: UrlScheme, events: &mut Vec<NavEvent>) -> Outcome {
        let Ok(host_name) = DnsName::parse(host) else {
            return Outcome::Failed(FailureReason::DnsFailure);
        };

        // 1. DNS: browsers race HTTPS, A and AAAA queries for every URL
        // form (v4 preferred among the candidates, v6 appended).
        let https_answers = if self.profile.queries_https_rr {
            self.dns_query(&host_name, RecordType::Https, events)
        } else {
            Vec::new()
        };
        let host_ips = self.resolve_addrs(&host_name, events);

        let mut https_record = select_https_record(&https_answers);
        if let Some(rd) = https_record {
            if self.profile.ignores_record_without_alpn && !rd.is_alias() && rd.alpn_ids().is_none()
            {
                https_record = None;
            }
        }

        // 2. Scheme decision.
        let go_https = match scheme {
            UrlScheme::Https => true,
            UrlScheme::Bare | UrlScheme::Http => {
                https_record.is_some() && self.profile.upgrades_on_https_rr
            }
        };
        if !go_https {
            // Plaintext HTTP to the A-record address.
            let Some(ip) = host_ips.first().copied() else {
                return Outcome::Failed(FailureReason::NoAddress);
            };
            events.push(NavEvent::HttpAttempt { ip, port: 80 });
            return match self.network().stream_exchange(ip, 80, b"GET / HTTP/1.1\r\n\r\n") {
                Ok(_) => Outcome::HttpOk { ip },
                Err(_) => Outcome::Failed(FailureReason::ConnectFailed),
            };
        }

        // 3. HTTPS path.
        let Some(record) = https_record else {
            // No HTTPS RR: plain TLS to the A address on 443.
            let Some(ip) = host_ips.first().copied() else {
                return Outcome::Failed(FailureReason::NoAddress);
            };
            let alpn = vec!["h2".to_string(), "http/1.1".to_string()];
            return self.tls_connect(ip, 443, host, alpn, None, host, events, &[]);
        };
        let record = record.clone();

        if record.is_alias() {
            return self.navigate_alias(&record, host, &host_ips, events);
        }
        self.navigate_service(&record, host, &host_ips, events)
    }

    fn navigate_alias(
        &self,
        record: &SvcbRdata,
        host: &str,
        host_ips: &[IpAddr],
        events: &mut Vec<NavEvent>,
    ) -> Outcome {
        let target_ips = if self.profile.follows_alias_target && !record.target.is_root() {
            self.resolve_addrs(&record.target, events)
        } else {
            // Chrome/Edge/Firefox: keep trying the owner name's addresses.
            host_ips.to_vec()
        };
        let Some(ip) = target_ips.first().copied() else {
            // The paper's observed failure: no IP associated with the owner.
            return Outcome::Failed(FailureReason::NoAddress);
        };
        let alpn = vec!["h2".to_string(), "http/1.1".to_string()];
        self.tls_connect(ip, 443, host, alpn, None, host, events, &target_ips[1..])
    }

    #[allow(clippy::too_many_arguments)]
    fn navigate_service(
        &self,
        record: &SvcbRdata,
        host: &str,
        host_ips: &[IpAddr],
        events: &mut Vec<NavEvent>,
    ) -> Outcome {
        // Endpoint selection (TargetName).
        let endpoint_name: DnsName = if record.target.is_root() {
            DnsName::parse(host).expect("validated above")
        } else if self.profile.follows_service_target {
            record.target.clone()
        } else {
            DnsName::parse(host).expect("validated above")
        };

        // Address candidates: A records of the endpoint vs IP hints.
        let endpoint_ips: Vec<IpAddr> = if endpoint_name.key() == host.to_ascii_lowercase() {
            host_ips.to_vec()
        } else {
            self.resolve_addrs(&endpoint_name, events)
        };
        let hint_ips: Vec<IpAddr> = record
            .ipv4hint()
            .map(|v| v.iter().map(|a| IpAddr::V4(*a)).collect())
            .unwrap_or_default();

        let (primary, secondary) = if self.profile.prefers_ip_hints && !hint_ips.is_empty() {
            (hint_ips.clone(), endpoint_ips.clone())
        } else if !endpoint_ips.is_empty() {
            (endpoint_ips.clone(), hint_ips.clone())
        } else {
            (hint_ips.clone(), Vec::new())
        };
        let Some(first_ip) = primary.first().copied() else {
            return Outcome::Failed(FailureReason::NoAddress);
        };

        // Port.
        let advertised_port = record.port();
        let port = if self.profile.uses_port_param { advertised_port.unwrap_or(443) } else { 443 };

        // ALPN offer: the record's protocols intersected with support.
        let alpn: Vec<String> = match record.alpn() {
            Some(ids) => ids
                .into_iter()
                .filter(|p| self.profile.supported_alpn.contains(&p.as_ref()))
                .map(|p| p.into_owned())
                .collect(),
            None => vec!["h2".to_string(), "http/1.1".to_string()],
        };

        // ECH.
        let mut ech_config: Option<EchConfigList> = None;
        if let Some(bytes) = record.ech() {
            if self.profile.supports_ech {
                match EchConfigList::decode(bytes) {
                    Some(list) => ech_config = Some(list),
                    None => match self.profile.malformed_ech {
                        MalformedEchBehavior::HardFail => {
                            return Outcome::Failed(FailureReason::MalformedEch);
                        }
                        MalformedEchBehavior::Ignore => {
                            events.push(NavEvent::Fallback("ignored malformed ECH config"));
                        }
                    },
                }
            }
        }

        // Split-mode-aware connection target.
        let (connect_ip, fallback_ips): (IpAddr, Vec<IpAddr>) = match &ech_config {
            Some(list)
                if self.profile.supports_ech_split_mode
                    && list.preferred().public_name != endpoint_name =>
            {
                // Correct split-mode behaviour: resolve the public name and
                // connect to the client-facing server.
                let ips = self.resolve_addrs(&list.preferred().public_name, events);
                match ips.first().copied() {
                    Some(ip) => (ip, ips[1..].to_vec()),
                    None => return Outcome::Failed(FailureReason::NoAddress),
                }
            }
            _ => (first_ip, secondary.clone()),
        };

        // First attempt (with failovers inside).
        let outcome = self.tls_connect_with_fallbacks(
            connect_ip,
            port,
            host,
            alpn.clone(),
            ech_config.as_ref(),
            events,
            &fallback_ips,
            advertised_port,
        );

        // Firefox compatibility: after an h3-only success, race an h2
        // connection as well.
        if self.profile.h3_then_h2_compat {
            if let Outcome::HttpsOk { alpn: Some(p), .. } = &outcome {
                if p == "h3" && alpn.iter().all(|a| a == "h3") {
                    events.push(NavEvent::H2CompatAttempt);
                }
            }
        }
        outcome
    }

    #[allow(clippy::too_many_arguments)]
    fn tls_connect_with_fallbacks(
        &self,
        ip: IpAddr,
        port: u16,
        host: &str,
        alpn: Vec<String>,
        ech: Option<&EchConfigList>,
        events: &mut Vec<NavEvent>,
        fallback_ips: &[IpAddr],
        advertised_port: Option<u16>,
    ) -> Outcome {
        let first = self.tls_connect(ip, port, host, alpn.clone(), ech, host, events, fallback_ips);
        // Port failover: if the advertised port failed at connect level,
        // Safari/Firefox retry on 443.
        if let Outcome::Failed(FailureReason::ConnectFailed) = first {
            if self.profile.port_fallback && advertised_port.is_some() && port != 443 {
                events.push(NavEvent::Fallback("port fallback to 443"));
                return self.tls_connect(ip, 443, host, alpn, ech, host, events, fallback_ips);
            }
        }
        first
    }

    /// One TLS connection attempt (plus intra-call IP failover and ECH
    /// fallback/retry logic).
    #[allow(clippy::too_many_arguments)]
    fn tls_connect(
        &self,
        ip: IpAddr,
        port: u16,
        host: &str,
        alpn: Vec<String>,
        ech: Option<&EchConfigList>,
        inner_host: &str,
        events: &mut Vec<NavEvent>,
        fallback_ips: &[IpAddr],
    ) -> Outcome {
        let hello = match ech {
            Some(list) => {
                let cfg = list.preferred();
                let inner = InnerHello { sni: inner_host.to_string(), alpn: alpn.clone() };
                let sealed = cfg.public_key.seal(cfg.public_name.key().as_bytes(), &inner.encode());
                ClientHello {
                    sni: cfg.public_name.key(),
                    alpn: alpn.clone(),
                    ech: Some(EchExtension { config_id: cfg.config_id, sealed_inner: sealed }),
                }
            }
            None => ClientHello::plain(host, alpn.clone()),
        };
        events.push(NavEvent::TlsAttempt {
            ip,
            port,
            sni: hello.sni.clone(),
            ech: hello.ech.is_some(),
            alpn: alpn.clone(),
        });

        let resp_bytes = match self.network().stream_exchange(ip, port, &hello.encode()) {
            Ok(b) => b,
            Err(_) => {
                // IP failover per profile.
                match self.profile.ip_fallback {
                    IpFallback::HardFail => return Outcome::Failed(FailureReason::ConnectFailed),
                    IpFallback::Immediate | IpFallback::Delayed => {
                        if let Some(next) = fallback_ips.first().copied() {
                            events.push(NavEvent::Fallback(
                                if self.profile.ip_fallback == IpFallback::Immediate {
                                    "immediate IP failover"
                                } else {
                                    "delayed IP failover"
                                },
                            ));
                            return self.tls_connect(
                                next,
                                port,
                                host,
                                alpn,
                                ech,
                                inner_host,
                                events,
                                &fallback_ips[1..],
                            );
                        }
                        return Outcome::Failed(FailureReason::ConnectFailed);
                    }
                }
            }
        };
        let Some(resp) = ServerResponse::decode(&resp_bytes) else {
            return Outcome::Failed(FailureReason::TlsAlert);
        };
        self.handle_response(resp, ip, port, host, alpn, ech, events)
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_response(
        &self,
        resp: ServerResponse,
        ip: IpAddr,
        port: u16,
        host: &str,
        alpn: Vec<String>,
        ech: Option<&EchConfigList>,
        events: &mut Vec<NavEvent>,
    ) -> Outcome {
        match resp {
            ServerResponse::Accepted { cert_name, alpn: negotiated, used_ech, served_sni: _ } => {
                if let (Some(list), false) = (ech, used_ech) {
                    // The server did not accept our ECH (unilateral
                    // deployment, or split-mode misdelivery). Per the
                    // draft, validate the certificate against the OUTER
                    // name; on success retry without ECH, otherwise it is
                    // the ECH-fallback certificate error.
                    let outer = &list.preferred().public_name;
                    if cert_name == *outer {
                        events.push(NavEvent::Fallback("ECH not accepted; standard TLS retry"));
                        return self.tls_connect(ip, port, host, alpn, None, host, events, &[]);
                    }
                    return Outcome::Failed(FailureReason::CertificateInvalid);
                }
                // Normal certificate validation against the target host.
                let expected = DnsName::parse(host).ok();
                if expected.map(|e| e != cert_name).unwrap_or(true) {
                    return Outcome::Failed(FailureReason::CertificateInvalid);
                }
                Outcome::HttpsOk { ip, port, alpn: negotiated, used_ech }
            }
            ServerResponse::EchRetry { retry_configs, .. } => {
                if !self.profile.supports_ech_retry {
                    return Outcome::Failed(FailureReason::TlsAlert);
                }
                let Some(list) = EchConfigList::decode(&retry_configs) else {
                    return Outcome::Failed(FailureReason::TlsAlert);
                };
                events.push(NavEvent::EchRetry);
                self.tls_connect(ip, port, host, alpn, Some(&list), host, events, &[])
            }
            ServerResponse::Alert(cause) => Outcome::Failed(match cause {
                AlertCause::CertificateInvalid => FailureReason::CertificateInvalid,
                _ => FailureReason::TlsAlert,
            }),
        }
    }

    /// Issue one DNS query through the engine, returning the answer
    /// records — the traversed CNAME chain followed by the final RRset —
    /// or empty on failure. The stub-to-recursive hop approximates the
    /// removed on-wire path: the query fails (empty answers) when the
    /// resolver's advertised address is blackholed or nothing listens
    /// at `resolver_ip:53`; unlike the wire path, the hop itself is not
    /// counted in [`netsim::TrafficStats`].
    fn dns_query(
        &self,
        name: &DnsName,
        qtype: RecordType,
        events: &mut Vec<NavEvent>,
    ) -> Vec<Record> {
        events.push(NavEvent::DnsQuery { name: name.key(), qtype });
        if self.network().can_connect(self.resolver_ip, 53).is_err() {
            return Vec::new();
        }
        match self.engine.resolve(name, qtype) {
            Ok(res) => {
                let mut records = res.chain;
                records.extend(res.records);
                records
            }
            Err(_) => Vec::new(),
        }
    }

    /// Resolve the address candidates for `name`: A records first (every
    /// simulated web endpoint is v4), then AAAA records.
    fn resolve_addrs(&self, name: &DnsName, events: &mut Vec<NavEvent>) -> Vec<IpAddr> {
        let mut ips = a_ips(&self.dns_query(name, RecordType::A, events));
        ips.extend(self.dns_query(name, RecordType::Aaaa, events).iter().filter_map(|r| {
            match &r.rdata {
                RData::Aaaa(a) => Some(IpAddr::V6(*a)),
                _ => None,
            }
        }));
        ips
    }
}

/// Pick the HTTPS record a client would use: lowest-priority ServiceMode
/// record, else an AliasMode record.
fn select_https_record(answers: &[Record]) -> Option<&SvcbRdata> {
    let rdatas: Vec<&SvcbRdata> = answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Https(rd) => Some(rd),
            _ => None,
        })
        .collect();
    rdatas
        .iter()
        .filter(|rd| !rd.is_alias())
        .min_by_key(|rd| rd.priority)
        .or_else(|| rdatas.iter().find(|rd| rd.is_alias()))
        .copied()
}

fn a_ips(records: &[Record]) -> Vec<IpAddr> {
    records
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::A(a) => Some(IpAddr::V4(*a)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::SvcParam;

    fn https_rec(rd: SvcbRdata) -> Record {
        Record::new(DnsName::parse("a.com").unwrap(), 60, RData::Https(rd))
    }

    #[test]
    fn record_selection_prefers_low_priority_service_mode() {
        let answers = vec![
            https_rec(SvcbRdata { priority: 2, target: DnsName::root(), params: vec![] }),
            https_rec(SvcbRdata { priority: 1, target: DnsName::root(), params: vec![] }),
            https_rec(SvcbRdata::alias(DnsName::parse("b.com").unwrap())),
        ];
        assert_eq!(select_https_record(&answers).unwrap().priority, 1);
    }

    #[test]
    fn record_selection_falls_back_to_alias() {
        let answers = vec![https_rec(SvcbRdata::alias(DnsName::parse("b.com").unwrap()))];
        assert!(select_https_record(&answers).unwrap().is_alias());
        assert!(select_https_record(&[]).is_none());
    }

    #[test]
    fn a_ip_extraction_ignores_other_types() {
        let recs = vec![
            Record::new(DnsName::parse("a.com").unwrap(), 60, RData::A("1.2.3.4".parse().unwrap())),
            https_rec(SvcbRdata::service_self(vec![SvcParam::Port(443)])),
        ];
        assert_eq!(a_ips(&recs), vec!["1.2.3.4".parse::<IpAddr>().unwrap()]);
    }
}
