//! Behavioural profiles of the four measured browsers (and a
//! spec-compliant reference profile for ablations).
//!
//! Each flag encodes one observed behaviour from the paper's §5
//! experiments (Tables 6 and 7): whether HTTPS RRs are fetched, whether
//! they upgrade scheme-less/HTTP URLs, which record parameters are
//! honoured, and how failures are handled. Versions match the paper's
//! testbed: Chrome 120, Safari 17.2, Edge 120, Firefox 122.

/// How a browser reacts to an unusable preferred IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpFallback {
    /// Hard failure (Chrome/Edge on unreachable A-record IPs).
    HardFail,
    /// Immediately retry the alternate record type's address (Safari).
    Immediate,
    /// Retry the alternate address after a delay (Firefox).
    Delayed,
}

/// How a browser reacts to an ECH config it cannot parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MalformedEchBehavior {
    /// Terminate the connection (Chrome/Edge).
    HardFail,
    /// Ignore ECH and proceed with standard TLS (Firefox).
    Ignore,
}

/// A browser's HTTPS-RR/ECH behaviour profile.
#[derive(Debug, Clone)]
pub struct BrowserProfile {
    /// Display name, e.g. `"Chrome 120"`.
    pub name: &'static str,
    /// Issues HTTPS-type DNS queries at all (all four do).
    pub queries_https_rr: bool,
    /// Uses a fetched HTTPS RR to upgrade `example.com` / `http://…`
    /// navigations to HTTPS (Safari does not).
    pub upgrades_on_https_rr: bool,
    /// Follows the TargetName of an AliasMode record by issuing follow-up
    /// address queries (only Safari).
    pub follows_alias_target: bool,
    /// Uses the TargetName of a ServiceMode record (Safari, Firefox).
    pub follows_service_target: bool,
    /// Connects to the `port` SvcParam instead of 443 (Safari, Firefox).
    pub uses_port_param: bool,
    /// Falls back to 443 when the advertised port fails (Safari, Firefox).
    pub port_fallback: bool,
    /// Prefers `ipv4hint`/`ipv6hint` addresses over A/AAAA (Safari,
    /// Firefox); Chrome/Edge prefer A-record addresses.
    pub prefers_ip_hints: bool,
    /// Behaviour when the preferred address is unusable.
    pub ip_fallback: IpFallback,
    /// Ignores HTTPS RRs that carry no `alpn` SvcParam (Chromium does).
    pub ignores_record_without_alpn: bool,
    /// ALPN identifiers the browser supports.
    pub supported_alpn: &'static [&'static str],
    /// After connecting with h3-only ALPN, also races an h2 connection
    /// (Firefox's compatibility behaviour).
    pub h3_then_h2_compat: bool,
    /// Implements ECH at all (Safari does not).
    pub supports_ech: bool,
    /// Reaction to malformed ECH configs (only meaningful with ECH).
    pub malformed_ech: MalformedEchBehavior,
    /// Honours the server's ECH retry-config mechanism.
    pub supports_ech_retry: bool,
    /// Resolves the ECH public name and connects to the client-facing
    /// server in Split Mode (no current browser does).
    pub supports_ech_split_mode: bool,
}

impl BrowserProfile {
    /// Chrome 120 (macOS/Windows behaviour was identical in the study).
    pub fn chrome() -> BrowserProfile {
        BrowserProfile {
            name: "Chrome 120",
            queries_https_rr: true,
            upgrades_on_https_rr: true,
            follows_alias_target: false,
            follows_service_target: false,
            uses_port_param: false,
            port_fallback: false,
            prefers_ip_hints: false,
            ip_fallback: IpFallback::HardFail,
            ignores_record_without_alpn: true,
            supported_alpn: &["h2", "h3", "http/1.1"],
            h3_then_h2_compat: false,
            supports_ech: true,
            malformed_ech: MalformedEchBehavior::HardFail,
            supports_ech_retry: true,
            supports_ech_split_mode: false,
        }
    }

    /// Edge 120 (Chromium-based; measured separately, behaved identically).
    pub fn edge() -> BrowserProfile {
        BrowserProfile { name: "Edge 120", ..BrowserProfile::chrome() }
    }

    /// Safari 17.2.
    pub fn safari() -> BrowserProfile {
        BrowserProfile {
            name: "Safari 17.2",
            queries_https_rr: true,
            upgrades_on_https_rr: false,
            follows_alias_target: true,
            follows_service_target: true,
            uses_port_param: true,
            port_fallback: true,
            prefers_ip_hints: true,
            ip_fallback: IpFallback::Immediate,
            ignores_record_without_alpn: false,
            supported_alpn: &["h2", "h3", "http/1.1"],
            h3_then_h2_compat: false,
            supports_ech: false,
            malformed_ech: MalformedEchBehavior::Ignore,
            supports_ech_retry: false,
            supports_ech_split_mode: false,
        }
    }

    /// Firefox 122 (with DoH enabled, its default for HTTPS RR lookups).
    pub fn firefox() -> BrowserProfile {
        BrowserProfile {
            name: "Firefox 122",
            queries_https_rr: true,
            upgrades_on_https_rr: true,
            follows_alias_target: false,
            follows_service_target: true,
            uses_port_param: true,
            port_fallback: true,
            prefers_ip_hints: true,
            ip_fallback: IpFallback::Delayed,
            ignores_record_without_alpn: false,
            supported_alpn: &["h2", "h3", "http/1.1"],
            h3_then_h2_compat: true,
            supports_ech: true,
            malformed_ech: MalformedEchBehavior::Ignore,
            supports_ech_retry: true,
            supports_ech_split_mode: false,
        }
    }

    /// A fully RFC 9460 / ECH-draft compliant client: every parameter
    /// honoured, every failover implemented, Split Mode supported. Used
    /// by the ablation benches to quantify how much breakage current
    /// browser gaps cause.
    pub fn spec_compliant() -> BrowserProfile {
        BrowserProfile {
            name: "SpecClient",
            queries_https_rr: true,
            upgrades_on_https_rr: true,
            follows_alias_target: true,
            follows_service_target: true,
            uses_port_param: true,
            port_fallback: true,
            prefers_ip_hints: false, // spec says prefer A/AAAA when present
            ip_fallback: IpFallback::Immediate,
            ignores_record_without_alpn: false,
            supported_alpn: &["h2", "h3", "http/1.1"],
            h3_then_h2_compat: false,
            supports_ech: true,
            malformed_ech: MalformedEchBehavior::Ignore,
            supports_ech_retry: true,
            supports_ech_split_mode: true,
        }
    }

    /// The four browsers measured in the paper, in its column order.
    pub fn all_measured() -> Vec<BrowserProfile> {
        vec![
            BrowserProfile::chrome(),
            BrowserProfile::safari(),
            BrowserProfile::edge(),
            BrowserProfile::firefox(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_browsers_query_https_rr() {
        for p in BrowserProfile::all_measured() {
            assert!(p.queries_https_rr, "{}", p.name);
        }
    }

    #[test]
    fn only_safari_skips_upgrade_and_ech() {
        let profiles = BrowserProfile::all_measured();
        let safari = &profiles[1];
        assert_eq!(safari.name, "Safari 17.2");
        assert!(!safari.upgrades_on_https_rr);
        assert!(!safari.supports_ech);
        for p in [&profiles[0], &profiles[2], &profiles[3]] {
            assert!(p.upgrades_on_https_rr, "{}", p.name);
            assert!(p.supports_ech, "{}", p.name);
        }
    }

    #[test]
    fn chromium_pair_is_identical_except_name() {
        let c = BrowserProfile::chrome();
        let e = BrowserProfile::edge();
        assert_ne!(c.name, e.name);
        assert_eq!(c.uses_port_param, e.uses_port_param);
        assert_eq!(c.prefers_ip_hints, e.prefers_ip_hints);
        assert_eq!(c.malformed_ech, e.malformed_ech);
    }

    #[test]
    fn no_measured_browser_supports_split_mode() {
        for p in BrowserProfile::all_measured() {
            assert!(!p.supports_ech_split_mode, "{}", p.name);
        }
        assert!(BrowserProfile::spec_compliant().supports_ech_split_mode);
    }
}
