//! # browser
//!
//! Behavioural models of the four browsers the paper measures (Chrome,
//! Safari, Edge, Firefox — §5) plus a spec-compliant reference client,
//! a navigation engine that drives them through DNS → HTTPS-RR
//! interpretation → TLS/ECH over the simulated network, and the
//! controlled testbed (Figure 6) with runners for every Table 6 and
//! Table 7 experiment.

#![warn(missing_docs)]

pub mod navigate;
pub mod profile;
pub mod testbed;

pub use navigate::{Browser, FailureReason, NavEvent, Navigation, Outcome, UrlScheme};
pub use profile::{BrowserProfile, IpFallback, MalformedEchBehavior};
pub use testbed::{
    run_alias_mode, run_alpn, run_ech_malformed, run_ech_mismatch, run_ech_shared, run_ech_split,
    run_ech_unilateral, run_ip_hint_failover, run_ip_hint_preference, run_port_failover,
    run_port_usage, run_service_target, run_utilization, table6_row, table7_row, Support,
    Table6Row, Table7Row, Testbed, UtilizationResult,
};
