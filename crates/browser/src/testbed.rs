//! The client-side testbed (the paper's Figure 6): a controlled domain
//! on our own authoritative server, a public recursive resolver, and web
//! servers with configurable HTTPS records — plus runners for every §5
//! experiment, producing the Table 6 / Table 7 support matrices.

use crate::navigate::{Browser, FailureReason, NavEvent, Outcome, UrlScheme};
use crate::profile::BrowserProfile;
use authserver::{AuthoritativeServer, DelegationRegistry, NsEndpoint, Zone, ZoneSet};
use dns_wire::{DnsName, RData, Record, RecordType, SvcParam, SvcbRdata};
use netsim::{Network, SimClock};
use resolver::{QueryEngine, RecursiveResolver, ResolverConfig};
use std::net::IpAddr;
use std::sync::Arc;
use tlsech::{EchKeyManager, EchServerState, HttpServer, WebServer, WebServerConfig};

/// Support level for one matrix cell, mirroring the paper's notation:
/// full circle / half circle / empty circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// The feature is fetched *and* used correctly (●).
    Full,
    /// The record is fetched but an essential function is missing (◐).
    Partial,
    /// No support (○).
    None,
}

impl std::fmt::Display for Support {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Support::Full => write!(f, "full"),
            Support::Partial => write!(f, "half"),
            Support::None => write!(f, "none"),
        }
    }
}

/// Addresses used by the testbed.
pub mod addr {
    /// Authoritative NS for the test domain.
    pub const NS: &str = "10.0.0.53";
    /// The public recursive resolver (the testbed's 8.8.8.8).
    pub const RESOLVER: &str = "8.8.8.8";
    /// Primary web server (the A record of the test domain).
    pub const WEB_PRIMARY: &str = "203.0.113.10";
    /// Alternative endpoint (TargetName / AliasMode target).
    pub const WEB_ALT: &str = "203.0.113.20";
    /// Address published in ipv4hint when testing hint preference.
    pub const WEB_HINT: &str = "203.0.113.30";
    /// Split-mode client-facing server.
    pub const WEB_FRONT: &str = "198.51.100.40";
}

/// The testbed world.
pub struct Testbed {
    /// The simulated network.
    pub network: Network,
    /// Delegation registry.
    pub registry: DelegationRegistry,
    /// Our authoritative zones.
    pub zones: ZoneSet,
    /// The recursive resolver (held to flush caches between rounds).
    pub resolver: Arc<RecursiveResolver>,
    /// The controlled test domain (`test-domain.com`).
    pub domain: DnsName,
}

fn ip(s: &str) -> IpAddr {
    s.parse().expect("valid test address")
}

fn name(s: &str) -> DnsName {
    DnsName::parse(s).expect("valid test name")
}

impl Testbed {
    /// Build the Figure 6 environment: authoritative server + resolver.
    pub fn new() -> Testbed {
        let clock = SimClock::new();
        clock.advance(1_000);
        let network = Network::new(clock);
        let registry = DelegationRegistry::new();
        let domain = name("test-domain.com");

        let zones = ZoneSet::new();
        zones.insert(Zone::new(domain.clone()));
        let server = Arc::new(AuthoritativeServer::new(zones.clone()));
        network.bind_datagram(ip(addr::NS), 53, server);
        registry.delegate(
            &domain,
            vec![NsEndpoint { name: name("ns1.test-domain.com"), ip: ip(addr::NS) }],
        );

        let resolver = Arc::new(RecursiveResolver::new(
            network.clone(),
            registry.clone(),
            ResolverConfig { validate: false, ..Default::default() },
        ));
        network.bind_datagram(ip(addr::RESOLVER), 53, resolver.clone());

        Testbed { network, registry, zones, resolver, domain }
    }

    /// A browser wired to the testbed resolver through the query engine.
    pub fn browser(&self, profile: BrowserProfile) -> Browser {
        let engine = QueryEngine::from_resolver(Arc::clone(&self.resolver));
        Browser::new(profile, engine, ip(addr::RESOLVER))
    }

    /// Like [`browser`](Self::browser), but the browser's engine carries
    /// a metrics registry: each navigation's DNS queries land in the
    /// `engine.single_*` counters and the `engine.single_us` wall-clock
    /// latency histogram. Navigation outcomes are identical either way —
    /// telemetry observes, never perturbs.
    pub fn instrumented_browser(
        &self,
        profile: BrowserProfile,
        metrics: Arc<telemetry::MetricsRegistry>,
    ) -> Browser {
        let engine = QueryEngine::from_resolver(Arc::clone(&self.resolver)).with_metrics(metrics);
        Browser::new(profile, engine, ip(addr::RESOLVER))
    }

    /// Reset DNS state between experiment rounds (the paper clears local
    /// caches and waits out the 60 s TTL; we flush directly).
    pub fn flush_dns(&self) {
        self.resolver.cache().flush();
    }

    /// Replace the test domain's A and HTTPS RRsets.
    pub fn set_domain_records(&self, a: Vec<IpAddr>, https: Option<SvcbRdata>) {
        self.zones.with_zone(&self.domain, |z| {
            let a_records: Vec<Record> = a
                .iter()
                .filter_map(|addr| match addr {
                    IpAddr::V4(v4) => Some(Record::new(self.domain.clone(), 60, RData::A(*v4))),
                    IpAddr::V6(_) => None,
                })
                .collect();
            z.set(self.domain.clone(), RecordType::A, a_records);
            let https_records = https
                .map(|rd| vec![Record::new(self.domain.clone(), 60, RData::Https(rd))])
                .unwrap_or_default();
            z.set(self.domain.clone(), RecordType::Https, https_records);
        });
        self.flush_dns();
    }

    /// Add an A record for an arbitrary in-zone name.
    pub fn set_a(&self, owner: &DnsName, addrs: &[IpAddr]) {
        self.zones.with_zone(&self.domain, |z| {
            let records: Vec<Record> = addrs
                .iter()
                .filter_map(|a| match a {
                    IpAddr::V4(v4) => Some(Record::new(owner.clone(), 60, RData::A(*v4))),
                    IpAddr::V6(_) => None,
                })
                .collect();
            z.set(owner.clone(), RecordType::A, records);
        });
    }

    /// Bind a fresh web server at `ip:port`.
    pub fn web_server(
        &self,
        at: &str,
        port: u16,
        cert_names: Vec<DnsName>,
        alpn: Vec<&str>,
    ) -> Arc<WebServer> {
        let server = Arc::new(WebServer::new(
            self.network.clone(),
            WebServerConfig { cert_names, alpn: alpn.into_iter().map(String::from).collect() },
        ));
        self.network.bind_stream(ip(at), port, server.clone());
        server
    }

    /// Bind a plain HTTP (port 80) endpoint at `at`.
    pub fn http_server(&self, at: &str) {
        self.network.bind_stream(ip(at), 80, Arc::new(HttpServer { host: self.domain.key() }));
    }

    /// Default ServiceMode record `1 . alpn=h2`.
    pub fn basic_service_record(&self) -> SvcbRdata {
        SvcbRdata::service_self(vec![SvcParam::Alpn(vec![b"h2".to_vec()])])
    }
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed::new()
    }
}

/// Results of the §5.1 utilization experiment for one browser.
#[derive(Debug, Clone)]
pub struct UtilizationResult {
    /// Support per URL form: bare, `http://`, `https://`.
    pub bare: Support,
    /// `http://` form.
    pub http: Support,
    /// `https://` form.
    pub https: Support,
}

/// One full Table 6 row set for a browser.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Browser display name.
    pub browser: &'static str,
    /// §5.1 utilization per URL form.
    pub utilization: UtilizationResult,
    /// AliasMode TargetName following.
    pub alias_target: Support,
    /// ServiceMode TargetName following.
    pub service_target: Support,
    /// `port` parameter usage.
    pub port: Support,
    /// `alpn` parameter usage.
    pub alpn: Support,
    /// IP hints usage.
    pub ip_hints: Support,
}

/// One full Table 7 row set for a browser.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Browser display name.
    pub browser: &'static str,
    /// Shared-mode ECH support.
    pub shared_mode: Support,
    /// Fallback on unilateral (DNS-only) ECH.
    pub unilateral: Support,
    /// Handling of malformed ECH configs.
    pub malformed: Support,
    /// Recovery from mismatched (rotated) keys via retry.
    pub mismatched_key: Support,
    /// Split-mode support.
    pub split_mode: Support,
}

/// Run the §5.1 utilization experiment.
pub fn run_utilization(tb: &Testbed, profile: &BrowserProfile) -> UtilizationResult {
    tb.set_domain_records(vec![ip(addr::WEB_PRIMARY)], Some(tb.basic_service_record()));
    tb.web_server(addr::WEB_PRIMARY, 443, vec![tb.domain.clone()], vec!["h2", "http/1.1"]);
    tb.http_server(addr::WEB_PRIMARY);

    let judge = |scheme: UrlScheme| -> Support {
        tb.flush_dns();
        let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), scheme);
        match (&nav.outcome, nav.queried_https_rr()) {
            (Outcome::HttpsOk { .. }, true) => Support::Full,
            (_, true) => Support::Partial, // fetched the record, connected via HTTP
            (Outcome::HttpsOk { .. }, false) => Support::Partial,
            _ => Support::None,
        }
    };
    UtilizationResult {
        bare: judge(UrlScheme::Bare),
        http: judge(UrlScheme::Http),
        https: judge(UrlScheme::Https),
    }
}

/// §5.2.1 AliasMode: `HTTPS 0 pool.test-domain.com.`, A only at the pool.
pub fn run_alias_mode(tb: &Testbed, profile: &BrowserProfile) -> Support {
    let pool = name("pool.test-domain.com");
    tb.set_domain_records(vec![], Some(SvcbRdata::alias(pool.clone())));
    tb.set_a(&pool, &[ip(addr::WEB_ALT)]);
    tb.web_server(addr::WEB_ALT, 443, vec![tb.domain.clone()], vec!["h2", "http/1.1"]);
    tb.flush_dns();

    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    match nav.outcome {
        Outcome::HttpsOk { ip: got, .. } if got == ip(addr::WEB_ALT) => Support::Full,
        _ => Support::None,
    }
}

/// §5.2.2 ServiceMode TargetName: service lives only at the target.
pub fn run_service_target(tb: &Testbed, profile: &BrowserProfile) -> Support {
    let pool = name("pool.test-domain.com");
    tb.set_domain_records(
        vec![ip(addr::WEB_PRIMARY)],
        Some(SvcbRdata {
            priority: 1,
            target: pool.clone(),
            params: vec![SvcParam::Alpn(vec![b"h2".to_vec()])],
        }),
    );
    tb.set_a(&pool, &[ip(addr::WEB_ALT)]);
    // The real service is only at the alt address; nothing at primary:443.
    tb.network.unbind_stream(ip(addr::WEB_PRIMARY), 443);
    tb.web_server(addr::WEB_ALT, 443, vec![tb.domain.clone()], vec!["h2", "http/1.1"]);
    tb.flush_dns();

    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    match nav.outcome {
        Outcome::HttpsOk { ip: got, .. } if got == ip(addr::WEB_ALT) => Support::Full,
        _ => Support::None,
    }
}

/// §5.2.2(1) `port`: service on 8443 only.
pub fn run_port_usage(tb: &Testbed, profile: &BrowserProfile) -> Support {
    tb.set_domain_records(
        vec![ip(addr::WEB_PRIMARY)],
        Some(SvcbRdata::service_self(vec![
            SvcParam::Alpn(vec![b"h2".to_vec()]),
            SvcParam::Port(8443),
        ])),
    );
    tb.network.unbind_stream(ip(addr::WEB_PRIMARY), 443);
    tb.web_server(addr::WEB_PRIMARY, 8443, vec![tb.domain.clone()], vec!["h2", "http/1.1"]);
    tb.flush_dns();

    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    match nav.outcome {
        Outcome::HttpsOk { port: 8443, .. } => Support::Full,
        _ => Support::None,
    }
}

/// §5.2.2(1) port failover: advertised 8443, service only on 443.
/// Full = connects (via fallback or by never leaving 443);
/// None = hard failure.
pub fn run_port_failover(tb: &Testbed, profile: &BrowserProfile) -> (Support, bool) {
    tb.set_domain_records(
        vec![ip(addr::WEB_PRIMARY)],
        Some(SvcbRdata::service_self(vec![
            SvcParam::Alpn(vec![b"h2".to_vec()]),
            SvcParam::Port(8443),
        ])),
    );
    tb.network.unbind_stream(ip(addr::WEB_PRIMARY), 8443);
    tb.web_server(addr::WEB_PRIMARY, 443, vec![tb.domain.clone()], vec!["h2", "http/1.1"]);
    tb.flush_dns();

    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    let fell_back =
        nav.events.iter().any(|e| matches!(e, NavEvent::Fallback(msg) if msg.contains("port")));
    match nav.outcome {
        Outcome::HttpsOk { .. } => (Support::Full, fell_back),
        _ => (Support::None, fell_back),
    }
}

/// §5.2.2(2) IP hints: hint and A point at different, both-alive servers;
/// returns which address was contacted first.
pub fn run_ip_hint_preference(tb: &Testbed, profile: &BrowserProfile) -> (Support, IpAddr) {
    tb.set_domain_records(
        vec![ip(addr::WEB_PRIMARY)],
        Some(SvcbRdata::service_self(vec![
            SvcParam::Alpn(vec![b"h2".to_vec()]),
            SvcParam::Ipv4Hint(vec![addr::WEB_HINT.parse().expect("v4")]),
        ])),
    );
    tb.web_server(addr::WEB_PRIMARY, 443, vec![tb.domain.clone()], vec!["h2", "http/1.1"]);
    tb.web_server(addr::WEB_HINT, 443, vec![tb.domain.clone()], vec!["h2", "http/1.1"]);
    tb.flush_dns();

    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    let first = nav.tls_ips().first().copied().unwrap_or(ip("0.0.0.0"));
    let used_hint = first == ip(addr::WEB_HINT);
    match nav.outcome {
        Outcome::HttpsOk { .. } if used_hint => (Support::Full, first),
        Outcome::HttpsOk { .. } => (Support::None, first), // connected, hints unused
        _ => (Support::None, first),
    }
}

/// §5.2.2(2) IP-hint failover: only one of hint/A is reachable. Returns
/// (support when only hint works, support when only A works).
pub fn run_ip_hint_failover(tb: &Testbed, profile: &BrowserProfile) -> (Support, Support) {
    let record = SvcbRdata::service_self(vec![
        SvcParam::Alpn(vec![b"h2".to_vec()]),
        SvcParam::Ipv4Hint(vec![addr::WEB_HINT.parse().expect("v4")]),
    ]);

    // Case A: only the hint address serves.
    tb.set_domain_records(vec![ip(addr::WEB_PRIMARY)], Some(record.clone()));
    tb.network.unbind_stream(ip(addr::WEB_PRIMARY), 443);
    tb.network.unbind_stream(ip(addr::WEB_HINT), 443);
    tb.web_server(addr::WEB_HINT, 443, vec![tb.domain.clone()], vec!["h2", "http/1.1"]);
    tb.flush_dns();
    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    let hint_only = match nav.outcome {
        Outcome::HttpsOk { .. } => Support::Full,
        _ => Support::None,
    };

    // Case B: only the A-record address serves.
    tb.network.unbind_stream(ip(addr::WEB_HINT), 443);
    tb.web_server(addr::WEB_PRIMARY, 443, vec![tb.domain.clone()], vec!["h2", "http/1.1"]);
    tb.flush_dns();
    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    let a_only = match nav.outcome {
        Outcome::HttpsOk { .. } => Support::Full,
        _ => Support::None,
    };
    (hint_only, a_only)
}

/// §5.2.2(3) alpn: server exclusively speaks `proto` and the record says
/// so; success means the browser honoured the advertisement.
pub fn run_alpn(tb: &Testbed, profile: &BrowserProfile, proto: &str) -> Support {
    tb.set_domain_records(
        vec![ip(addr::WEB_PRIMARY)],
        Some(SvcbRdata::service_self(vec![SvcParam::Alpn(vec![proto.as_bytes().to_vec()])])),
    );
    tb.network.unbind_stream(ip(addr::WEB_PRIMARY), 443);
    tb.web_server(addr::WEB_PRIMARY, 443, vec![tb.domain.clone()], vec![proto]);
    tb.flush_dns();

    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    match nav.outcome {
        Outcome::HttpsOk { alpn: Some(p), .. } if p == proto => Support::Full,
        _ => Support::None,
    }
}

/// Configure the shared-mode ECH world; returns the front server.
fn setup_shared_ech(tb: &Testbed) -> Arc<WebServer> {
    let cover = name("cover.test-domain.com");
    let server = tb.web_server(
        addr::WEB_PRIMARY,
        443,
        vec![tb.domain.clone(), cover.clone()],
        vec!["h2", "http/1.1"],
    );
    server.enable_ech(EchServerState {
        manager: EchKeyManager::new(cover.clone(), "testbed-shared", 1),
        retry_enabled: true,
    });
    let configs = server.current_ech_configs().expect("just enabled");
    tb.set_domain_records(
        vec![ip(addr::WEB_PRIMARY)],
        Some(SvcbRdata::service_self(vec![
            SvcParam::Alpn(vec![b"h2".to_vec()]),
            SvcParam::Ech(configs),
        ])),
    );
    tb.set_a(&cover, &[ip(addr::WEB_PRIMARY)]);
    tb.flush_dns();
    server
}

/// §5.3.1 shared-mode ECH support.
pub fn run_ech_shared(tb: &Testbed, profile: &BrowserProfile) -> Support {
    let _server = setup_shared_ech(tb);
    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    match nav.outcome {
        Outcome::HttpsOk { used_ech: true, .. } => Support::Full,
        Outcome::HttpsOk { used_ech: false, .. } => Support::None, // connected without ECH
        _ => Support::None,
    }
}

/// §5.3.1(1) unilateral ECH: the server dropped ECH, DNS still advertises.
pub fn run_ech_unilateral(tb: &Testbed, profile: &BrowserProfile) -> Support {
    let server = setup_shared_ech(tb);
    server.disable_ech();
    tb.flush_dns();
    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    match nav.outcome {
        // Success = graceful fallback to standard TLS.
        Outcome::HttpsOk { used_ech: false, .. } => Support::Full,
        _ => Support::None,
    }
}

/// §5.3.1(2) malformed ECH configuration in DNS.
pub fn run_ech_malformed(tb: &Testbed, profile: &BrowserProfile) -> Support {
    let _server = setup_shared_ech(tb);
    // Overwrite the record with garbage ECH bytes (the copy-paste typo).
    tb.set_domain_records(
        vec![ip(addr::WEB_PRIMARY)],
        Some(SvcbRdata::service_self(vec![
            SvcParam::Alpn(vec![b"h2".to_vec()]),
            SvcParam::Ech(b"corrupted ech config bytes".to_vec()),
        ])),
    );
    tb.flush_dns();
    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    match nav.outcome {
        Outcome::HttpsOk { .. } => Support::Full, // ignored the bad config
        Outcome::Failed(FailureReason::MalformedEch) => Support::None, // hard fail
        _ => Support::None,
    }
}

/// §5.3.1(3) key mismatch: DNS carries a stale key; the server offers
/// retry configs. Returns (support, whether the retry path was used).
pub fn run_ech_mismatch(tb: &Testbed, profile: &BrowserProfile) -> (Support, bool) {
    let server = setup_shared_ech(tb);
    // Rotate with no grace: the advertised key no longer decrypts.
    {
        // Replace state with a no-grace manager, then rotate.
        server.enable_ech(EchServerState {
            manager: EchKeyManager::new(name("cover.test-domain.com"), "testbed-shared", 0),
            retry_enabled: true,
        });
        // DNS still carries the config from setup_shared_ech (same seed,
        // rotation 0). Rotate the server away from it.
        server.rotate_ech_key("testbed-shared");
    }
    tb.flush_dns();
    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    let retried = nav.events.iter().any(|e| matches!(e, NavEvent::EchRetry));
    match nav.outcome {
        Outcome::HttpsOk { used_ech: true, .. } => (Support::Full, retried),
        _ => (Support::None, retried),
    }
}

/// §5.3.2 split mode: client-facing server on a different apex and IP.
pub fn run_ech_split(tb: &Testbed, profile: &BrowserProfile) -> (Support, Option<FailureReason>) {
    let public = name("public-ech.net");

    // The public name needs its own zone + delegation.
    let front_zones = ZoneSet::new();
    let mut front_zone = Zone::new(public.clone());
    front_zone.add(Record::new(public.clone(), 60, RData::A(addr::WEB_FRONT.parse().expect("v4"))));
    front_zones.insert(front_zone);
    tb.network.bind_datagram(ip("10.0.0.54"), 53, Arc::new(AuthoritativeServer::new(front_zones)));
    tb.registry.delegate(
        &public,
        vec![NsEndpoint { name: name("ns1.public-ech.net"), ip: ip("10.0.0.54") }],
    );

    // Back-end: the test domain's server, no ECH.
    tb.network.unbind_stream(ip(addr::WEB_PRIMARY), 443);
    tb.web_server(addr::WEB_PRIMARY, 443, vec![tb.domain.clone()], vec!["h2", "http/1.1"]);

    // Client-facing server with ECH for the public name, forwarding to
    // the back end.
    let front = tb.web_server(addr::WEB_FRONT, 443, vec![public.clone()], vec!["h2", "http/1.1"]);
    front.enable_ech(EchServerState {
        manager: EchKeyManager::new(public.clone(), "testbed-split", 1),
        retry_enabled: true,
    });
    front.add_forward(&tb.domain.key(), (ip(addr::WEB_PRIMARY), 443));
    let configs = front.current_ech_configs().expect("enabled");

    tb.set_domain_records(
        vec![ip(addr::WEB_PRIMARY)],
        Some(SvcbRdata::service_self(vec![
            SvcParam::Alpn(vec![b"h2".to_vec()]),
            SvcParam::Ech(configs),
        ])),
    );
    tb.flush_dns();

    let nav = tb.browser(profile.clone()).navigate(&tb.domain.key(), UrlScheme::Https);
    match nav.outcome {
        Outcome::HttpsOk { used_ech: true, .. } => (Support::Full, None),
        Outcome::Failed(reason) => (Support::None, Some(reason)),
        _ => (Support::None, None),
    }
}

/// Run the full Table 6 battery for one browser.
pub fn table6_row(profile: &BrowserProfile) -> Table6Row {
    let alpn_h2 = run_alpn(&Testbed::new(), profile, "h2");
    let alpn_h3 = run_alpn(&Testbed::new(), profile, "h3");
    Table6Row {
        browser: profile.name,
        utilization: run_utilization(&Testbed::new(), profile),
        alias_target: run_alias_mode(&Testbed::new(), profile),
        service_target: run_service_target(&Testbed::new(), profile),
        port: run_port_usage(&Testbed::new(), profile),
        alpn: if alpn_h2 == Support::Full && alpn_h3 == Support::Full {
            Support::Full
        } else {
            Support::None
        },
        ip_hints: run_ip_hint_preference(&Testbed::new(), profile).0,
    }
}

/// Run the full Table 7 battery for one browser.
pub fn table7_row(profile: &BrowserProfile) -> Table7Row {
    Table7Row {
        browser: profile.name,
        shared_mode: run_ech_shared(&Testbed::new(), profile),
        unilateral: run_ech_unilateral(&Testbed::new(), profile),
        malformed: run_ech_malformed(&Testbed::new(), profile),
        mismatched_key: run_ech_mismatch(&Testbed::new(), profile).0,
        split_mode: run_ech_split(&Testbed::new(), profile).0,
    }
}
