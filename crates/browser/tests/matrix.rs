//! Assert that the behavioural models reproduce the paper's Table 6 and
//! Table 7 matrices exactly, experiment by experiment.

use browser::{
    run_alias_mode, run_alpn, run_ech_malformed, run_ech_mismatch, run_ech_shared, run_ech_split,
    run_ech_unilateral, run_ip_hint_failover, run_ip_hint_preference, run_port_failover,
    run_port_usage, run_service_target, run_utilization, BrowserProfile, FailureReason, Support,
    Testbed,
};

fn chrome() -> BrowserProfile {
    BrowserProfile::chrome()
}
fn safari() -> BrowserProfile {
    BrowserProfile::safari()
}
fn edge() -> BrowserProfile {
    BrowserProfile::edge()
}
fn firefox() -> BrowserProfile {
    BrowserProfile::firefox()
}

#[test]
fn utilization_matches_table6() {
    // Chrome/Edge/Firefox: full circles for all three URL forms.
    for p in [chrome(), edge(), firefox()] {
        let u = run_utilization(&Testbed::new(), &p);
        assert_eq!(u.bare, Support::Full, "{} bare", p.name);
        assert_eq!(u.http, Support::Full, "{} http", p.name);
        assert_eq!(u.https, Support::Full, "{} https", p.name);
    }
    // Safari: fetches but connects HTTP for the first two forms.
    let u = run_utilization(&Testbed::new(), &safari());
    assert_eq!(u.bare, Support::Partial);
    assert_eq!(u.http, Support::Partial);
    assert_eq!(u.https, Support::Full);
}

#[test]
fn alias_mode_only_safari() {
    assert_eq!(run_alias_mode(&Testbed::new(), &safari()), Support::Full);
    for p in [chrome(), edge(), firefox()] {
        assert_eq!(run_alias_mode(&Testbed::new(), &p), Support::None, "{}", p.name);
    }
}

#[test]
fn service_target_safari_and_firefox() {
    assert_eq!(run_service_target(&Testbed::new(), &safari()), Support::Full);
    assert_eq!(run_service_target(&Testbed::new(), &firefox()), Support::Full);
    assert_eq!(run_service_target(&Testbed::new(), &chrome()), Support::None);
    assert_eq!(run_service_target(&Testbed::new(), &edge()), Support::None);
}

#[test]
fn port_usage_safari_and_firefox() {
    assert_eq!(run_port_usage(&Testbed::new(), &safari()), Support::Full);
    assert_eq!(run_port_usage(&Testbed::new(), &firefox()), Support::Full);
    assert_eq!(run_port_usage(&Testbed::new(), &chrome()), Support::None);
    assert_eq!(run_port_usage(&Testbed::new(), &edge()), Support::None);
}

#[test]
fn port_failover_behaviour() {
    // Server only on 443, record advertises 8443.
    // Safari/Firefox fall back to 443 and succeed.
    for p in [safari(), firefox()] {
        let (support, fell_back) = run_port_failover(&Testbed::new(), &p);
        assert_eq!(support, Support::Full, "{}", p.name);
        assert!(fell_back, "{} should report a port fallback", p.name);
    }
    // Chrome/Edge never left 443, so they "succeed" without fallback —
    // the paper's hard-failure case is captured by run_port_usage.
    for p in [chrome(), edge()] {
        let (support, fell_back) = run_port_failover(&Testbed::new(), &p);
        assert_eq!(support, Support::Full, "{}", p.name);
        assert!(!fell_back, "{} does not implement port fallback", p.name);
    }
}

#[test]
fn ip_hints_preference_matches_table6() {
    // Safari/Firefox use the hints directly.
    for p in [safari(), firefox()] {
        let (support, first_ip) = run_ip_hint_preference(&Testbed::new(), &p);
        assert_eq!(support, Support::Full, "{}", p.name);
        assert_eq!(first_ip.to_string(), "203.0.113.30", "{}", p.name);
    }
    // Chrome/Edge prefer the A record.
    for p in [chrome(), edge()] {
        let (support, first_ip) = run_ip_hint_preference(&Testbed::new(), &p);
        assert_eq!(support, Support::None, "{}", p.name);
        assert_eq!(first_ip.to_string(), "203.0.113.10", "{}", p.name);
    }
}

#[test]
fn ip_hint_failover_matches_section_5_2() {
    // Only the hint address serves: Safari/Firefox succeed directly;
    // Chrome/Edge hard-fail on the dead A address.
    // Only the A address serves: Safari/Firefox fail over; Chrome/Edge
    // succeed directly.
    for p in [safari(), firefox()] {
        let (hint_only, a_only) = run_ip_hint_failover(&Testbed::new(), &p);
        assert_eq!(hint_only, Support::Full, "{} hint-only", p.name);
        assert_eq!(a_only, Support::Full, "{} a-only (failover)", p.name);
    }
    for p in [chrome(), edge()] {
        let (hint_only, a_only) = run_ip_hint_failover(&Testbed::new(), &p);
        assert_eq!(hint_only, Support::None, "{} hint-only (hard fail)", p.name);
        assert_eq!(a_only, Support::Full, "{} a-only", p.name);
    }
}

#[test]
fn alpn_supported_by_all_browsers() {
    for p in [chrome(), safari(), edge(), firefox()] {
        assert_eq!(run_alpn(&Testbed::new(), &p, "h2"), Support::Full, "{} h2", p.name);
        assert_eq!(run_alpn(&Testbed::new(), &p, "h3"), Support::Full, "{} h3", p.name);
    }
}

#[test]
fn ech_shared_mode_matches_table7() {
    for p in [chrome(), edge(), firefox()] {
        assert_eq!(run_ech_shared(&Testbed::new(), &p), Support::Full, "{}", p.name);
    }
    // Safari lacks ECH entirely (it still connects, without ECH).
    assert_eq!(run_ech_shared(&Testbed::new(), &safari()), Support::None);
}

#[test]
fn ech_unilateral_fallback_works_everywhere() {
    for p in [chrome(), edge(), firefox()] {
        assert_eq!(run_ech_unilateral(&Testbed::new(), &p), Support::Full, "{}", p.name);
    }
}

#[test]
fn ech_malformed_hard_fails_chromium_only() {
    assert_eq!(run_ech_malformed(&Testbed::new(), &chrome()), Support::None);
    assert_eq!(run_ech_malformed(&Testbed::new(), &edge()), Support::None);
    assert_eq!(run_ech_malformed(&Testbed::new(), &firefox()), Support::Full);
}

#[test]
fn ech_key_mismatch_recovers_via_retry() {
    for p in [chrome(), edge(), firefox()] {
        let (support, retried) = run_ech_mismatch(&Testbed::new(), &p);
        assert_eq!(support, Support::Full, "{}", p.name);
        assert!(retried, "{} should use the retry mechanism", p.name);
    }
}

#[test]
fn ech_split_mode_fails_in_all_measured_browsers() {
    for p in [chrome(), edge(), firefox()] {
        let (support, reason) = run_ech_split(&Testbed::new(), &p);
        assert_eq!(support, Support::None, "{}", p.name);
        // The observed error is the ECH-fallback certificate failure.
        assert_eq!(reason, Some(FailureReason::CertificateInvalid), "{}", p.name);
    }
}

#[test]
fn spec_compliant_client_passes_everything() {
    let spec = BrowserProfile::spec_compliant();
    assert_eq!(run_alias_mode(&Testbed::new(), &spec), Support::Full);
    assert_eq!(run_service_target(&Testbed::new(), &spec), Support::Full);
    assert_eq!(run_port_usage(&Testbed::new(), &spec), Support::Full);
    assert_eq!(run_ech_shared(&Testbed::new(), &spec), Support::Full);
    assert_eq!(run_ech_unilateral(&Testbed::new(), &spec), Support::Full);
    assert_eq!(run_ech_malformed(&Testbed::new(), &spec), Support::Full);
    let (mismatch, _) = run_ech_mismatch(&Testbed::new(), &spec);
    assert_eq!(mismatch, Support::Full);
    // The headline: split mode works for a compliant client.
    let (split, reason) = run_ech_split(&Testbed::new(), &spec);
    assert_eq!(split, Support::Full, "{reason:?}");
}

#[test]
fn firefox_h3_compat_attempt_is_logged() {
    use browser::{NavEvent, UrlScheme};
    let tb = Testbed::new();
    // h3-only service.
    let _ = run_alpn(&tb, &firefox(), "h3"); // configures zone + server
    tb.flush_dns();
    let nav = tb.browser(firefox()).navigate(&tb.domain.key(), UrlScheme::Https);
    assert!(
        nav.events.iter().any(|e| matches!(e, NavEvent::H2CompatAttempt)),
        "Firefox should race an h2 connection after h3-only: {:?}",
        nav.events
    );
}
