//! Navigation edge cases beyond the Table 6/7 matrix: no-record paths,
//! HTTP fallback, DNS failure handling, and event-trace contents.

use browser::{BrowserProfile, NavEvent, Outcome, Testbed, UrlScheme};
use dns_wire::{RecordType, SvcParam, SvcbRdata};

#[test]
fn https_scheme_without_record_uses_plain_tls() {
    let tb = Testbed::new();
    tb.set_domain_records(vec!["203.0.113.10".parse().unwrap()], None);
    tb.web_server(
        browser::testbed::addr::WEB_PRIMARY,
        443,
        vec![tb.domain.clone()],
        vec!["h2", "http/1.1"],
    );
    let nav = tb.browser(BrowserProfile::chrome()).navigate(&tb.domain.key(), UrlScheme::Https);
    // Still queried the HTTPS type (clients cannot know in advance).
    assert!(nav.queried_https_rr());
    assert!(matches!(nav.outcome, Outcome::HttpsOk { used_ech: false, .. }));
}

#[test]
fn bare_url_without_record_stays_http() {
    let tb = Testbed::new();
    tb.set_domain_records(vec!["203.0.113.10".parse().unwrap()], None);
    tb.http_server(browser::testbed::addr::WEB_PRIMARY);
    for p in BrowserProfile::all_measured() {
        tb.flush_dns();
        let nav = tb.browser(p.clone()).navigate(&tb.domain.key(), UrlScheme::Bare);
        assert!(matches!(nav.outcome, Outcome::HttpOk { .. }), "{}: {:?}", p.name, nav.outcome);
    }
}

#[test]
fn nonexistent_domain_fails_with_no_address() {
    let tb = Testbed::new();
    let nav =
        tb.browser(BrowserProfile::firefox()).navigate("no-such.test-domain.com", UrlScheme::Https);
    assert!(matches!(nav.outcome, Outcome::Failed(_)));
}

#[test]
fn event_trace_contains_both_dns_queries() {
    let tb = Testbed::new();
    tb.set_domain_records(vec!["203.0.113.10".parse().unwrap()], Some(tb.basic_service_record()));
    tb.web_server(browser::testbed::addr::WEB_PRIMARY, 443, vec![tb.domain.clone()], vec!["h2"]);
    let nav = tb.browser(BrowserProfile::edge()).navigate(&tb.domain.key(), UrlScheme::Https);
    let qtypes: Vec<RecordType> = nav
        .events
        .iter()
        .filter_map(|e| match e {
            NavEvent::DnsQuery { qtype, .. } => Some(*qtype),
            _ => None,
        })
        .collect();
    assert!(qtypes.contains(&RecordType::Https));
    assert!(qtypes.contains(&RecordType::A));
}

#[test]
fn alpn_offer_is_filtered_by_record() {
    // Record advertises h3 only; the browser offers exactly that.
    let tb = Testbed::new();
    tb.set_domain_records(
        vec!["203.0.113.10".parse().unwrap()],
        Some(SvcbRdata::service_self(vec![SvcParam::Alpn(vec![b"h3".to_vec()])])),
    );
    tb.web_server(browser::testbed::addr::WEB_PRIMARY, 443, vec![tb.domain.clone()], vec!["h3"]);
    let nav = tb.browser(BrowserProfile::chrome()).navigate(&tb.domain.key(), UrlScheme::Https);
    let offers: Vec<Vec<String>> = nav
        .events
        .iter()
        .filter_map(|e| match e {
            NavEvent::TlsAttempt { alpn, .. } => Some(alpn.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(offers, vec![vec!["h3".to_string()]]);
    assert!(matches!(nav.outcome, Outcome::HttpsOk { alpn: Some(p), .. } if p == "h3"));
}

#[test]
fn multiple_service_records_pick_lowest_priority() {
    let tb = Testbed::new();
    // Two ServiceMode records: priority 2 points nowhere useful (port
    // 9999), priority 1 is the good one. Clients must pick priority 1.
    tb.zones.with_zone(&tb.domain, |z| {
        use dns_wire::{RData, Record};
        z.set(
            tb.domain.clone(),
            RecordType::Https,
            vec![
                Record::new(
                    tb.domain.clone(),
                    60,
                    RData::Https(SvcbRdata {
                        priority: 2,
                        target: dns_wire::DnsName::root(),
                        params: vec![SvcParam::Alpn(vec![b"h2".to_vec()]), SvcParam::Port(9_999)],
                    }),
                ),
                Record::new(
                    tb.domain.clone(),
                    60,
                    RData::Https(SvcbRdata::service_self(vec![SvcParam::Alpn(vec![
                        b"h2".to_vec()
                    ])])),
                ),
            ],
        );
        z.set(
            tb.domain.clone(),
            RecordType::A,
            vec![Record::new(tb.domain.clone(), 60, RData::A("203.0.113.10".parse().unwrap()))],
        );
    });
    tb.web_server(browser::testbed::addr::WEB_PRIMARY, 443, vec![tb.domain.clone()], vec!["h2"]);
    tb.flush_dns();
    // Safari honours port params; picking priority 2 would send it to
    // 9999 and fail. Success proves priority-1 selection.
    let nav = tb.browser(BrowserProfile::safari()).navigate(&tb.domain.key(), UrlScheme::Https);
    assert!(matches!(nav.outcome, Outcome::HttpsOk { port: 443, .. }), "{:?}", nav.outcome);
}

#[test]
fn http_scheme_upgrade_skips_http_entirely() {
    let tb = Testbed::new();
    tb.set_domain_records(vec!["203.0.113.10".parse().unwrap()], Some(tb.basic_service_record()));
    tb.web_server(browser::testbed::addr::WEB_PRIMARY, 443, vec![tb.domain.clone()], vec!["h2"]);
    // No HTTP server bound: if the browser tried port 80 first it would
    // fail. Chrome upgrades directly from the HTTPS record.
    let nav = tb.browser(BrowserProfile::chrome()).navigate(&tb.domain.key(), UrlScheme::Http);
    assert!(matches!(nav.outcome, Outcome::HttpsOk { .. }));
    assert!(
        !nav.events.iter().any(|e| matches!(e, NavEvent::HttpAttempt { .. })),
        "no plaintext attempt expected: {:?}",
        nav.events
    );
}

#[test]
fn instrumented_navigation_counts_queries_without_changing_outcomes() {
    use std::sync::Arc;
    use telemetry::MetricsRegistry;

    let tb = Testbed::new();
    tb.set_domain_records(vec!["203.0.113.10".parse().unwrap()], None);
    tb.web_server(
        browser::testbed::addr::WEB_PRIMARY,
        443,
        vec![tb.domain.clone()],
        vec!["h2", "http/1.1"],
    );
    let plain = tb.browser(BrowserProfile::chrome()).navigate(&tb.domain.key(), UrlScheme::Https);
    tb.flush_dns();

    let metrics = Arc::new(MetricsRegistry::new("browser"));
    let instrumented = tb
        .instrumented_browser(BrowserProfile::chrome(), metrics.clone())
        .navigate(&tb.domain.key(), UrlScheme::Https);
    assert_eq!(format!("{:?}", plain.outcome), format!("{:?}", instrumented.outcome));

    // Chrome's HTTPS navigation issues HTTPS + A + AAAA through the
    // engine's single-query path.
    let queries = metrics.counter_value("engine.single_queries");
    assert!(queries >= 3, "expected >=3 single queries, saw {queries}");
    assert_eq!(metrics.counter_value("engine.single_failures"), 0);
}
