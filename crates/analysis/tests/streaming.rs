//! Disk/memory equivalence for every trait-driven analysis: one
//! campaign is run twice on identical worlds — once into in-memory
//! [`scanner::SnapshotStore`]s, once write-through into the on-disk
//! columnar store — and every analysis entry point must render a
//! byte-identical report whether it streams from [`scanner::StoreReader`]s
//! or walks the in-memory stores. This is the contract that makes the
//! disk store a drop-in backend for multi-year campaigns.

use analysis::{adoption, dnssec_a, ech, providers, vantage_diff_parallel, vantage_diff_sources};
use ecosystem::{EcosystemConfig, World};
use resolver::VantagePoint;
use scanner::{open_store, write_combined_csv, Campaign, ObservationSource, SnapshotStore};
use std::path::PathBuf;

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "httpsrr-analysis-streaming-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Thread counts to exercise: the built-in axis plus any counts named in
/// the `RESOLVER_TEST_THREADS` env var (the CI determinism-matrix hook).
fn thread_axis() -> Vec<usize> {
    let mut axis = vec![1, 4];
    if let Ok(extra) = std::env::var("RESOLVER_TEST_THREADS") {
        for tok in extra.split(',') {
            if let Ok(n) = tok.trim().parse::<usize>() {
                if n > 0 && !axis.contains(&n) {
                    axis.push(n);
                }
            }
        }
    }
    axis
}

fn campaign() -> Campaign {
    Campaign {
        sample_days: vec![0, 2, 4, 6],
        scan_www: true,
        threads: 3,
        vantages: VantagePoint::presets(),
    }
}

/// Every trait-driven analysis over one source, rendered to one string.
fn full_report(source: &dyn ObservationSource) -> String {
    use std::fmt::Write;
    let days = source.days();
    let mut out = String::new();
    let _ = writeln!(out, "== vantage {} ==", source.vantage());
    let _ = write!(out, "{}", adoption::fig2_adoption(source, 3));
    let _ = write!(out, "{}", adoption::fig8_rank_distribution(source, &days, None));
    let noncf = adoption::noncf_adopter_ids(source);
    let _ = write!(out, "{}", adoption::fig8_rank_distribution(source, &days, Some(&noncf)));
    let _ = write!(out, "{}", providers::tab2_ns_category(source));
    let _ = write!(out, "{}", providers::tab3_top_noncf(source));
    let _ = write!(out, "{}", providers::fig3_noncf_provider_count(source));
    let _ = write!(out, "{}", providers::sec423_intermittent(source));
    let _ = write!(out, "{}", dnssec_a::fig5_dnssec_trend(source));
    let _ = write!(out, "{}", ech::fig13_ech_share(source));
    let _ = write!(out, "{}", analysis::params::tab4_cf_config(source));
    let _ = write!(out, "{}", analysis::params::tab5_other_providers(source));
    let _ = write!(out, "{}", analysis::params::sec433_anomalies(source));
    let _ = write!(out, "{}", analysis::params::tab8_alpn(source, 3));
    let _ = write!(out, "{}", analysis::params::fig11_iphints(source));
    let _ = write!(out, "{}", analysis::params::fig12_mismatch_durations(source));
    out
}

#[test]
fn every_analysis_is_byte_identical_from_disk_and_memory() {
    let config = EcosystemConfig { population: 350, list_size: 260, ..EcosystemConfig::tiny() };

    // In-memory reference campaign.
    let mut world = World::build(config.clone());
    let stores: Vec<SnapshotStore> = campaign().run_vantages(&mut world);

    // Identical campaign written through to disk.
    let dir = scratch();
    let mut world = World::build(config);
    let writer_campaign = campaign();
    let mut writer = writer_campaign.create_store(&world, &dir).expect("create store");
    writer_campaign.run_to_store(&mut world, &mut writer).expect("write-through");
    drop(writer);
    let disk = open_store(&dir).expect("reopen");

    // Per-vantage: every analysis display output must match exactly.
    assert_eq!(disk.readers.len(), stores.len());
    for (reader, store) in disk.readers.iter().zip(&stores) {
        assert_eq!(
            full_report(reader),
            full_report(store),
            "analysis reports diverged between disk and memory for vantage {}",
            store.vantage()
        );
    }

    // Cross-vantage: the diff report and the combined CSV view too.
    let from_disk = vantage_diff_sources(&disk.sources()).to_string();
    let in_memory = vantage_diff_sources(
        &stores.iter().map(|s| s as &dyn ObservationSource).collect::<Vec<_>>(),
    )
    .to_string();
    assert_eq!(from_disk, in_memory, "vantage_diff diverged between disk and memory");

    let mut disk_csv = Vec::new();
    write_combined_csv(&disk.sources(), &mut disk_csv).expect("disk csv");
    let memory_csv = scanner::combined_csv(&stores);
    assert_eq!(
        String::from_utf8(disk_csv).expect("utf8"),
        memory_csv,
        "combined CSV diverged between disk and memory"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The parallel multi-vantage scan must reproduce the sequential diff
/// bit-for-bit — from disk and from memory — at every scan-thread count
/// on the determinism axis.
#[test]
fn parallel_vantage_scan_is_byte_identical_across_thread_axis() {
    let config = EcosystemConfig { population: 300, list_size: 220, ..EcosystemConfig::tiny() };
    for threads in thread_axis() {
        let c = Campaign { threads, ..campaign() };
        let mut world = World::build(config.clone());
        let stores: Vec<SnapshotStore> = c.run_vantages(&mut world);
        let memory: Vec<&dyn ObservationSource> =
            stores.iter().map(|s| s as &dyn ObservationSource).collect();

        let dir = scratch();
        let mut world = World::build(config.clone());
        let mut writer = c.create_store(&world, &dir).expect("create store");
        c.run_to_store(&mut world, &mut writer).expect("write-through");
        drop(writer);
        let disk = open_store(&dir).expect("reopen");

        // Debug covers every report field (including each f64 exactly);
        // Display is the rendered view the CLI ships.
        let reference = vantage_diff_sources(&disk.sources());
        for (label, report) in [
            ("parallel-from-disk", vantage_diff_parallel(&disk.sources())),
            ("parallel-from-memory", vantage_diff_parallel(&memory)),
            ("sequential-from-memory", vantage_diff_sources(&memory)),
        ] {
            assert_eq!(
                format!("{report:?}"),
                format!("{reference:?}"),
                "{label} diverged from the sequential disk scan at threads={threads}"
            );
            assert_eq!(report.to_string(), reference.to_string(), "{label} Display diverged");
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn materialized_store_round_trips_through_disk() {
    let config = EcosystemConfig { population: 300, list_size: 220, ..EcosystemConfig::tiny() };
    let mut world = World::build(config.clone());
    let stores = campaign().run_vantages(&mut world);

    let dir = scratch();
    let mut world = World::build(config);
    let c = campaign();
    let mut writer = c.create_store(&world, &dir).expect("create store");
    c.run_to_store(&mut world, &mut writer).expect("write-through");
    drop(writer);

    // Materializing the disk store back into SnapshotStores reproduces
    // the in-memory campaign exactly (the CSV view covers every column).
    let materialized = open_store(&dir).expect("reopen").materialize();
    assert_eq!(materialized.len(), stores.len());
    for (m, s) in materialized.iter().zip(&stores) {
        assert_eq!(m.vantage(), s.vantage());
        assert_eq!(m.to_csv(), s.to_csv());
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
