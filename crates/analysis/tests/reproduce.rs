//! Shape assertions: run a compressed campaign over a tiny world and
//! check that every analysis reproduces the *direction* of the paper's
//! findings (exact magnitudes are asserted in EXPERIMENTS.md's
//! full-scale run).

use analysis::*;
use ecosystem::{EcosystemConfig, World};
use scanner::{connectivity_probe, hourly_ech_scan, Campaign};

fn campaign_store() -> (World, scanner::SnapshotStore) {
    let mut world = World::build(EcosystemConfig::tiny());
    let days: Vec<u64> = (0..=328).step_by(24).collect();
    let campaign = Campaign { sample_days: days, scan_www: true, threads: 4, vantages: vec![] };
    let store = campaign.run(&mut world);
    (world, store)
}

#[test]
fn full_pipeline_shapes() {
    let (world, store) = campaign_store();
    let lm = world.config.landmarks;

    // ---- Fig 2: adoption ~20-30%, dynamic trend not decreasing ----
    let adoption = fig2_adoption(&store, lm.source_change as u32);
    let first = adoption.dynamic_apex.first().unwrap();
    let last = adoption.dynamic_apex.last().unwrap();
    assert!((8.0..40.0).contains(&first), "day-0 adoption {first}%");
    assert!(last >= first - 2.0, "dynamic adoption should not fall: {first} -> {last}");

    // ---- Table 2: full-Cloudflare dominates ----
    let tab2 = tab2_ns_category(&store);
    assert!(tab2.full_mean > 80.0, "full-CF mean {}", tab2.full_mean);
    assert!(tab2.none_mean < 20.0);
    assert!(tab2.partial_mean < 10.0);

    // ---- Table 3 / Fig 3: non-CF providers present ----
    let tab3 = tab3_top_noncf(&store);
    assert!(!tab3.providers.is_empty(), "non-CF providers must appear");
    let fig3 = fig3_noncf_provider_count(&store);
    assert!(
        fig3.provider_count.last().unwrap() >= fig3.provider_count.first().unwrap(),
        "non-CF provider count should trend up"
    );

    // ---- §4.2.3: intermittent domains, mostly same-NS Cloudflare ----
    let inter = sec423_intermittent(&store);
    assert!(inter.intermittent_total > 0);
    assert!(
        inter.same_ns_cloudflare * 2 >= inter.same_ns,
        "most same-NS intermittents should be Cloudflare: {inter:?}"
    );

    // ---- Table 4: default >> customized ----
    let tab4 = tab4_cf_config(&store);
    assert!(tab4.default_pct > 60.0, "default {}%", tab4.default_pct);
    assert!(tab4.default_pct < 95.0, "customized share must exist");

    // ---- Table 8: h2 ≈ 100%, h3 high, h3-29 only before sunset ----
    let tab8 = tab8_alpn(&store, lm.h3_29_sunset as u32);
    let h2 = &tab8.rows[1];
    assert!(h2.1 > 90.0, "h2 apex share {}", h2.1);
    assert!(tab8.h3_29_before > tab8.h3_29_after, "h3-29 sunset shape");
    assert!(tab8.h3_29_after < 1.0);

    // ---- Fig 11: hints nearly universal, match rate high but <100% ----
    let fig11 = fig11_iphints(&store);
    assert!(fig11.apex_utilization.mean() > 60.0);
    let match_mean = fig11.apex_match.mean();
    assert!((80.0..=100.0).contains(&match_mean), "match {match_mean}%");

    // ---- Fig 12: permanent mismatchers detected ----
    let fig12 = fig12_mismatch_durations(&store);
    assert!(fig12.always_mismatched > 0, "cf-ns style domains");

    // ---- Fig 13: ECH high before kill switch, zero after ----
    let fig13 = fig13_ech_share(&store);
    let before: Vec<f64> = fig13
        .apex
        .points
        .iter()
        .filter(|(d, _)| (*d as u64) < lm.ech_disable)
        .map(|(_, v)| *v)
        .collect();
    let after: Vec<f64> = fig13
        .apex
        .points
        .iter()
        .filter(|(d, _)| (*d as u64) >= lm.ech_disable)
        .map(|(_, v)| *v)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(mean(&before) > 45.0, "pre-kill ECH share {}", mean(&before));
    assert!(mean(&after) < 0.5, "post-kill ECH share {}", mean(&after));

    // ---- Fig 5: signed share < 15%, validated < signed ----
    let fig5 = fig5_dnssec_trend(&store);
    let signed = fig5.signed_apex.mean();
    let validated = fig5.validated_apex.mean();
    assert!((1.0..20.0).contains(&signed), "signed {signed}%");
    assert!(validated < signed, "validated {validated} < signed {signed}");
    assert!(validated > 0.0);
}

#[test]
fn fig4_rotation_statistics() {
    let mut world = World::build(EcosystemConfig::tiny());
    let obs = hourly_ech_scan(&mut world, 24, 8);
    let stats = fig4_rotation(&obs);
    assert!(stats.distinct_configs >= 15, "configs {}", stats.distinct_configs);
    // Rotation ≈1.25h and hourly sampling → most configs seen 1-2 hours.
    assert!((1.0..=2.0).contains(&stats.mean_hours), "mean {}h", stats.mean_hours);
    let max_span = stats.duration_histogram.keys().max().copied().unwrap_or(0);
    assert!(max_span <= 3, "no config should live ≥4 hourly scans: {max_span}");
}

#[test]
fn sec435_connectivity_probe_shape() {
    let mut world = World::build(EcosystemConfig::tiny());
    // Probe a few days in the early (high-churn) window.
    let mut reports = Vec::new();
    for day in [5u64, 10, 15, 20, 25, 30] {
        world.step_to_day(day);
        reports.extend(connectivity_probe(&world));
    }
    let summary = sec435_connectivity(&reports);
    assert!(summary.occurrences > 0);
    assert!(summary.distinct_domains <= summary.occurrences);
    assert!(summary.any_unreachable <= summary.occurrences);
}

#[test]
fn tab9_chain_audit_shape() {
    // A larger sample than tiny() so the secure/insecure split is
    // statistically stable.
    let cfg = EcosystemConfig { population: 1_500, list_size: 1_200, ..EcosystemConfig::tiny() };
    let mut world = World::build(cfg);
    world.step_to_day(1);
    let audit = tab9_chain_audit(&world);
    // Some signed domains on both sides of the HTTPS split.
    assert!(audit.without_https.0 > 0, "{audit:?}");
    assert!(audit.with_https.0 > 0, "{audit:?}");
    // The paper's key claim: HTTPS-publishing (Cloudflare-heavy) domains
    // have a much higher insecure ratio than non-publishing domains.
    assert!(audit.insecure_pct_with_https() > audit.insecure_pct_without_https(), "{audit}");
}

#[test]
fn rank_distribution_shapes() {
    let (_world, store) = campaign_store();
    let days = store.days();
    let phase1: Vec<u32> = days.iter().copied().filter(|d| *d < 85).collect();
    let fig8 = fig8_rank_distribution(&store, &phase1, None);
    // Overlapping domains skew toward better ranks: their first-bucket
    // share should beat their last-bucket share.
    let first_bucket = fig8.set_a.first().copied().unwrap_or(0);
    let last_bucket = fig8.set_a.last().copied().unwrap_or(0);
    assert!(first_bucket >= last_bucket, "fig8 shape: {fig8}");

    let noncf = analysis::adoption::noncf_adopter_ids(&store);
    let fig9 = fig8_rank_distribution(&store, &phase1, Some(&noncf));
    let total: usize = fig9.set_a.iter().sum();
    assert!(total > 0, "non-CF adopters must be bucketed");
}
