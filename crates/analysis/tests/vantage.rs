//! End-to-end acceptance test for the multi-vantage subsystem: a
//! campaign over three distinct resolver profiles (pinned, rotating,
//! randomized) must reproduce the paper's §4.2.3 resolver-view
//! comparison — at least one cross-vantage disagreement, confined to
//! mixed-provider NS zones — and the whole pipeline must be
//! thread-count-invariant.

use analysis::vantage_diff;
use ecosystem::{EcosystemConfig, World};
use resolver::VantagePoint;
use scanner::{combined_csv, Campaign};

fn campaign() -> Campaign {
    Campaign {
        sample_days: vec![0, 2, 4, 6, 8],
        scan_www: true,
        threads: 2,
        vantages: VantagePoint::presets(),
    }
}

#[test]
fn vantage_diff_reports_mixed_ns_disagreements() {
    let mut world = World::build(EcosystemConfig::tiny());
    let stores = campaign().run_vantages(&mut world);
    assert_eq!(stores.len(), 3);
    assert_eq!(
        stores.iter().map(|s| s.vantage().to_string()).collect::<Vec<_>>(),
        vec!["google", "cloudflare", "isp"]
    );

    let report = vantage_diff(&stores);
    assert_eq!(report.days, vec![0, 2, 4, 6, 8]);
    assert!(
        report.has_disagreements(),
        "three selection strategies over mixed-NS zones must disagree somewhere"
    );

    // Every disagreement must be explained by a mixed-provider NS set:
    // zones served identically by every endpoint cannot depend on the
    // selection strategy.
    for d in &report.disagreements {
        let domain = world.domain(d.domain_id);
        assert!(
            domain.secondary_provider.is_some(),
            "disagreement on {} (day {}) which has a single-provider NS set",
            domain.apex,
            d.day
        );
        assert!(!d.present_in.is_empty() && !d.absent_in.is_empty());
    }

    // The report totals line up.
    let total: usize = report.per_day.values().sum();
    assert_eq!(total, report.disagreements.len());

    // Rendered report mentions each view.
    let text = report.to_string();
    for v in ["google", "cloudflare", "isp"] {
        assert!(text.contains(v), "report must mention vantage {v}");
    }
}

#[test]
fn vantage_pipeline_is_thread_count_invariant_end_to_end() {
    // The acceptance criterion: byte-identical per-vantage stores (and
    // therefore identical diff reports) across threads {1, 4}, with a
    // Random-strategy vantage in the matrix.
    let run = |threads: usize| -> (String, String) {
        let mut world = World::build(EcosystemConfig::tiny());
        let c = Campaign { threads, ..campaign() };
        let stores = c.run_vantages(&mut world);
        (combined_csv(&stores), vantage_diff(&stores).to_string())
    };
    let (csv1, report1) = run(1);
    let (csv4, report4) = run(4);
    assert_eq!(csv1, csv4, "combined per-vantage CSV diverged between threads=1 and threads=4");
    assert_eq!(report1, report4);
}

#[test]
fn pinned_vantage_is_stable_where_rotating_vantages_flap() {
    let mut world = World::build(EcosystemConfig::tiny());
    let stores = campaign().run_vantages(&mut world);
    let report = vantage_diff(&stores);

    // The First-pinned profile (cloudflare preset) always asks the same
    // endpoint, so its view of a mixed zone never flaps; rotating and
    // random views carry all the flapping the diff surfaces.
    let by_name: std::collections::HashMap<&str, f64> =
        report.summaries.iter().map(|s| (s.vantage.as_str(), s.flapping_rate)).collect();
    let pinned = by_name["cloudflare"];
    let rotating = by_name["google"];
    let random = by_name["isp"];
    assert!(
        rotating >= pinned && random >= pinned,
        "pinned view should flap no more than rotating ({pinned} vs {rotating}/{random})"
    );
    assert!(rotating > 0.0 || random > 0.0, "rotating/random views must flap on mixed-NS zones");
}

#[test]
fn instrumented_diff_carries_per_vantage_hit_rates() {
    // The telemetry-sourced column: diffing VantageRuns fills
    // cache_hit_rate per vantage, and the presets separate exactly as
    // their profiles predict at daily cadence — validating vantages
    // (google, cloudflare) re-serve DNSSEC material from their caches,
    // while the non-validating isp profile barely revisits cached keys
    // (in-day queries are deduped and the intra-day clock is frozen).
    let mut world = World::build(EcosystemConfig::tiny());
    let runs = campaign().run_vantages_instrumented(&mut world);
    let report = analysis::vantage_diff_runs(&runs);

    let by_name: std::collections::HashMap<&str, f64> = report
        .summaries
        .iter()
        .map(|s| (s.vantage.as_str(), s.cache_hit_rate.expect("instrumented runs carry a rate")))
        .collect();
    for rate in by_name.values() {
        assert!((0.0..=1.0).contains(rate));
    }
    assert!(by_name["google"] > by_name["isp"], "validating beats non-validating: {by_name:?}");
    assert!(by_name["cloudflare"] > by_name["isp"]);

    // The column renders, and the diff itself matches the bare-store path.
    let text = report.to_string();
    assert!(text.contains("cache-hit"), "report must render the hit-rate column:\n{text}");
    let stores: Vec<_> = runs.into_iter().map(|r| r.store).collect();
    let bare = vantage_diff(&stores);
    assert_eq!(bare.disagreements, report.disagreements);
    assert!(bare.summaries.iter().all(|s| s.cache_hit_rate.is_none()));
}
