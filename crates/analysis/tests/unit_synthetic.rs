//! Fast unit tests of analysis functions over hand-built observation
//! stores (no world construction), pinning the exact arithmetic.

use analysis::*;
use scanner::{flags, NsCategory, Observation, OrgId, SnapshotStore};

fn obs(day: u32, id: u32, f: u32, cat: NsCategory, org: u32) -> Observation {
    Observation {
        day,
        domain_id: id,
        rank: id + 1,
        flags: f,
        ns_category: cat as u8,
        org: if org == u32::MAX { OrgId::NONE } else { OrgId(org) },
        min_priority: if f & flags::ALIAS_MODE != 0 { 0 } else { 1 },
    }
}

const H: u32 = flags::HTTPS_PRESENT;

#[test]
fn tab2_exact_shares() {
    let mut store = SnapshotStore::new();
    store.push_day(
        0,
        vec![
            obs(0, 1, H, NsCategory::FullCloudflare, 0),
            obs(0, 2, H, NsCategory::FullCloudflare, 0),
            obs(0, 3, H, NsCategory::NoneCloudflare, 1),
            obs(0, 4, H, NsCategory::PartialCloudflare, 1),
            obs(0, 5, 0, NsCategory::FullCloudflare, 0), // no HTTPS: excluded
        ],
    );
    let t = tab2_ns_category(&store);
    assert!((t.full_mean - 50.0).abs() < 1e-9);
    assert!((t.none_mean - 25.0).abs() < 1e-9);
    assert!((t.partial_mean - 25.0).abs() < 1e-9);
}

#[test]
fn tab3_distinct_domain_counting() {
    let mut store = SnapshotStore::new();
    let ename = store.orgs.intern("eName");
    let google = store.orgs.intern("Google");
    store.push_day(
        0,
        vec![
            obs(0, 1, H, NsCategory::NoneCloudflare, ename.0),
            obs(0, 2, H, NsCategory::NoneCloudflare, ename.0),
            obs(0, 3, H, NsCategory::NoneCloudflare, google.0),
        ],
    );
    // Same domain again on a later day must not double-count.
    store.push_day(5, vec![obs(5, 1, H, NsCategory::NoneCloudflare, ename.0)]);
    let t = tab3_top_noncf(&store);
    assert_eq!(t.providers, vec![("eName".to_string(), 2), ("Google".to_string(), 1)]);
}

#[test]
fn sec423_classification() {
    let mut store = SnapshotStore::new();
    // d1: intermittent, same full-CF category (proxied toggle).
    // d2: intermittent, category changes (migration).
    // d3: always on (not intermittent).
    // d4: intermittent via lost NS.
    store.push_day(
        0,
        vec![
            obs(0, 1, H, NsCategory::FullCloudflare, 0),
            obs(0, 2, H, NsCategory::FullCloudflare, 0),
            obs(0, 3, H, NsCategory::FullCloudflare, 0),
            obs(0, 4, H, NsCategory::FullCloudflare, 0),
        ],
    );
    store.push_day(
        1,
        vec![
            obs(1, 1, 0, NsCategory::FullCloudflare, 0),
            obs(1, 2, 0, NsCategory::NoneCloudflare, 1),
            obs(1, 3, H, NsCategory::FullCloudflare, 0),
            obs(1, 4, 0, NsCategory::NoNs, u32::MAX),
        ],
    );
    let b = sec423_intermittent(&store);
    assert_eq!(b.intermittent_total, 3);
    assert_eq!(b.same_ns, 1);
    assert_eq!(b.same_ns_cloudflare, 1);
    assert_eq!(b.ns_changed, 1);
    assert_eq!(b.lost_ns, 1);
}

#[test]
fn tab8_alpn_shares_and_sunset() {
    let mut store = SnapshotStore::new();
    store.push_day(
        0,
        vec![
            obs(
                0,
                1,
                H | flags::ALPN_H2 | flags::ALPN_H3 | flags::ALPN_H3_29,
                NsCategory::FullCloudflare,
                0,
            ),
            obs(0, 2, H | flags::ALPN_H2, NsCategory::FullCloudflare, 0),
        ],
    );
    store.push_day(
        30,
        vec![
            obs(30, 1, H | flags::ALPN_H2 | flags::ALPN_H3, NsCategory::FullCloudflare, 0),
            obs(30, 2, H | flags::NO_ALPN, NsCategory::FullCloudflare, 0),
        ],
    );
    let t = tab8_alpn(&store, 23);
    // h2: 3 of 4 apex observations.
    assert!((t.rows[1].1 - 75.0).abs() < 1e-9);
    // h3-29: 1/2 before the sunset, 0/2 after.
    assert!((t.h3_29_before - 50.0).abs() < 1e-9);
    assert!((t.h3_29_after - 0.0).abs() < 1e-9);
    // no-alpn row: 1 of 4.
    assert!((t.rows[5].1 - 25.0).abs() < 1e-9);
}

#[test]
fn fig12_run_lengths() {
    let mut store = SnapshotStore::new();
    let hint = H | flags::IPV4HINT;
    let matched = hint | flags::HINT_MATCH;
    // d1: match, miss, miss, match → one 2-day episode.
    // d2: miss on all days (>1 obs) → always mismatched.
    for (day, d1, d2) in
        [(0u32, matched, hint), (1, hint, hint), (2, hint, hint), (3, matched, hint)]
    {
        store.push_day(
            day,
            vec![
                obs(day, 1, d1, NsCategory::FullCloudflare, 0),
                obs(day, 2, d2, NsCategory::FullCloudflare, 0),
            ],
        );
    }
    let f = fig12_mismatch_durations(&store);
    assert_eq!(f.histogram.get(&2), Some(&1));
    assert_eq!(f.always_mismatched, 1);
    assert!((f.mean() - 2.0).abs() < 1e-9);
}

#[test]
fn fig13_series_counts_only_https() {
    let mut store = SnapshotStore::new();
    store.push_day(
        0,
        vec![
            obs(0, 1, H | flags::ECH, NsCategory::FullCloudflare, 0),
            obs(0, 2, H, NsCategory::FullCloudflare, 0),
            obs(0, 3, 0, NsCategory::FullCloudflare, 0),
        ],
    );
    let f = fig13_ech_share(&store);
    assert!((f.apex.points[0].1 - 50.0).abs() < 1e-9);
}

#[test]
fn fig5_validated_requires_both_flags() {
    let mut store = SnapshotStore::new();
    store.push_day(
        0,
        vec![
            obs(0, 1, H | flags::RRSIG | flags::AD, NsCategory::FullCloudflare, 0),
            obs(0, 2, H | flags::RRSIG, NsCategory::FullCloudflare, 0),
            obs(0, 3, H, NsCategory::FullCloudflare, 0),
            obs(0, 4, H, NsCategory::FullCloudflare, 0),
        ],
    );
    let f = fig5_dnssec_trend(&store);
    assert!((f.signed_apex.points[0].1 - 50.0).abs() < 1e-9);
    assert!((f.validated_apex.points[0].1 - 25.0).abs() < 1e-9);
}

#[test]
fn fig2_overlapping_phase_split() {
    let mut store = SnapshotStore::new();
    // Phase 1 (days 0,1): domains 1,2 overlap; 3 churns out.
    store.push_day(
        0,
        vec![
            obs(0, 1, H, NsCategory::FullCloudflare, 0),
            obs(0, 2, 0, NsCategory::FullCloudflare, 0),
            obs(0, 3, H, NsCategory::FullCloudflare, 0),
        ],
    );
    store.push_day(
        1,
        vec![
            obs(1, 1, H, NsCategory::FullCloudflare, 0),
            obs(1, 2, 0, NsCategory::FullCloudflare, 0),
        ],
    );
    // Phase 2 (day 10): only domain 2, now with HTTPS.
    store.push_day(10, vec![obs(10, 2, H, NsCategory::FullCloudflare, 0)]);
    let a = fig2_adoption(&store, 5);
    // Day 0 dynamic: 2/3 have HTTPS.
    assert!((a.dynamic_apex.points[0].1 - 66.66666).abs() < 1e-3);
    // Day 0 overlapping (phase 1 = {1,2}): 1/2.
    assert!((a.overlapping_apex.points[0].1 - 50.0).abs() < 1e-9);
    // Day 10 overlapping (phase 2 = {2}): 1/1.
    assert!((a.overlapping_apex.points[2].1 - 100.0).abs() < 1e-9);
}

#[test]
fn sec433_anomaly_distinct_counting() {
    let mut store = SnapshotStore::new();
    let bad = H | flags::EMPTY_SVCPARAMS;
    store.push_day(0, vec![obs(0, 1, bad, NsCategory::FullCloudflare, 0)]);
    store.push_day(1, vec![obs(1, 1, bad, NsCategory::FullCloudflare, 0)]);
    let a = sec433_anomalies(&store);
    assert_eq!(a.empty_servicemode, 1, "distinct domains, not observations");
}
