//! Cross-vantage comparison (§4.2.3's resolver-view experiment): diff
//! the labelled per-vantage [`SnapshotStore`]s a multi-vantage campaign
//! produces, surfacing domains whose HTTPS record is visible through one
//! resolver view but not another, per-day disagreement counts, and
//! per-vantage flapping rates.
//!
//! The interesting population is mixed-provider NS zones: one provider's
//! servers publish the HTTPS record, the co-delegated provider's servers
//! do not, so whether a vantage sees the record is decided entirely by
//! its NS selection strategy. A `First`-pinned vantage reports a stable
//! view while rotating/randomized vantages flap — exactly the paper's
//! observation that the record's visibility depends on where you look
//! from.

use scanner::{ObservationSource, Projection, ScanFilter, SnapshotStore, VantageRun};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Columns the diff actually reads: HTTPS/www/failure bits and the
/// domain id. Disk-backed sources skip decoding the other columns.
const DIFF_PROJECTION: Projection = Projection::FLAGS.with(Projection::DOMAIN_ID);

/// One cross-vantage disagreement: a (day, name) whose HTTPS presence
/// differs between resolver views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VantageDisagreement {
    /// Scan day.
    pub day: u32,
    /// Universe domain id.
    pub domain_id: u32,
    /// Whether this is the www observation.
    pub is_www: bool,
    /// Vantage labels that saw the HTTPS record.
    pub present_in: Vec<String>,
    /// Vantage labels that did not.
    pub absent_in: Vec<String>,
}

/// Per-vantage summary statistics.
#[derive(Debug, Clone)]
pub struct VantageSummary {
    /// Vantage label.
    pub vantage: String,
    /// Mean HTTPS-positive apex count per day.
    pub mean_positive: f64,
    /// Flapping rate: fraction of domains observed on every day whose
    /// HTTPS presence changed between consecutive sampled days.
    pub flapping_rate: f64,
    /// Cache-level hit rate of this vantage's resolver over the whole
    /// campaign, sourced from the telemetry registries
    /// ([`vantage_diff_runs`]); `None` when diffing bare stores.
    pub cache_hit_rate: Option<f64>,
    /// Total rows whose resolution failed outright
    /// ([`scanner::flags::RESOLUTION_FAILED`]) over the common days.
    pub resolution_failures: usize,
    /// Subset of [`Self::resolution_failures`] that were timeout-shaped
    /// ([`scanner::flags::RESOLUTION_TIMEOUT`]): the query went out but
    /// ran out the retransmit budget — loss/lameness as seen from this
    /// vantage, as opposed to NXDOMAIN-shaped failures.
    pub timeouts: usize,
}

/// The full cross-vantage diff report.
#[derive(Debug, Clone)]
pub struct VantageDiffReport {
    /// Vantage labels, in store order.
    pub vantages: Vec<String>,
    /// Days common to every store (only these are compared).
    pub days: Vec<u32>,
    /// Every cross-vantage disagreement, in (day, domain, www) order.
    pub disagreements: Vec<VantageDisagreement>,
    /// Disagreement count per day.
    pub per_day: BTreeMap<u32, usize>,
    /// Distinct domains with at least one disagreement.
    pub disagreeing_domains: BTreeSet<u32>,
    /// Per-vantage summaries (positive counts, flapping).
    pub summaries: Vec<VantageSummary>,
}

impl VantageDiffReport {
    /// Whether any resolver views disagreed.
    pub fn has_disagreements(&self) -> bool {
        !self.disagreements.is_empty()
    }
}

impl std::fmt::Display for VantageDiffReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Cross-vantage diff ({} views, {} days)",
            self.vantages.len(),
            self.days.len()
        )?;
        for s in &self.summaries {
            write!(
                f,
                "  {:<12} mean HTTPS-positive {:8.1}/day   flapping {:5.2}%",
                s.vantage,
                s.mean_positive,
                100.0 * s.flapping_rate
            )?;
            if s.resolution_failures > 0 {
                write!(f, "   failed {} (timeout {})", s.resolution_failures, s.timeouts)?;
            }
            match s.cache_hit_rate {
                Some(rate) => writeln!(f, "   cache-hit {:5.2}%", 100.0 * rate)?,
                None => writeln!(f)?,
            }
        }
        writeln!(
            f,
            "  disagreements: {} rows over {} domains",
            self.disagreements.len(),
            self.disagreeing_domains.len()
        )?;
        for (day, n) in &self.per_day {
            if *n > 0 {
                writeln!(f, "    day {day:>4}: {n}")?;
            }
        }
        Ok(())
    }
}

/// Presence key: (domain, www-flag) → HTTPS seen. Skips rows whose
/// resolution failed outright (no view to compare — the `everywhere`
/// filter in [`vantage_diff_sources`] then drops the name for that day).
fn presence_of(source: &dyn ObservationSource, day: u32) -> HashMap<(u32, bool), bool> {
    let mut map = HashMap::new();
    source.for_day_projected(day, DIFF_PROJECTION, &mut |obs| {
        map.extend(
            obs.iter()
                .filter(|o| !o.has(scanner::flags::RESOLUTION_FAILED))
                .map(|o| ((o.domain_id, o.is_www()), o.https())),
        );
    });
    map
}

/// Diff per-vantage stores produced by one multi-vantage campaign run.
///
/// Compares the days present in *every* store (a store missing a day
/// contributes nothing for it) and reports every (day, name) where at
/// least two views disagree about HTTPS presence. For stores bundled
/// with telemetry, [`vantage_diff_runs`] adds the cache-hit-rate
/// column.
pub fn vantage_diff(stores: &[SnapshotStore]) -> VantageDiffReport {
    let sources: Vec<&dyn ObservationSource> =
        stores.iter().map(|s| s as &dyn ObservationSource).collect();
    vantage_diff_sources(&sources)
}

/// Diff any mix of observation sources — in-memory [`SnapshotStore`]s or
/// disk-backed [`scanner::StoreReader`]s — one streamed day at a time,
/// never materializing more than one day per source.
pub fn vantage_diff_sources(sources: &[&dyn ObservationSource]) -> VantageDiffReport {
    let vantages: Vec<String> = sources.iter().map(|s| s.vantage().to_string()).collect();

    // Days common to all sources.
    let mut days: Vec<u32> = match sources.first() {
        Some(s) => s.days(),
        None => Vec::new(),
    };
    for s in sources.iter().skip(1) {
        let own: BTreeSet<u32> = s.days().into_iter().collect();
        days.retain(|d| own.contains(d));
    }

    let mut diff = DayDiffs::default();
    for &day in &days {
        let views: Vec<HashMap<(u32, bool), bool>> =
            sources.iter().map(|s| presence_of(*s, day)).collect();
        diff.fold_day(day, &views, &vantages);
    }
    let DayDiffs { disagreements, per_day, disagreeing_domains } = diff;

    // One streaming pass per source over the common days: positive and
    // failure tallies plus the per-name presence timelines for flapping.
    let common: BTreeSet<u32> = days.iter().copied().collect();
    let summaries = sources
        .iter()
        .map(|s| {
            let mut tally = SourceTally::default();
            s.for_each_day_filtered(common_filter(&days), &mut |day, obs| {
                if !common.contains(&day) {
                    return;
                }
                for o in obs {
                    if !o.is_www() && o.https() {
                        tally.positives += 1;
                    }
                    if o.has(scanner::flags::RESOLUTION_FAILED) {
                        tally.resolution_failures += 1;
                        if o.has(scanner::flags::RESOLUTION_TIMEOUT) {
                            tally.timeouts += 1;
                        }
                    }
                    tally.timelines.entry((o.domain_id, o.is_www())).or_default().push(o.https());
                }
            });
            tally.into_summary(s.vantage(), days.len())
        })
        .collect();

    VantageDiffReport { vantages, days, disagreements, per_day, disagreeing_domains, summaries }
}

/// Day-range-pruned scan filter over the common days (every day when
/// there are none — the visitor re-checks membership either way).
fn common_filter(days: &[u32]) -> ScanFilter {
    let filter = ScanFilter::projected(DIFF_PROJECTION);
    match (days.first(), days.last()) {
        (Some(&first), Some(&last)) => filter.days(first, last),
        _ => filter,
    }
}

/// Disagreement accumulators, folded one day at a time in day order —
/// the single diff loop both the sequential and parallel scans share, so
/// their reports cannot drift apart.
#[derive(Default)]
struct DayDiffs {
    disagreements: Vec<VantageDisagreement>,
    per_day: BTreeMap<u32, usize>,
    disagreeing_domains: BTreeSet<u32>,
}

impl DayDiffs {
    fn fold_day(&mut self, day: u32, views: &[HashMap<(u32, bool), bool>], vantages: &[String]) {
        let mut count = 0usize;
        // Keys present in every view, in deterministic order.
        let keys: BTreeSet<(u32, bool)> = match views.first() {
            Some(v) => v.keys().copied().collect(),
            None => BTreeSet::new(),
        };
        for key in keys {
            let mut present_in = Vec::new();
            let mut absent_in = Vec::new();
            let mut everywhere = true;
            for (view, label) in views.iter().zip(vantages) {
                match view.get(&key) {
                    Some(true) => present_in.push(label.clone()),
                    Some(false) => absent_in.push(label.clone()),
                    None => everywhere = false,
                }
            }
            if everywhere && !present_in.is_empty() && !absent_in.is_empty() {
                self.disagreements.push(VantageDisagreement {
                    day,
                    domain_id: key.0,
                    is_www: key.1,
                    present_in,
                    absent_in,
                });
                self.disagreeing_domains.insert(key.0);
                count += 1;
            }
        }
        self.per_day.insert(day, count);
    }
}

/// Per-source summary tallies accumulated during one streaming pass.
#[derive(Default)]
struct SourceTally {
    positives: usize,
    resolution_failures: usize,
    timeouts: usize,
    timelines: HashMap<(u32, bool), Vec<bool>>,
}

impl SourceTally {
    fn into_summary(self, vantage: &str, day_count: usize) -> VantageSummary {
        let mean_positive =
            if day_count == 0 { 0.0 } else { self.positives as f64 / day_count as f64 };
        // Flapping: domains observed every day whose presence changed
        // between consecutive sampled days.
        let full: Vec<&Vec<bool>> =
            self.timelines.values().filter(|t| t.len() == day_count).collect();
        let flapped = full.iter().filter(|t| t.windows(2).any(|w| w[0] != w[1])).count();
        let flapping_rate = if full.is_empty() { 0.0 } else { flapped as f64 / full.len() as f64 };
        VantageSummary {
            vantage: vantage.to_string(),
            mean_positive,
            flapping_rate,
            cache_hit_rate: None,
            resolution_failures: self.resolution_failures,
            timeouts: self.timeouts,
        }
    }
}

/// [`vantage_diff_sources`] with one reader thread per source.
///
/// Each source is streamed exactly once on its own scoped thread, which
/// builds the per-day presence map *and* the summary tallies in the same
/// pass, sending each day's presence through a bounded channel (at most
/// two days in flight per source — the multi-vantage analogue of the
/// reader's one-day residency bound). The coordinator receives one view
/// per source per common day, in day order, and folds them through the
/// same [`DayDiffs`] loop and [`SourceTally`] arithmetic as the
/// sequential pass — the report, including every floating-point field,
/// is byte-identical to [`vantage_diff_sources`].
pub fn vantage_diff_parallel(sources: &[&dyn ObservationSource]) -> VantageDiffReport {
    let vantages: Vec<String> = sources.iter().map(|s| s.vantage().to_string()).collect();

    // Days common to all sources.
    let mut days: Vec<u32> = match sources.first() {
        Some(s) => s.days(),
        None => Vec::new(),
    };
    for s in sources.iter().skip(1) {
        let own: BTreeSet<u32> = s.days().into_iter().collect();
        days.retain(|d| own.contains(d));
    }
    let common: BTreeSet<u32> = days.iter().copied().collect();

    let mut diff = DayDiffs::default();
    let tallies: Vec<SourceTally> = std::thread::scope(|scope| {
        let mut receivers = Vec::with_capacity(sources.len());
        let mut handles = Vec::with_capacity(sources.len());
        for &source in sources {
            let (tx, rx) = std::sync::mpsc::sync_channel::<HashMap<(u32, bool), bool>>(2);
            receivers.push(rx);
            let (common, days) = (&common, &days);
            handles.push(scope.spawn(move || {
                let mut tally = SourceTally::default();
                source.for_each_day_filtered(common_filter(days), &mut |day, obs| {
                    if !common.contains(&day) {
                        return;
                    }
                    let mut presence = HashMap::with_capacity(obs.len());
                    for o in obs {
                        let failed = o.has(scanner::flags::RESOLUTION_FAILED);
                        if !failed {
                            presence.insert((o.domain_id, o.is_www()), o.https());
                        }
                        if !o.is_www() && o.https() {
                            tally.positives += 1;
                        }
                        if failed {
                            tally.resolution_failures += 1;
                            if o.has(scanner::flags::RESOLUTION_TIMEOUT) {
                                tally.timeouts += 1;
                            }
                        }
                        tally
                            .timelines
                            .entry((o.domain_id, o.is_www()))
                            .or_default()
                            .push(o.https());
                    }
                    // A full channel blocks here, bounding how far this
                    // reader can run ahead of the coordinator. A closed
                    // one means the coordinator is gone (it panicked);
                    // keep draining so the scan finishes cleanly.
                    let _ = tx.send(presence);
                });
                tally
            }));
        }
        for &day in &days {
            let views: Vec<HashMap<(u32, bool), bool>> = receivers
                .iter()
                .map(|rx| rx.recv().expect("vantage reader thread died mid-scan"))
                .collect();
            diff.fold_day(day, &views, &vantages);
        }
        drop(receivers);
        handles.into_iter().map(|h| h.join().expect("vantage reader thread panicked")).collect()
    });
    let DayDiffs { disagreements, per_day, disagreeing_domains } = diff;
    let summaries =
        tallies.into_iter().zip(&vantages).map(|(t, v)| t.into_summary(v, days.len())).collect();
    VantageDiffReport { vantages, days, disagreements, per_day, disagreeing_domains, summaries }
}

/// Diff an instrumented campaign's [`VantageRun`]s: identical to
/// [`vantage_diff`] over the bundled stores, plus a per-vantage
/// cache-hit-rate column sourced from each run's telemetry (the
/// resolver-cache view in which the preset profiles differ — e.g. the
/// non-validating `isp` preset revisits cached keys far less than the
/// validating `google`/`cloudflare` ones at daily cadence).
pub fn vantage_diff_runs(runs: &[VantageRun]) -> VantageDiffReport {
    let sources: Vec<&dyn ObservationSource> =
        runs.iter().map(|r| &r.store as &dyn ObservationSource).collect();
    let mut report = vantage_diff_sources(&sources);
    for (summary, run) in report.summaries.iter_mut().zip(runs) {
        summary.cache_hit_rate = Some(run.cache.hit_rate());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanner::{flags, Observation, OrgId};

    fn obs(day: u32, id: u32, https: bool) -> Observation {
        Observation {
            day,
            domain_id: id,
            rank: id + 1,
            flags: if https { flags::HTTPS_PRESENT } else { 0 },
            ns_category: 0,
            org: OrgId(0),
            min_priority: 1,
        }
    }

    fn store(vantage: &str, days: &[(u32, Vec<Observation>)]) -> SnapshotStore {
        let mut s = SnapshotStore::with_vantage(vantage);
        for (day, obs) in days {
            s.push_day(*day, obs.clone());
        }
        s
    }

    #[test]
    fn detects_cross_vantage_disagreement() {
        let a = store("pinned", &[(0, vec![obs(0, 1, true), obs(0, 2, true)])]);
        let b = store("random", &[(0, vec![obs(0, 1, true), obs(0, 2, false)])]);
        let report = vantage_diff(&[a, b]);
        assert!(report.has_disagreements());
        assert_eq!(report.disagreements.len(), 1);
        let d = &report.disagreements[0];
        assert_eq!((d.day, d.domain_id), (0, 2));
        assert_eq!(d.present_in, vec!["pinned".to_string()]);
        assert_eq!(d.absent_in, vec!["random".to_string()]);
        assert_eq!(report.per_day[&0], 1);
        assert!(report.disagreeing_domains.contains(&2));
    }

    #[test]
    fn agreement_produces_empty_report() {
        let a = store("x", &[(0, vec![obs(0, 1, true)]), (1, vec![obs(1, 1, true)])]);
        let b = store("y", &[(0, vec![obs(0, 1, true)]), (1, vec![obs(1, 1, true)])]);
        let report = vantage_diff(&[a, b]);
        assert!(!report.has_disagreements());
        assert_eq!(report.days, vec![0, 1]);
        assert_eq!(report.summaries[0].flapping_rate, 0.0);
    }

    #[test]
    fn flapping_rate_counts_presence_changes() {
        let a = store(
            "flappy",
            &[
                (0, vec![obs(0, 1, true), obs(0, 2, true)]),
                (1, vec![obs(1, 1, false), obs(1, 2, true)]),
            ],
        );
        let report = vantage_diff(std::slice::from_ref(&a));
        assert!((report.summaries[0].flapping_rate - 0.5).abs() < 1e-9);
        assert!((report.summaries[0].mean_positive - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_store_slice_yields_empty_report() {
        let report = vantage_diff(&[]);
        assert!(!report.has_disagreements());
        assert!(report.days.is_empty());
        assert!(report.vantages.is_empty());
        assert!(report.summaries.is_empty());
    }

    #[test]
    fn only_common_days_are_compared() {
        let a = store("a", &[(0, vec![obs(0, 1, true)]), (1, vec![obs(1, 1, false)])]);
        let b = store("b", &[(0, vec![obs(0, 1, true)])]);
        let report = vantage_diff(&[a, b]);
        assert_eq!(report.days, vec![0]);
        assert!(!report.has_disagreements());
    }

    #[test]
    fn failure_and_timeout_tallies_are_counted_per_vantage() {
        let mut failed = obs(0, 2, false);
        failed.flags |= flags::RESOLUTION_FAILED;
        let mut timed_out = obs(0, 3, false);
        timed_out.flags |= flags::RESOLUTION_FAILED | flags::RESOLUTION_TIMEOUT;
        let a = store("lossy", &[(0, vec![obs(0, 1, true), failed, timed_out])]);
        let b = store("clean", &[(0, vec![obs(0, 1, true), obs(0, 2, true), obs(0, 3, true)])]);
        let report = vantage_diff(&[a, b]);
        assert_eq!(report.summaries[0].resolution_failures, 2);
        assert_eq!(report.summaries[0].timeouts, 1);
        assert_eq!(report.summaries[1].resolution_failures, 0);
        assert_eq!(report.summaries[1].timeouts, 0);
        let text = report.to_string();
        assert!(text.contains("failed 2 (timeout 1)"));
    }

    #[test]
    fn display_renders_summary_lines() {
        let a = store("pinned", &[(0, vec![obs(0, 1, true)])]);
        let b = store("random", &[(0, vec![obs(0, 1, false)])]);
        let text = vantage_diff(&[a, b]).to_string();
        assert!(text.contains("Cross-vantage diff"));
        assert!(text.contains("pinned"));
        assert!(text.contains("disagreements: 1 rows over 1 domains"));
    }
}
