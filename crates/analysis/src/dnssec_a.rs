//! DNSSEC analyses: Fig 5 (signed/validated HTTPS RR trends), Fig 14
//! (signed ECH records), and Table 9 (full chain audit with the
//! with/without-HTTPS and Cloudflare/non-CF splits).

use crate::Series;
use dns_wire::RecordType;
use ecosystem::{well_known, World};
use resolver::{RecursiveResolver, ResolverConfig};
use scanner::{flags, ObservationSource, Projection, ScanFilter};

/// Fig 5 + Fig 14 series.
#[derive(Debug, Clone)]
pub struct DnssecSeries {
    /// % of HTTPS apex RRsets with RRSIG.
    pub signed_apex: Series,
    /// % of HTTPS apex RRsets with RRSIG *and* the AD bit.
    pub validated_apex: Series,
    /// % of HTTPS www RRsets with RRSIG.
    pub signed_www: Series,
    /// % of HTTPS www RRsets with RRSIG and AD.
    pub validated_www: Series,
    /// Fig 14: % of ECH-bearing apex RRsets with RRSIG.
    pub signed_ech: Series,
    /// Fig 14: % of ECH-bearing apex RRsets with RRSIG and AD.
    pub validated_ech: Series,
}

impl std::fmt::Display for DnssecSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}{}{}{}",
            self.signed_apex,
            self.validated_apex,
            self.signed_www,
            self.validated_www,
            self.signed_ech,
            self.validated_ech
        )
    }
}

/// Compute Fig 5 / Fig 14 from the longitudinal store.
pub fn fig5_dnssec_trend(store: &dyn ObservationSource) -> DnssecSeries {
    // (www, needed flags, base filter) per series, one streaming pass.
    let configs: [(bool, u32, u32); 6] = [
        (false, flags::RRSIG, 0),
        (false, flags::RRSIG | flags::AD, 0),
        (true, flags::RRSIG, 0),
        (true, flags::RRSIG | flags::AD, 0),
        (false, flags::RRSIG, flags::ECH),
        (false, flags::RRSIG | flags::AD, flags::ECH),
    ];
    let mut points: [Vec<(u32, f64)>; 6] = Default::default();
    store.for_each_day_filtered(ScanFilter::projected(Projection::FLAGS), &mut |day, obs| {
        for (slot, &(www, need, base)) in configs.iter().enumerate() {
            let mut total = 0usize;
            let mut hit = 0usize;
            for o in obs {
                if o.is_www() != www || !o.https() || !o.has(base) {
                    continue;
                }
                total += 1;
                if o.has(need) {
                    hit += 1;
                }
            }
            points[slot]
                .push((day, if total == 0 { 0.0 } else { 100.0 * hit as f64 / total as f64 }));
        }
    });
    let [signed_apex, validated_apex, signed_www, validated_www, signed_ech, validated_ech] =
        points;
    let series = |label: &str, points: Vec<(u32, f64)>| Series { label: label.to_string(), points };
    DnssecSeries {
        signed_apex: series("fig5 apex %signed", signed_apex),
        validated_apex: series("fig5 apex %validated", validated_apex),
        signed_www: series("fig5 www %signed", signed_www),
        validated_www: series("fig5 www %validated", validated_www),
        signed_ech: series("fig14 ech %signed", signed_ech),
        validated_ech: series("fig14 ech %validated", validated_ech),
    }
}

/// Table 9: one-day DNSSEC chain audit.
#[derive(Debug, Clone, Default)]
pub struct ChainAudit {
    /// Domains without HTTPS RR: (signed, secure, insecure).
    pub without_https: (usize, usize, usize),
    /// Domains with HTTPS RR: (signed, secure, insecure).
    pub with_https: (usize, usize, usize),
    /// With HTTPS on Cloudflare NS: (signed, secure, insecure).
    pub with_https_cf: (usize, usize, usize),
    /// With HTTPS on non-Cloudflare NS: (signed, secure, insecure).
    pub with_https_noncf: (usize, usize, usize),
}

impl ChainAudit {
    fn row(
        f: &mut std::fmt::Formatter<'_>,
        label: &str,
        t: (usize, usize, usize),
    ) -> std::fmt::Result {
        let (signed, secure, insecure) = t;
        let pct = |n: usize| if signed == 0 { 0.0 } else { 100.0 * n as f64 / signed as f64 };
        writeln!(
            f,
            "  {label:<22} signed {signed:>5}  secure {secure:>5} ({:5.1}%)  insecure {insecure:>5} ({:5.1}%)",
            pct(secure),
            pct(insecure)
        )
    }

    /// Insecure share (%) among signed HTTPS-publishing domains.
    pub fn insecure_pct_with_https(&self) -> f64 {
        let (signed, _, insecure) = self.with_https;
        if signed == 0 {
            0.0
        } else {
            100.0 * insecure as f64 / signed as f64
        }
    }

    /// Insecure share (%) among signed domains without HTTPS records.
    pub fn insecure_pct_without_https(&self) -> f64 {
        let (signed, _, insecure) = self.without_https;
        if signed == 0 {
            0.0
        } else {
            100.0 * insecure as f64 / signed as f64
        }
    }
}

impl std::fmt::Display for ChainAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 9: DNSSEC chain audit")?;
        ChainAudit::row(f, "without HTTPS RR", self.without_https)?;
        ChainAudit::row(f, "with HTTPS RR", self.with_https)?;
        ChainAudit::row(f, "  - Cloudflare", self.with_https_cf)?;
        ChainAudit::row(f, "  - non-Cloudflare", self.with_https_noncf)
    }
}

/// Run the Table 9 audit against the world's current day, fetching and
/// validating chains through a fresh resolver (the paper's Unbound run).
pub fn tab9_chain_audit(world: &World) -> ChainAudit {
    let resolver = RecursiveResolver::new(
        world.network.clone(),
        world.registry.clone(),
        ResolverConfig { validate: true, ..Default::default() },
    );
    let mut audit = ChainAudit::default();
    for &id in world.today_list().ranked() {
        let d = world.domain(id);
        let is_cf = d.provider == well_known::CLOUDFLARE || d.provider == well_known::CF_CHINA;

        let https = resolver.resolve(&d.apex, RecordType::Https).ok();
        let has_https = https.as_ref().map(|r| r.is_positive()).unwrap_or(false);
        let (signed, secure) = if has_https {
            let res = https.expect("checked");
            (!res.rrsigs.is_empty(), res.ad())
        } else {
            // No HTTPS record: audit the zone via its DNSKEY chain.
            match resolver.resolve(&d.apex, RecordType::Dnskey) {
                Ok(res) if res.is_positive() => (true, res.ad()),
                _ => (false, false),
            }
        };
        if !signed {
            continue;
        }
        let bump = |t: &mut (usize, usize, usize)| {
            t.0 += 1;
            if secure {
                t.1 += 1;
            } else {
                t.2 += 1;
            }
        };
        if has_https {
            bump(&mut audit.with_https);
            if is_cf {
                bump(&mut audit.with_https_cf);
            } else {
                bump(&mut audit.with_https_noncf);
            }
        } else {
            bump(&mut audit.without_https);
        }
    }
    audit
}
