//! HTTPS RR parameter analyses: Table 4 (Cloudflare default vs
//! customized), Table 5 (Google/GoDaddy shapes), §4.3.3 anomalies,
//! Table 8 (ALPN shares), Fig 11 (IP-hint utilization/consistency),
//! Fig 12 (mismatch durations), §4.3.5 (connectivity).

use crate::Series;
use scanner::{flags, ConnectivityReport, NsCategory, ObservationSource, Projection, ScanFilter};
use std::collections::{BTreeMap, HashMap};

/// Table 4: Cloudflare default vs customized configuration shares.
#[derive(Debug, Clone)]
pub struct CfConfigSplit {
    /// % of CF-NS HTTPS apexes with the default configuration.
    pub default_pct: f64,
    /// % with a customized configuration.
    pub customized_pct: f64,
}

impl std::fmt::Display for CfConfigSplit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 4: Cloudflare HTTPS configuration")?;
        writeln!(f, "  Default    : {:6.2}%", self.default_pct)?;
        writeln!(f, "  Customized : {:6.2}%", self.customized_pct)
    }
}

/// Compute Table 4 over all days (average of daily shares).
pub fn tab4_cf_config(store: &dyn ObservationSource) -> CfConfigSplit {
    let mut daily = Vec::new();
    let proj = ScanFilter::projected(Projection::FLAGS.with(Projection::NS_CATEGORY));
    store.for_each_day_filtered(proj, &mut |_, obs| {
        let mut default = 0usize;
        let mut total = 0usize;
        for o in obs {
            if o.is_www()
                || !o.https()
                || NsCategory::from_u8(o.ns_category) != NsCategory::FullCloudflare
            {
                continue;
            }
            total += 1;
            if o.has(flags::CF_DEFAULT) {
                default += 1;
            }
        }
        if total > 0 {
            daily.push(100.0 * default as f64 / total as f64);
        }
    });
    let default_pct =
        if daily.is_empty() { 0.0 } else { daily.iter().sum::<f64>() / daily.len() as f64 };
    CfConfigSplit { default_pct, customized_pct: 100.0 - default_pct }
}

/// Table 5: record shapes per non-CF provider org.
#[derive(Debug, Clone)]
pub struct ProviderShapes {
    /// org → (alias-mode count, service-mode count, empty-params count).
    pub shapes: BTreeMap<String, (usize, usize, usize)>,
}

impl std::fmt::Display for ProviderShapes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 5: HTTPS shapes by provider (alias / service / empty)")?;
        for (org, (alias, service, empty)) in &self.shapes {
            writeln!(f, "  {org:<28} {alias:>4} {service:>4} {empty:>4}")?;
        }
        Ok(())
    }
}

/// Compute Table 5 from the last sampled day.
pub fn tab5_other_providers(store: &dyn ObservationSource) -> ProviderShapes {
    let mut shapes: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    let Some(&last) = store.days().last() else {
        return ProviderShapes { shapes };
    };
    let proj = Projection::FLAGS.with(Projection::NS_CATEGORY).with(Projection::ORG);
    store.for_day_projected(last, proj, &mut |obs| {
        for o in obs {
            if o.is_www() || !o.https() {
                continue;
            }
            if NsCategory::from_u8(o.ns_category) != NsCategory::NoneCloudflare {
                continue;
            }
            let org = store.org_name(o.org).unwrap_or("<unknown>").to_string();
            let entry = shapes.entry(org).or_default();
            if o.has(flags::ALIAS_MODE) {
                entry.0 += 1;
            } else {
                entry.1 += 1;
                if o.has(flags::EMPTY_SVCPARAMS) {
                    entry.2 += 1;
                }
            }
        }
    });
    ProviderShapes { shapes }
}

/// §4.3.3 / Appendix E.1 anomaly counts (over all observations).
#[derive(Debug, Clone, Default)]
pub struct AnomalyCounts {
    /// ServiceMode records with empty SvcParams (distinct domains).
    pub empty_servicemode: usize,
    /// AliasMode records with `.` as TargetName.
    pub alias_self_dot: usize,
    /// IP-address literals as TargetName.
    pub ip_literal_target: usize,
    /// Domains publishing priority lists (min priority observed > 0 with
    /// many records is summarized by min-priority histogram).
    pub priority_histogram: BTreeMap<u16, usize>,
}

impl std::fmt::Display for AnomalyCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Sec 4.3.3: SvcPriority / TargetName anomalies")?;
        writeln!(f, "  ServiceMode with empty SvcParams : {}", self.empty_servicemode)?;
        writeln!(f, "  AliasMode with '.' TargetName    : {}", self.alias_self_dot)?;
        writeln!(f, "  IP literal TargetName            : {}", self.ip_literal_target)?;
        writeln!(f, "  min-priority histogram           : {:?}", self.priority_histogram)
    }
}

/// Compute the anomaly counts (distinct domains over the whole study).
pub fn sec433_anomalies(store: &dyn ObservationSource) -> AnomalyCounts {
    use std::collections::HashSet;
    let mut empty: HashSet<u32> = HashSet::new();
    let mut self_dot: HashSet<u32> = HashSet::new();
    let mut ip_lit: HashSet<u32> = HashSet::new();
    let mut hist: BTreeMap<u16, usize> = BTreeMap::new();
    let mut seen_prio: HashSet<u32> = HashSet::new();
    let proj = ScanFilter::projected(
        Projection::FLAGS.with(Projection::DOMAIN_ID).with(Projection::MIN_PRIORITY),
    );
    store.for_each_day_filtered(proj, &mut |_, obs| {
        for o in obs {
            if o.is_www() || !o.https() {
                continue;
            }
            if o.has(flags::EMPTY_SVCPARAMS) {
                empty.insert(o.domain_id);
            }
            if o.has(flags::TARGET_SELF_DOT) {
                self_dot.insert(o.domain_id);
            }
            if o.has(flags::IP_LITERAL_TARGET) {
                ip_lit.insert(o.domain_id);
            }
            if seen_prio.insert(o.domain_id) {
                *hist.entry(o.min_priority).or_default() += 1;
            }
        }
    });
    AnomalyCounts {
        empty_servicemode: empty.len(),
        alias_self_dot: self_dot.len(),
        ip_literal_target: ip_lit.len(),
        priority_histogram: hist,
    }
}

/// Table 8: ALPN protocol shares among HTTPS apex/www observations.
#[derive(Debug, Clone)]
pub struct AlpnShares {
    /// Rows: (protocol label, apex %, www %).
    pub rows: Vec<(String, f64, f64)>,
    /// h3-29 share before the sunset day (apex %).
    pub h3_29_before: f64,
    /// h3-29 share on/after the sunset day (apex %).
    pub h3_29_after: f64,
}

impl std::fmt::Display for AlpnShares {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 8: ALPN shares among domains with HTTPS RR (apex%, www%)")?;
        for (proto, apex, www) in &self.rows {
            writeln!(f, "  {proto:<10} {apex:6.2}% {www:6.2}%")?;
        }
        writeln!(
            f,
            "  h3-29 before sunset: {:.2}%  after: {:.2}%",
            self.h3_29_before, self.h3_29_after
        )
    }
}

/// Compute Table 8; `sunset_day` is the h3-29 cutoff (2023-05-31).
pub fn tab8_alpn(store: &dyn ObservationSource, sunset_day: u32) -> AlpnShares {
    let mut apex = [0usize; 6]; // h1, h2, h3, h3-29, h3-27, no-alpn
    let mut www = [0usize; 6];
    let mut apex_total = 0usize;
    let mut www_total = 0usize;
    let mut h3_29_before = (0usize, 0usize);
    let mut h3_29_after = (0usize, 0usize);
    store.for_each_day_filtered(ScanFilter::projected(Projection::FLAGS), &mut |_, obs| {
        for o in obs {
            if !o.https() {
                continue;
            }
            let bucket = if o.is_www() { &mut www } else { &mut apex };
            let total = if o.is_www() { &mut www_total } else { &mut apex_total };
            *total += 1;
            if o.has(flags::ALPN_H1) {
                bucket[0] += 1;
            }
            if o.has(flags::ALPN_H2) {
                bucket[1] += 1;
            }
            if o.has(flags::ALPN_H3) {
                bucket[2] += 1;
            }
            if o.has(flags::ALPN_H3_29) {
                bucket[3] += 1;
            }
            if o.has(flags::ALPN_H3_27) {
                bucket[4] += 1;
            }
            if o.has(flags::NO_ALPN) {
                bucket[5] += 1;
            }
            if !o.is_www() {
                let side = if o.day < sunset_day { &mut h3_29_before } else { &mut h3_29_after };
                side.1 += 1;
                if o.has(flags::ALPN_H3_29) {
                    side.0 += 1;
                }
            }
        }
    });
    let pct = |n: usize, d: usize| if d == 0 { 0.0 } else { 100.0 * n as f64 / d as f64 };
    let labels = ["HTTP/1.1", "HTTP/2", "HTTP/3", "HTTP/3-29", "HTTP/3-27", "no alpn"];
    let rows = labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l.to_string(), pct(apex[i], apex_total), pct(www[i], www_total)))
        .collect();
    AlpnShares {
        rows,
        h3_29_before: pct(h3_29_before.0, h3_29_before.1),
        h3_29_after: pct(h3_29_after.0, h3_29_after.1),
    }
}

/// Fig 11: hint utilization and consistency series.
#[derive(Debug, Clone)]
pub struct IpHintSeries {
    /// % of HTTPS apexes carrying ipv4hint.
    pub apex_utilization: Series,
    /// % of hint-bearing apexes whose hints match their A records.
    pub apex_match: Series,
    /// Same, for www names.
    pub www_utilization: Series,
    /// Match series for www names.
    pub www_match: Series,
}

impl std::fmt::Display for IpHintSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            self.apex_utilization, self.apex_match, self.www_utilization, self.www_match
        )
    }
}

/// Compute Fig 11.
pub fn fig11_iphints(store: &dyn ObservationSource) -> IpHintSeries {
    // (www, matching) per series slot, one streaming pass.
    let configs: [(bool, bool); 4] = [(false, false), (false, true), (true, false), (true, true)];
    let mut points: [Vec<(u32, f64)>; 4] = Default::default();
    store.for_each_day_filtered(ScanFilter::projected(Projection::FLAGS), &mut |day, obs| {
        for (slot, &(www, matching)) in configs.iter().enumerate() {
            let mut with_hint = 0usize;
            let mut matched = 0usize;
            let mut https_total = 0usize;
            for o in obs {
                if o.is_www() != www || !o.https() {
                    continue;
                }
                https_total += 1;
                if o.has(flags::IPV4HINT) {
                    with_hint += 1;
                    if o.has(flags::HINT_MATCH) {
                        matched += 1;
                    }
                }
            }
            let v = if matching {
                if with_hint == 0 {
                    100.0
                } else {
                    100.0 * matched as f64 / with_hint as f64
                }
            } else if https_total == 0 {
                0.0
            } else {
                100.0 * with_hint as f64 / https_total as f64
            };
            points[slot].push((day, v));
        }
    });
    let [apex_utilization, apex_match, www_utilization, www_match] = points;
    let series = |label: &str, points: Vec<(u32, f64)>| Series { label: label.to_string(), points };
    IpHintSeries {
        apex_utilization: series("fig11a apex %ipv4hint", apex_utilization),
        apex_match: series("fig11a apex %hint==A", apex_match),
        www_utilization: series("fig11b www %ipv4hint", www_utilization),
        www_match: series("fig11b www %hint==A", www_match),
    }
}

/// Fig 12: distribution of mismatch durations, in sampled-day units.
#[derive(Debug, Clone)]
pub struct MismatchDurations {
    /// duration (consecutive sampled days) → number of episodes.
    pub histogram: BTreeMap<u32, usize>,
    /// Domains mismatched on every sampled day.
    pub always_mismatched: usize,
}

impl MismatchDurations {
    /// Mean episode duration.
    pub fn mean(&self) -> f64 {
        let (mut n, mut sum) = (0usize, 0u64);
        for (d, c) in &self.histogram {
            n += c;
            sum += u64::from(*d) * *c as u64;
        }
        if n == 0 {
            f64::NAN
        } else {
            sum as f64 / n as f64
        }
    }
}

impl std::fmt::Display for MismatchDurations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 12: hint/A mismatch episode durations (sampled days)")?;
        for (d, c) in &self.histogram {
            writeln!(f, "  {d} days: {c}")?;
        }
        writeln!(f, "  always mismatched: {}", self.always_mismatched)
    }
}

/// Compute Fig 12 from consecutive-day mismatch runs.
pub fn fig12_mismatch_durations(store: &dyn ObservationSource) -> MismatchDurations {
    // domain → ordered (day, mismatched) for hint-bearing observations.
    let mut tracks: HashMap<u32, Vec<(u32, bool)>> = HashMap::new();
    let proj = ScanFilter::projected(Projection::FLAGS.with(Projection::DOMAIN_ID));
    store.for_each_day_filtered(proj, &mut |_, obs| {
        for o in obs {
            if o.is_www() || !o.https() || !o.has(flags::IPV4HINT) {
                continue;
            }
            tracks.entry(o.domain_id).or_default().push((o.day, !o.has(flags::HINT_MATCH)));
        }
    });
    let mut histogram: BTreeMap<u32, usize> = BTreeMap::new();
    let mut always = 0usize;
    for (_, mut seq) in tracks {
        seq.sort_by_key(|(d, _)| *d);
        let total = seq.len();
        let mismatch_days = seq.iter().filter(|(_, m)| *m).count();
        if mismatch_days == total && total > 1 {
            always += 1;
            continue;
        }
        let mut run = 0u32;
        for (_, mismatched) in seq {
            if mismatched {
                run += 1;
            } else if run > 0 {
                *histogram.entry(run).or_default() += 1;
                run = 0;
            }
        }
        if run > 0 {
            *histogram.entry(run).or_default() += 1;
        }
    }
    MismatchDurations { histogram, always_mismatched: always }
}

/// §4.3.5 connectivity summary.
#[derive(Debug, Clone, Default)]
pub struct ConnectivitySummary {
    /// Total mismatch occurrences probed.
    pub occurrences: usize,
    /// Distinct domains involved.
    pub distinct_domains: usize,
    /// Occurrences with at least one unreachable address.
    pub any_unreachable: usize,
    /// Reachable only via hint addresses.
    pub hint_only: usize,
    /// Reachable only via A addresses.
    pub a_only: usize,
}

impl std::fmt::Display for ConnectivitySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Sec 4.3.5: connectivity of mismatched domains")?;
        writeln!(f, "  occurrences           : {}", self.occurrences)?;
        writeln!(f, "  distinct domains      : {}", self.distinct_domains)?;
        writeln!(f, "  ≥1 unreachable address: {}", self.any_unreachable)?;
        writeln!(f, "  reachable hints-only  : {}", self.hint_only)?;
        writeln!(f, "  reachable A-only      : {}", self.a_only)
    }
}

/// Summarize connectivity probes collected over multiple days.
pub fn sec435_connectivity(reports: &[ConnectivityReport]) -> ConnectivitySummary {
    let mut summary = ConnectivitySummary { occurrences: reports.len(), ..Default::default() };
    let mut domains = std::collections::HashSet::new();
    for r in reports {
        domains.insert(r.domain_id);
        if r.any_unreachable() {
            summary.any_unreachable += 1;
        }
        if r.hint_only() {
            summary.hint_only += 1;
        }
        if r.a_only() {
            summary.a_only += 1;
        }
    }
    summary.distinct_domains = domains.len();
    summary
}
