//! # analysis
//!
//! One module per experiment in the paper's evaluation: each function
//! turns the scanner's longitudinal [`SnapshotStore`] (plus, where the
//! paper itself used ground truth such as Tranco ranks, the ecosystem
//! model) into the statistic the corresponding table or figure reports.
//!
//! Naming follows DESIGN.md's experiment index (`fig2_adoption`,
//! `tab2_ns_category`, …), and every result type implements `Display`
//! so the bench harness can print paper-style tables.
//!
//! Every analysis takes `&dyn ObservationSource` and streams the
//! campaign day-by-day, so it runs identically over an in-memory
//! [`SnapshotStore`] or a disk-backed [`scanner::StoreReader`] — with
//! byte-identical reports, and bounded resident memory in the disk
//! case (a property the workspace's persistence tests pin).

#![warn(missing_docs)]

pub mod adoption;
pub mod dnssec_a;
pub mod ech;
pub mod params;
pub mod providers;
pub mod vantage_diff;

pub use adoption::{fig2_adoption, fig8_rank_distribution, AdoptionSeries, RankBuckets};
pub use dnssec_a::{fig5_dnssec_trend, tab9_chain_audit, ChainAudit, DnssecSeries};
pub use ech::{fig13_ech_share, fig4_rotation, EchShareSeries, RotationStats};
pub use params::{
    fig11_iphints, fig12_mismatch_durations, sec433_anomalies, sec435_connectivity, tab4_cf_config,
    tab5_other_providers, tab8_alpn, AlpnShares, AnomalyCounts, CfConfigSplit, ConnectivitySummary,
    IpHintSeries, MismatchDurations, ProviderShapes,
};
pub use providers::{
    fig10_noncf_domains, fig3_noncf_provider_count, sec423_intermittent, tab2_ns_category,
    tab3_top_noncf, IntermittentBreakdown, NoncfSeries, NsCategoryShares, TopProviders,
};
pub use vantage_diff::{
    vantage_diff, vantage_diff_parallel, vantage_diff_runs, vantage_diff_sources,
    VantageDiffReport, VantageDisagreement, VantageSummary,
};

use scanner::{ObservationSource, Projection};
use std::collections::HashSet;

/// Domain ids present on the list (i.e. observed) on *every* sampled day
/// in `days` — the paper's "overlapping domains" for a phase.
pub fn overlapping_ids(source: &dyn ObservationSource, days: &[u32]) -> HashSet<u32> {
    let proj = Projection::FLAGS.with(Projection::DOMAIN_ID);
    let mut iter = days.iter();
    let Some(first) = iter.next() else { return HashSet::new() };
    let mut set: HashSet<u32> = HashSet::new();
    source.for_day_projected(*first, proj, &mut |obs| {
        set = obs.iter().filter(|o| !o.is_www()).map(|o| o.domain_id).collect();
    });
    for day in iter {
        let mut today: HashSet<u32> = HashSet::new();
        source.for_day_projected(*day, proj, &mut |obs| {
            today = obs.iter().filter(|o| !o.is_www()).map(|o| o.domain_id).collect();
        });
        set.retain(|id| today.contains(id));
    }
    set
}

/// A (day, value) series with a label, printable as two CSV columns.
#[derive(Debug, Clone)]
pub struct Series {
    /// Label of the series.
    pub label: String,
    /// (day, value) points in day order.
    pub points: Vec<(u32, f64)>,
}

impl Series {
    /// Mean of the values.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return f64::NAN;
        }
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Standard deviation of the values.
    pub fn std(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.points.iter().map(|(_, v)| (v - m).powi(2)).sum::<f64>() / self.points.len() as f64)
            .sqrt()
    }

    /// Value on the first sampled day.
    pub fn first(&self) -> Option<f64> {
        self.points.first().map(|(_, v)| *v)
    }

    /// Value on the last sampled day.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }
}

impl std::fmt::Display for Series {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# {}", self.label)?;
        for (day, v) in &self.points {
            writeln!(f, "{day},{v:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanner::{Observation, OrgId, SnapshotStore};

    fn obs(day: u32, id: u32) -> Observation {
        Observation {
            day,
            domain_id: id,
            rank: 1,
            flags: 0,
            ns_category: 0,
            org: OrgId(0),
            min_priority: u16::MAX,
        }
    }

    #[test]
    fn overlapping_intersects_days() {
        let mut store = SnapshotStore::new();
        store.push_day(0, vec![obs(0, 1), obs(0, 2), obs(0, 3)]);
        store.push_day(1, vec![obs(1, 2), obs(1, 3)]);
        store.push_day(2, vec![obs(2, 3), obs(2, 4)]);
        let ov = overlapping_ids(&store, &[0, 1, 2]);
        assert_eq!(ov, [3u32].into_iter().collect());
        assert!(overlapping_ids(&store, &[]).is_empty());
    }

    #[test]
    fn series_stats() {
        let s = Series { label: "x".into(), points: vec![(0, 1.0), (1, 3.0)] };
        assert!((s.mean() - 2.0).abs() < 1e-9);
        assert!((s.std() - 1.0).abs() < 1e-9);
        assert_eq!(s.first(), Some(1.0));
        assert_eq!(s.last(), Some(3.0));
        let text = s.to_string();
        assert!(text.contains("# x"));
        assert!(text.contains("1,3.0000"));
    }
}
