//! Table 2 (NS categories), Table 3 (top non-CF providers), Fig 3 / Fig
//! 10 (non-CF provider and domain counts), and §4.2.3 (intermittent
//! HTTPS records).

use crate::Series;
use scanner::{flags, NsCategory, ObservationSource, OrgId, Projection, ScanFilter};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Table 2: mean/std shares of NS categories among HTTPS-positive apexes.
#[derive(Debug, Clone)]
pub struct NsCategoryShares {
    /// Mean % on full-Cloudflare NS.
    pub full_mean: f64,
    /// Std of the full-Cloudflare share.
    pub full_std: f64,
    /// Mean % on no-Cloudflare NS.
    pub none_mean: f64,
    /// Std of that share.
    pub none_std: f64,
    /// Mean % on mixed NS sets.
    pub partial_mean: f64,
    /// Std of that share.
    pub partial_std: f64,
}

impl std::fmt::Display for NsCategoryShares {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 2: NS category shares among HTTPS apexes")?;
        writeln!(f, "  Full Cloudflare NS   : {:6.2}% (std {:.2})", self.full_mean, self.full_std)?;
        writeln!(f, "  None Cloudflare NS   : {:6.2}% (std {:.2})", self.none_mean, self.none_std)?;
        writeln!(
            f,
            "  Partial Cloudflare NS: {:6.2}% (std {:.2})",
            self.partial_mean, self.partial_std
        )
    }
}

/// Compute Table 2 over all sampled days.
pub fn tab2_ns_category(store: &dyn ObservationSource) -> NsCategoryShares {
    let mut full = Vec::new();
    let mut none = Vec::new();
    let mut partial = Vec::new();
    let proj = ScanFilter::projected(Projection::FLAGS.with(Projection::NS_CATEGORY));
    store.for_each_day_filtered(proj, &mut |_, obs| {
        let mut counts = [0usize; 3];
        for o in obs {
            if o.is_www() || !o.https() {
                continue;
            }
            match NsCategory::from_u8(o.ns_category) {
                NsCategory::FullCloudflare => counts[0] += 1,
                NsCategory::PartialCloudflare => counts[1] += 1,
                NsCategory::NoneCloudflare => counts[2] += 1,
                NsCategory::NoNs => {}
            }
        }
        let total: usize = counts.iter().sum();
        if total > 0 {
            full.push(100.0 * counts[0] as f64 / total as f64);
            partial.push(100.0 * counts[1] as f64 / total as f64);
            none.push(100.0 * counts[2] as f64 / total as f64);
        }
    });
    let stats = |v: &[f64]| -> (f64, f64) {
        if v.is_empty() {
            return (0.0, 0.0);
        }
        let m = v.iter().sum::<f64>() / v.len() as f64;
        let s = (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt();
        (m, s)
    };
    let (full_mean, full_std) = stats(&full);
    let (none_mean, none_std) = stats(&none);
    let (partial_mean, partial_std) = stats(&partial);
    NsCategoryShares { full_mean, full_std, none_mean, none_std, partial_mean, partial_std }
}

/// Table 3: top non-Cloudflare providers by distinct HTTPS domains.
#[derive(Debug, Clone)]
pub struct TopProviders {
    /// (provider org, distinct domain count), descending.
    pub providers: Vec<(String, usize)>,
}

impl std::fmt::Display for TopProviders {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 3: top non-Cloudflare DNS providers (distinct HTTPS domains)")?;
        for (org, n) in &self.providers {
            writeln!(f, "  {org:<28} {n}")?;
        }
        Ok(())
    }
}

/// Compute Table 3 over all sampled days.
pub fn tab3_top_noncf(store: &dyn ObservationSource) -> TopProviders {
    let mut per_org: HashMap<OrgId, HashSet<u32>> = HashMap::new();
    let proj = ScanFilter::projected(
        Projection::FLAGS
            .with(Projection::NS_CATEGORY)
            .with(Projection::ORG)
            .with(Projection::DOMAIN_ID),
    );
    store.for_each_day_filtered(proj, &mut |_, obs| {
        for o in obs {
            if o.is_www() || !o.https() {
                continue;
            }
            if NsCategory::from_u8(o.ns_category) != NsCategory::NoneCloudflare {
                continue;
            }
            if !o.org.is_none() {
                per_org.entry(o.org).or_default().insert(o.domain_id);
            }
        }
    });
    let mut providers: Vec<(String, usize)> = per_org
        .into_iter()
        .map(|(org, domains)| {
            (store.org_name(org).unwrap_or("<unknown>").to_string(), domains.len())
        })
        .collect();
    providers.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    TopProviders { providers }
}

/// Fig 3 + Fig 10 series.
#[derive(Debug, Clone)]
pub struct NoncfSeries {
    /// Distinct non-CF providers with ≥1 HTTPS domain, per day (Fig 3).
    pub provider_count: Series,
    /// Domains with HTTPS on non-CF NS, per day (Fig 10).
    pub domain_count: Series,
}

impl std::fmt::Display for NoncfSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.provider_count, self.domain_count)
    }
}

/// Compute the Fig 3 provider-count series.
pub fn fig3_noncf_provider_count(store: &dyn ObservationSource) -> NoncfSeries {
    let mut provider_points = Vec::new();
    let mut domain_points = Vec::new();
    let proj = ScanFilter::projected(
        Projection::FLAGS.with(Projection::NS_CATEGORY).with(Projection::ORG),
    );
    store.for_each_day_filtered(proj, &mut |day, obs| {
        let mut orgs = HashSet::new();
        let mut domains = 0usize;
        for o in obs {
            if o.is_www() || !o.https() {
                continue;
            }
            if NsCategory::from_u8(o.ns_category) == NsCategory::NoneCloudflare {
                domains += 1;
                if !o.org.is_none() {
                    orgs.insert(o.org);
                }
            }
        }
        provider_points.push((day, orgs.len() as f64));
        domain_points.push((day, domains as f64));
    });
    NoncfSeries {
        provider_count: Series {
            label: "fig3 distinct non-CF providers".into(),
            points: provider_points,
        },
        domain_count: Series {
            label: "fig10 domains with HTTPS on non-CF NS".into(),
            points: domain_points,
        },
    }
}

/// Alias of [`fig3_noncf_provider_count`] for the Fig 10 series.
pub fn fig10_noncf_domains(store: &dyn ObservationSource) -> Series {
    fig3_noncf_provider_count(store).domain_count
}

/// §4.2.3: breakdown of domains with intermittent HTTPS records.
#[derive(Debug, Clone, Default)]
pub struct IntermittentBreakdown {
    /// Domains seen both with and without HTTPS across sampled days.
    pub intermittent_total: usize,
    /// … of which the NS category never changed.
    pub same_ns: usize,
    /// … same-NS domains on exclusively Cloudflare NS (proxied toggles).
    pub same_ns_cloudflare: usize,
    /// … domains whose NS category changed between observations.
    pub ns_changed: usize,
    /// … domains that at some point had no resolvable NS.
    pub lost_ns: usize,
}

impl std::fmt::Display for IntermittentBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Sec 4.2.3: intermittent HTTPS records")?;
        writeln!(f, "  intermittent domains       : {}", self.intermittent_total)?;
        writeln!(f, "  same NS throughout         : {}", self.same_ns)?;
        writeln!(f, "    of which all-Cloudflare  : {}", self.same_ns_cloudflare)?;
        writeln!(f, "  NS set changed             : {}", self.ns_changed)?;
        writeln!(f, "  lost NS records            : {}", self.lost_ns)
    }
}

/// Compute the §4.2.3 breakdown.
pub fn sec423_intermittent(store: &dyn ObservationSource) -> IntermittentBreakdown {
    // Track per-domain: days with/without HTTPS (only days the domain was
    // listed) and the NS categories observed while HTTPS was active or not.
    #[derive(Default)]
    struct Track {
        with: usize,
        without: usize,
        categories: HashSet<u8>,
        lost_ns: bool,
    }
    let mut tracks: BTreeMap<u32, Track> = BTreeMap::new();
    let proj = ScanFilter::projected(
        Projection::FLAGS.with(Projection::NS_CATEGORY).with(Projection::DOMAIN_ID),
    );
    store.for_each_day_filtered(proj, &mut |_, obs| {
        for o in obs {
            if o.is_www() || o.has(flags::RESOLUTION_FAILED) {
                // Resolution failures count as "lost NS" evidence.
                if !o.is_www() && o.has(flags::RESOLUTION_FAILED) {
                    tracks.entry(o.domain_id).or_default().lost_ns = true;
                    tracks.entry(o.domain_id).or_default().without += 1;
                }
                continue;
            }
            let t = tracks.entry(o.domain_id).or_default();
            if NsCategory::from_u8(o.ns_category) == NsCategory::NoNs {
                // Delegation gone while listed: the "no NS records" class.
                t.lost_ns = true;
            } else {
                t.categories.insert(o.ns_category);
            }
            if o.https() {
                t.with += 1;
            } else {
                t.without += 1;
            }
        }
    });
    let mut out = IntermittentBreakdown::default();
    for t in tracks.values() {
        if t.with == 0 || t.without == 0 {
            continue;
        }
        out.intermittent_total += 1;
        if t.lost_ns {
            out.lost_ns += 1;
        } else if t.categories.len() <= 1 {
            out.same_ns += 1;
            if t.categories.contains(&(NsCategory::FullCloudflare as u8)) {
                out.same_ns_cloudflare += 1;
            }
        } else {
            out.ns_changed += 1;
        }
    }
    out
}
