//! ECH analyses: Fig 13 (ECH share over time, with the kill-switch drop)
//! and Fig 4 (key-rotation durations from hourly scans).

use crate::Series;
use scanner::{flags, EchObservation, ObservationSource, Projection, ScanFilter};
use std::collections::BTreeMap;

/// Fig 13: % of HTTPS-publishing domains with the ech parameter.
#[derive(Debug, Clone)]
pub struct EchShareSeries {
    /// Apex series.
    pub apex: Series,
    /// www series.
    pub www: Series,
}

impl std::fmt::Display for EchShareSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.apex, self.www)
    }
}

/// Compute Fig 13.
pub fn fig13_ech_share(store: &dyn ObservationSource) -> EchShareSeries {
    let mut points: [Vec<(u32, f64)>; 2] = Default::default();
    store.for_each_day_filtered(ScanFilter::projected(Projection::FLAGS), &mut |day, obs| {
        for (slot, www) in [(0usize, false), (1, true)] {
            let mut https = 0usize;
            let mut ech = 0usize;
            for o in obs {
                if o.is_www() != www || !o.https() {
                    continue;
                }
                https += 1;
                if o.has(flags::ECH) {
                    ech += 1;
                }
            }
            points[slot]
                .push((day, if https == 0 { 0.0 } else { 100.0 * ech as f64 / https as f64 }));
        }
    });
    let [apex, www] = points;
    EchShareSeries {
        apex: Series { label: "fig13 apex %ECH among HTTPS".to_string(), points: apex },
        www: Series { label: "fig13 www %ECH among HTTPS".to_string(), points: www },
    }
}

/// Fig 4: ECH config lifetimes from the hourly scan.
#[derive(Debug, Clone)]
pub struct RotationStats {
    /// Distinct configs observed.
    pub distinct_configs: usize,
    /// Histogram: consecutive-hours-observed → config count.
    pub duration_histogram: BTreeMap<u32, usize>,
    /// Mean observed lifetime in hours.
    pub mean_hours: f64,
}

impl std::fmt::Display for RotationStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 4: ECH key-rotation statistics (hourly scans)")?;
        writeln!(f, "  distinct configs : {}", self.distinct_configs)?;
        for (hours, n) in &self.duration_histogram {
            writeln!(f, "  observed {hours} consecutive hours: {n} configs")?;
        }
        writeln!(f, "  mean lifetime    : {:.2} h", self.mean_hours)
    }
}

/// Compute Fig 4 from hourly ECH observations. A config's observed
/// lifetime is the span of consecutive hourly scans in which *any*
/// domain advertised it (all domains share the provider's config).
pub fn fig4_rotation(observations: &[EchObservation]) -> RotationStats {
    // config → (first hour, last hour)
    let mut spans: BTreeMap<u64, (u32, u32)> = BTreeMap::new();
    for o in observations {
        let e = spans.entry(o.config_hash).or_insert((o.hour, o.hour));
        e.0 = e.0.min(o.hour);
        e.1 = e.1.max(o.hour);
    }
    let mut histogram: BTreeMap<u32, usize> = BTreeMap::new();
    let mut total_hours = 0u64;
    for (first, last) in spans.values() {
        let hours = last - first + 1;
        *histogram.entry(hours).or_default() += 1;
        total_hours += u64::from(hours);
    }
    let distinct = spans.len();
    RotationStats {
        distinct_configs: distinct,
        duration_histogram: histogram,
        mean_hours: if distinct == 0 { f64::NAN } else { total_hours as f64 / distinct as f64 },
    }
}
