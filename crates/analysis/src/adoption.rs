//! Fig 2 (adoption trends) and Fig 8/9 (rank distributions).

use crate::{overlapping_ids, Series};
use scanner::{NsCategory, Observation, ObservationSource, Projection, ScanFilter};
use std::collections::HashSet;

/// The four Fig 2 series: apex/www × dynamic/overlapping.
#[derive(Debug, Clone)]
pub struct AdoptionSeries {
    /// % of the daily (dynamic) list's apexes with HTTPS.
    pub dynamic_apex: Series,
    /// % of the daily list's www names with HTTPS.
    pub dynamic_www: Series,
    /// % of overlapping apexes with HTTPS.
    pub overlapping_apex: Series,
    /// % of overlapping www names with HTTPS.
    pub overlapping_www: Series,
}

impl std::fmt::Display for AdoptionSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            self.dynamic_apex, self.dynamic_www, self.overlapping_apex, self.overlapping_www
        )
    }
}

/// Compute the Fig 2 adoption series. `source_change_day` splits the
/// overlapping phases exactly as the paper does.
pub fn fig2_adoption(store: &dyn ObservationSource, source_change_day: u32) -> AdoptionSeries {
    let days = store.days();
    let phase1: Vec<u32> = days.iter().copied().filter(|d| *d < source_change_day).collect();
    let phase2: Vec<u32> = days.iter().copied().filter(|d| *d >= source_change_day).collect();
    let ov1 = overlapping_ids(store, &phase1);
    let ov2 = overlapping_ids(store, &phase2);

    // One streaming pass: per day, tally (total, https) for each of the
    // four series (dynamic/overlapping × apex/www). Only flags and
    // domain ids are touched, so a disk-backed source skips the rest.
    let proj = ScanFilter::projected(Projection::FLAGS.with(Projection::DOMAIN_ID));
    let mut points: [Vec<(u32, f64)>; 4] = Default::default();
    store.for_each_day_filtered(proj, &mut |day, obs| {
        let ov = if day < source_change_day { &ov1 } else { &ov2 };
        let mut tallies = [(0usize, 0usize); 4];
        for o in obs {
            let mut bump = |slot: usize| {
                tallies[slot].0 += 1;
                if o.https() {
                    tallies[slot].1 += 1;
                }
            };
            let www = usize::from(o.is_www());
            bump(www);
            if ov.contains(&o.domain_id) {
                bump(2 + www);
            }
        }
        for (slot, (total, https)) in tallies.iter().enumerate() {
            let v = if *total == 0 { 0.0 } else { 100.0 * *https as f64 / *total as f64 };
            points[slot].push((day, v));
        }
    });
    let [dynamic_apex, dynamic_www, overlapping_apex, overlapping_www] = points;
    let series = |label: &str, points: Vec<(u32, f64)>| Series { label: label.to_string(), points };

    AdoptionSeries {
        dynamic_apex: series("fig2a dynamic apex %HTTPS", dynamic_apex),
        dynamic_www: series("fig2a dynamic www %HTTPS", dynamic_www),
        overlapping_apex: series("fig2b overlapping apex %HTTPS", overlapping_apex),
        overlapping_www: series("fig2b overlapping www %HTTPS", overlapping_www),
    }
}

/// Rank-distribution buckets (deciles of the list) for two domain sets.
#[derive(Debug, Clone)]
pub struct RankBuckets {
    /// Bucket upper bounds (ranks).
    pub bounds: Vec<u32>,
    /// Count of set-A domains per bucket.
    pub set_a: Vec<usize>,
    /// Count of set-B domains per bucket.
    pub set_b: Vec<usize>,
    /// Labels.
    pub label_a: String,
    /// Label of set B.
    pub label_b: String,
}

impl RankBuckets {
    /// Mean rank of set A (approximate, using bucket midpoints).
    pub fn mean_rank(counts: &[usize], bounds: &[u32]) -> f64 {
        let total: usize = counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let mut acc = 0.0;
        let mut prev = 0u32;
        for (c, b) in counts.iter().zip(bounds) {
            acc += *c as f64 * f64::from(prev + (b - prev) / 2);
            prev = *b;
        }
        acc / total as f64
    }
}

impl std::fmt::Display for RankBuckets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# rank buckets: {} vs {}", self.label_a, self.label_b)?;
        for ((b, a), c) in self.bounds.iter().zip(&self.set_a).zip(&self.set_b) {
            writeln!(f, "<= {b}: {a} vs {c}")?;
        }
        Ok(())
    }
}

/// Fig 8: rank distribution of overlapping vs non-overlapping domains
/// (averaged over phase-1 days). Also used for Fig 9 by passing the
/// non-CF adopter set as `special`.
pub fn fig8_rank_distribution(
    store: &dyn ObservationSource,
    phase_days: &[u32],
    special: Option<&HashSet<u32>>,
) -> RankBuckets {
    let overlapping = overlapping_ids(store, phase_days);
    let Some(&probe_day) = phase_days.iter().next() else {
        return RankBuckets {
            bounds: vec![],
            set_a: vec![],
            set_b: vec![],
            label_a: "overlapping".into(),
            label_b: "non-overlapping".into(),
        };
    };
    let mut obs: Vec<Observation> = Vec::new();
    let proj = Projection::RANK.with(Projection::FLAGS).with(Projection::DOMAIN_ID);
    store.for_day_projected(probe_day, proj, &mut |day_obs| obs.extend_from_slice(day_obs));
    let max_rank = obs.iter().map(|o| o.rank).max().unwrap_or(1).max(1);
    let buckets = 10usize;
    let width = max_rank.div_ceil(buckets as u32).max(1);
    let bounds: Vec<u32> = (1..=buckets as u32).map(|i| i * width).collect();
    let mut set_a = vec![0usize; buckets];
    let mut set_b = vec![0usize; buckets];
    for o in obs {
        if o.is_www() || o.rank == 0 {
            continue;
        }
        let idx = ((o.rank - 1) / width) as usize;
        let idx = idx.min(buckets - 1);
        match special {
            Some(set) => {
                // Fig 9 mode: bucket only the special set (e.g. non-CF
                // HTTPS adopters), compared against everyone.
                if set.contains(&o.domain_id) && o.https() {
                    set_a[idx] += 1;
                } else {
                    set_b[idx] += 1;
                }
            }
            None => {
                if overlapping.contains(&o.domain_id) {
                    set_a[idx] += 1;
                } else {
                    set_b[idx] += 1;
                }
            }
        }
    }
    RankBuckets {
        bounds,
        set_a,
        set_b,
        label_a: if special.is_some() { "non-CF adopters".into() } else { "overlapping".into() },
        label_b: if special.is_some() { "others".into() } else { "non-overlapping".into() },
    }
}

/// Domain ids whose apex observation shows HTTPS on non-Cloudflare NS on
/// any sampled day (the Fig 9 population).
pub fn noncf_adopter_ids(store: &dyn ObservationSource) -> HashSet<u32> {
    let proj = ScanFilter::projected(
        Projection::FLAGS.with(Projection::NS_CATEGORY).with(Projection::DOMAIN_ID),
    );
    let mut ids = HashSet::new();
    store.for_each_day_filtered(proj, &mut |_, obs| {
        ids.extend(
            obs.iter()
                .filter(|o| {
                    !o.is_www()
                        && o.https()
                        && NsCategory::from_u8(o.ns_category) == NsCategory::NoneCloudflare
                })
                .map(|o| o.domain_id),
        );
    });
    ids
}
