//! Per-link latency and loss modelling for the simulated network.
//!
//! A [`LinkModel`] decides, for each datagram send, whether the exchange
//! survives and how long the round trip takes in *virtual* milliseconds.
//! Every decision is a pure function of `(model seed, destination,
//! payload, attempt)`, drawn through a splitmix64 mix — no RNG state is
//! consumed, so the model is trivially thread-count invariant and a
//! retransmit (same payload, higher attempt number) re-draws both fate
//! and RTT exactly the way a real retransmitted packet meets fresh
//! network conditions.
//!
//! The default model is [`LinkModel::zero`]: no latency, no loss. The
//! synchronous [`Network::send_datagram`](crate::Network::send_datagram)
//! path ignores the model entirely, so installing one only affects
//! callers that opt into the scheduled path.

use std::collections::HashMap;
use std::net::IpAddr;

/// What the link decided about one datagram exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// The request and its reply both survive; the round trip takes
    /// `rtt_ms` virtual milliseconds.
    Deliver {
        /// Round-trip time in virtual milliseconds.
        rtt_ms: u64,
    },
    /// The request or the reply was lost in flight; the caller will
    /// never hear back and can only time out.
    Drop,
}

/// Per-endpoint behaviour override: slow, lossy, or outright mute
/// ("lame" in the paper's sense of a delegation that never answers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointOverride {
    /// Extra round-trip milliseconds added on top of the link base RTT.
    pub extra_rtt_ms: u64,
    /// Loss probability in permille for this endpoint, replacing the
    /// link-wide loss rate. `None` keeps the link-wide rate.
    pub loss_permille: Option<u16>,
    /// The endpoint never answers at all (every exchange is a drop).
    pub mute: bool,
}

/// Seeded latency/loss model for the whole simulated network, with
/// per-endpoint overrides.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkModel {
    seed: u64,
    base_rtt_ms: u64,
    jitter_ms: u64,
    loss_permille: u16,
    overrides: HashMap<IpAddr, EndpointOverride>,
}

impl LinkModel {
    /// The zero model: every exchange is delivered instantly. This is
    /// the behaviour of the pre-virtual-time network and the default on
    /// every [`Network`](crate::Network).
    pub fn zero() -> LinkModel {
        LinkModel::default()
    }

    /// A model with only a seed set; configure with the builder methods.
    pub fn new(seed: u64) -> LinkModel {
        LinkModel { seed, ..LinkModel::default() }
    }

    /// Set the base round-trip time in milliseconds.
    pub fn with_rtt_ms(mut self, ms: u64) -> LinkModel {
        self.base_rtt_ms = ms;
        self
    }

    /// Set the RTT jitter: each exchange adds a deterministic draw from
    /// `0..=ms` on top of the base RTT.
    pub fn with_jitter_ms(mut self, ms: u64) -> LinkModel {
        self.jitter_ms = ms;
        self
    }

    /// Set the link-wide loss probability in permille (`10` = 1%).
    pub fn with_loss_permille(mut self, permille: u16) -> LinkModel {
        assert!(permille <= 1_000, "loss is a probability: at most 1000 permille");
        self.loss_permille = permille;
        self
    }

    /// Install a per-endpoint override (replacing any previous one).
    pub fn with_endpoint(mut self, ip: IpAddr, over: EndpointOverride) -> LinkModel {
        self.overrides.insert(ip, over);
        self
    }

    /// Mark an endpoint as slow: `extra_ms` added to every round trip.
    pub fn with_slow_endpoint(self, ip: IpAddr, extra_ms: u64) -> LinkModel {
        self.with_endpoint(ip, EndpointOverride { extra_rtt_ms: extra_ms, ..Default::default() })
    }

    /// Mark an endpoint as lame: it never answers.
    pub fn with_lame_endpoint(self, ip: IpAddr) -> LinkModel {
        self.with_endpoint(ip, EndpointOverride { mute: true, ..Default::default() })
    }

    /// True when this model can neither delay nor drop anything, i.e.
    /// the scheduled path behaves exactly like the synchronous one.
    pub fn is_zero(&self) -> bool {
        self.base_rtt_ms == 0
            && self.jitter_ms == 0
            && self.loss_permille == 0
            && self.overrides.is_empty()
    }

    /// Decide the fate of one datagram exchange. Deterministic in
    /// `(seed, dst, payload, attempt)`.
    pub fn fate(&self, dst: IpAddr, payload: &[u8], attempt: u32) -> LinkFate {
        let over = self.overrides.get(&dst);
        if over.is_some_and(|o| o.mute) {
            return LinkFate::Drop;
        }
        let loss = over.and_then(|o| o.loss_permille).unwrap_or(self.loss_permille);
        let h = self.draw(dst, payload, attempt);
        if loss > 0 && (h % 1_000) < u64::from(loss) {
            return LinkFate::Drop;
        }
        let mut rtt = self.base_rtt_ms + over.map_or(0, |o| o.extra_rtt_ms);
        if self.jitter_ms > 0 {
            // Re-mix so the jitter draw is independent of the loss draw.
            rtt += splitmix64(h ^ 0x9e37_79b9_7f4a_7c15) % (self.jitter_ms + 1);
        }
        LinkFate::Deliver { rtt_ms: rtt }
    }

    /// One deterministic 64-bit draw per `(dst, payload, attempt)`.
    fn draw(&self, dst: IpAddr, payload: &[u8], attempt: u32) -> u64 {
        let mut h = self.seed ^ 0x6a09_e667_f3bc_c909;
        match dst {
            IpAddr::V4(v4) => {
                h = splitmix64(h ^ u64::from(u32::from(v4)));
            }
            IpAddr::V6(v6) => {
                let o = v6.octets();
                h = splitmix64(h ^ u64::from_le_bytes(o[..8].try_into().unwrap()));
                h = splitmix64(h ^ u64::from_le_bytes(o[8..].try_into().unwrap()));
            }
        }
        h = splitmix64(h ^ fnv1a(payload));
        splitmix64(h ^ u64::from(attempt))
    }
}

/// FNV-1a over a byte slice (payload fingerprint for the draw).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn zero_model_delivers_instantly() {
        let m = LinkModel::zero();
        assert!(m.is_zero());
        assert_eq!(m.fate(ip("10.0.0.1"), b"q", 0), LinkFate::Deliver { rtt_ms: 0 });
    }

    #[test]
    fn fate_is_deterministic_and_attempt_sensitive() {
        let m = LinkModel::new(7).with_rtt_ms(20).with_jitter_ms(10);
        let a = m.fate(ip("10.0.0.1"), b"query", 0);
        assert_eq!(a, m.fate(ip("10.0.0.1"), b"query", 0), "same inputs, same fate");
        match a {
            LinkFate::Deliver { rtt_ms } => assert!((20..=30).contains(&rtt_ms)),
            LinkFate::Drop => panic!("lossless model must deliver"),
        }
        // Different attempts and different destinations re-draw jitter:
        // across a handful of tries at least one must differ.
        let varied = (0..8).map(|att| m.fate(ip("10.0.0.1"), b"query", att)).collect::<Vec<_>>();
        assert!(varied.iter().any(|f| *f != a), "jitter must vary across attempts");
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let m = LinkModel::new(11).with_loss_permille(100); // 10%
        let drops = (0..10_000u32)
            .filter(|&i| m.fate(ip("10.0.0.1"), &i.to_le_bytes(), 0) == LinkFate::Drop)
            .count();
        assert!((700..=1_300).contains(&drops), "~10% of 10k, got {drops}");
    }

    #[test]
    fn endpoint_overrides() {
        let slow = ip("10.0.0.9");
        let lame = ip("10.0.0.8");
        let m = LinkModel::new(3)
            .with_rtt_ms(20)
            .with_slow_endpoint(slow, 400)
            .with_lame_endpoint(lame);
        assert!(!m.is_zero());
        assert_eq!(m.fate(lame, b"q", 0), LinkFate::Drop);
        assert_eq!(m.fate(slow, b"q", 0), LinkFate::Deliver { rtt_ms: 420 });
        assert_eq!(m.fate(ip("10.0.0.1"), b"q", 0), LinkFate::Deliver { rtt_ms: 20 });
        // A per-endpoint loss override replaces the link-wide rate.
        let m = LinkModel::new(3).with_endpoint(
            lame,
            EndpointOverride { loss_permille: Some(1_000), ..Default::default() },
        );
        assert_eq!(m.fate(lame, b"q", 0), LinkFate::Drop);
        assert_ne!(m.fate(ip("10.0.0.1"), b"q", 0), LinkFate::Drop);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn loss_over_1000_permille_rejected() {
        let _ = LinkModel::new(0).with_loss_permille(1_001);
    }
}
