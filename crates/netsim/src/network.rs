//! The simulated internet: endpoints keyed by `(IpAddr, port)`, a
//! datagram service abstraction (DNS), a connection service abstraction
//! (TLS/HTTP), per-IP reachability control, and traffic accounting.
//!
//! Everything is synchronous and deterministic: a "packet" is a method
//! call. Components hold an [`Network`] handle (cheaply clonable) and
//! address each other by IP, exactly as the paper's testbed components
//! address each other over AWS.

use crate::clock::{SimClock, TimeMs, Timestamp};
use crate::latency::{LinkFate, LinkModel};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors surfaced by simulated network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No route to the host (the §4.3.5 "unreachable network" case).
    Unreachable(IpAddr),
    /// Host reachable but nothing listens on the port.
    ConnectionRefused(IpAddr, u16),
    /// The peer accepted and then failed the exchange.
    Reset,
    /// The query was dropped (simulated loss/timeout).
    Timeout,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable(ip) => write!(f, "network unreachable: {ip}"),
            NetError::ConnectionRefused(ip, port) => write!(f, "connection refused: {ip}:{port}"),
            NetError::Reset => write!(f, "connection reset by peer"),
            NetError::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for NetError {}

/// A datagram (DNS-shaped) service bound to an address.
pub trait DatagramService: Send + Sync {
    /// Handle one request datagram, producing a response datagram.
    fn handle(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, NetError>;
}

/// A byte-oriented connection handler (TLS-shaped): the caller opens a
/// session and exchanges discrete application messages.
pub trait StreamService: Send + Sync {
    /// Handle one application message within a fresh session, returning
    /// the peer's reply. Session state for the simulated TLS handshake is
    /// carried inside the message types of higher layers.
    fn exchange(&self, message: &[u8], now: Timestamp) -> Result<Vec<u8>, NetError>;
}

#[derive(Default)]
struct NetworkState {
    datagram: HashMap<(IpAddr, u16), Arc<dyn DatagramService>>,
    stream: HashMap<(IpAddr, u16), Arc<dyn StreamService>>,
    unreachable: HashSet<IpAddr>,
}

/// Lock-free traffic counters: sends are the hottest path in a batched
/// scan, and counting through the topology `RwLock` would serialize
/// every parallel worker on a write lock just to bump a statistic.
#[derive(Default)]
struct TrafficCounters {
    datagrams_sent: AtomicU64,
    datagrams_answered: AtomicU64,
    datagrams_dropped: AtomicU64,
    streams_opened: AtomicU64,
    streams_completed: AtomicU64,
    connect_failures: AtomicU64,
}

impl TrafficCounters {
    fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            datagrams_sent: self.datagrams_sent.load(Ordering::Relaxed),
            datagrams_answered: self.datagrams_answered.load(Ordering::Relaxed),
            datagrams_dropped: self.datagrams_dropped.load(Ordering::Relaxed),
            streams_opened: self.streams_opened.load(Ordering::Relaxed),
            streams_completed: self.streams_completed.load(Ordering::Relaxed),
            connect_failures: self.connect_failures.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.datagrams_sent.store(0, Ordering::Relaxed);
        self.datagrams_answered.store(0, Ordering::Relaxed);
        self.datagrams_dropped.store(0, Ordering::Relaxed);
        self.streams_opened.store(0, Ordering::Relaxed);
        self.streams_completed.store(0, Ordering::Relaxed);
        self.connect_failures.store(0, Ordering::Relaxed);
    }
}

/// Counters of simulated traffic, for benches and pacing assertions
/// (the paper's ethics section commits to a controlled scan pace; our
/// scanner asserts its per-target budget using these counters).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrafficStats {
    /// Datagram requests attempted.
    pub datagrams_sent: u64,
    /// Datagram requests that produced a response.
    pub datagrams_answered: u64,
    /// Datagram exchanges lost in flight by the link model (scheduled
    /// path only; the synchronous path never drops).
    pub datagrams_dropped: u64,
    /// Stream exchanges attempted.
    pub streams_opened: u64,
    /// Stream exchanges that succeeded.
    pub streams_completed: u64,
    /// Attempts that failed with unreachable/refused.
    pub connect_failures: u64,
}

/// The outcome of a scheduled (virtual-time) datagram send: the network
/// decides everything at send time, but the reply only becomes *visible*
/// to the caller at the delivery instant — the caller's event loop owns
/// the timer queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduledDelivery {
    /// The exchange succeeds; `bytes` arrive at virtual time `at`.
    Reply {
        /// Virtual delivery instant (send time + round-trip draw).
        at: TimeMs,
        /// The response datagram.
        bytes: Vec<u8>,
    },
    /// The request or reply was lost; nothing will ever arrive.
    Dropped,
    /// Immediate failure (unreachable, refused, or the service errored).
    Failed(NetError),
}

/// Handle to the shared simulated network.
#[derive(Clone)]
pub struct Network {
    state: Arc<RwLock<NetworkState>>,
    stats: Arc<TrafficCounters>,
    latency: Arc<RwLock<Arc<LinkModel>>>,
    clock: SimClock,
}

impl Network {
    /// Create an empty network driven by `clock`.
    pub fn new(clock: SimClock) -> Self {
        Network {
            state: Arc::new(RwLock::new(NetworkState::default())),
            stats: Arc::new(TrafficCounters::default()),
            latency: Arc::new(RwLock::new(Arc::new(LinkModel::zero()))),
            clock,
        }
    }

    /// Install a latency/loss model. Only the scheduled datagram path
    /// consults it; [`send_datagram`](Self::send_datagram) stays
    /// synchronous and lossless regardless.
    pub fn set_latency_model(&self, model: LinkModel) {
        *self.latency.write() = Arc::new(model);
    }

    /// The currently installed latency/loss model.
    pub fn latency_model(&self) -> Arc<LinkModel> {
        Arc::clone(&self.latency.read())
    }

    /// The clock driving this network.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Bind a datagram service (e.g. a DNS server) to `ip:port`,
    /// replacing any previous binding.
    pub fn bind_datagram(&self, ip: IpAddr, port: u16, svc: Arc<dyn DatagramService>) {
        self.state.write().datagram.insert((ip, port), svc);
    }

    /// Bind a stream service (e.g. a web server) to `ip:port`.
    pub fn bind_stream(&self, ip: IpAddr, port: u16, svc: Arc<dyn StreamService>) {
        self.state.write().stream.insert((ip, port), svc);
    }

    /// Remove a datagram binding.
    pub fn unbind_datagram(&self, ip: IpAddr, port: u16) {
        self.state.write().datagram.remove(&(ip, port));
    }

    /// Remove a stream binding.
    pub fn unbind_stream(&self, ip: IpAddr, port: u16) {
        self.state.write().stream.remove(&(ip, port));
    }

    /// Mark an IP as unreachable (blackhole). Used by the §4.3.5
    /// connectivity experiments.
    pub fn set_unreachable(&self, ip: IpAddr) {
        self.state.write().unreachable.insert(ip);
    }

    /// Restore reachability of an IP.
    pub fn set_reachable(&self, ip: IpAddr) {
        self.state.write().unreachable.remove(&ip);
    }

    /// Whether an IP is currently blackholed.
    pub fn is_unreachable(&self, ip: IpAddr) -> bool {
        self.state.read().unreachable.contains(&ip)
    }

    /// Send one datagram and wait for the response. Only takes a read
    /// lock on the topology, so parallel senders do not serialize.
    pub fn send_datagram(
        &self,
        dst: IpAddr,
        port: u16,
        payload: &[u8],
    ) -> Result<Vec<u8>, NetError> {
        self.stats.datagrams_sent.fetch_add(1, Ordering::Relaxed);
        let svc = {
            let st = self.state.read();
            if st.unreachable.contains(&dst) {
                self.stats.connect_failures.fetch_add(1, Ordering::Relaxed);
                return Err(NetError::Unreachable(dst));
            }
            match st.datagram.get(&(dst, port)) {
                Some(svc) => Arc::clone(svc),
                None => {
                    self.stats.connect_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(NetError::ConnectionRefused(dst, port));
                }
            }
        };
        let now = self.clock.now();
        let resp = svc.handle(payload, now)?;
        self.stats.datagrams_answered.fetch_add(1, Ordering::Relaxed);
        Ok(resp)
    }

    /// Send one datagram through the installed [`LinkModel`], returning
    /// *when* (in virtual time) the reply arrives rather than blocking.
    ///
    /// Because simulated services are pure synchronous functions, the
    /// response can be computed eagerly and merely time-stamped for
    /// delivery; the caller (the event-loop resolution backend) must not
    /// look at the bytes before advancing its clock to `at`. `attempt`
    /// distinguishes retransmissions of the same payload so each one
    /// re-draws fate and RTT.
    pub fn send_datagram_scheduled(
        &self,
        dst: IpAddr,
        port: u16,
        payload: &[u8],
        attempt: u32,
    ) -> ScheduledDelivery {
        self.stats.datagrams_sent.fetch_add(1, Ordering::Relaxed);
        let svc = {
            let st = self.state.read();
            if st.unreachable.contains(&dst) {
                self.stats.connect_failures.fetch_add(1, Ordering::Relaxed);
                return ScheduledDelivery::Failed(NetError::Unreachable(dst));
            }
            match st.datagram.get(&(dst, port)) {
                Some(svc) => Arc::clone(svc),
                None => {
                    self.stats.connect_failures.fetch_add(1, Ordering::Relaxed);
                    return ScheduledDelivery::Failed(NetError::ConnectionRefused(dst, port));
                }
            }
        };
        let model = self.latency_model();
        match model.fate(dst, payload, attempt) {
            LinkFate::Drop => {
                self.stats.datagrams_dropped.fetch_add(1, Ordering::Relaxed);
                ScheduledDelivery::Dropped
            }
            LinkFate::Deliver { rtt_ms } => {
                let now = self.clock.now();
                match svc.handle(payload, now) {
                    Ok(bytes) => {
                        self.stats.datagrams_answered.fetch_add(1, Ordering::Relaxed);
                        ScheduledDelivery::Reply { at: self.clock.now_ms().plus(rtt_ms), bytes }
                    }
                    Err(e) => ScheduledDelivery::Failed(e),
                }
            }
        }
    }

    /// Open a stream to `dst:port` and perform one message exchange.
    pub fn stream_exchange(
        &self,
        dst: IpAddr,
        port: u16,
        message: &[u8],
    ) -> Result<Vec<u8>, NetError> {
        self.stats.streams_opened.fetch_add(1, Ordering::Relaxed);
        let svc = {
            let st = self.state.read();
            if st.unreachable.contains(&dst) {
                self.stats.connect_failures.fetch_add(1, Ordering::Relaxed);
                return Err(NetError::Unreachable(dst));
            }
            match st.stream.get(&(dst, port)) {
                Some(svc) => Arc::clone(svc),
                None => {
                    self.stats.connect_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(NetError::ConnectionRefused(dst, port));
                }
            }
        };
        let now = self.clock.now();
        let resp = svc.exchange(message, now)?;
        self.stats.streams_completed.fetch_add(1, Ordering::Relaxed);
        Ok(resp)
    }

    /// Probe TCP-style reachability of `dst:port` without sending data.
    pub fn can_connect(&self, dst: IpAddr, port: u16) -> Result<(), NetError> {
        let st = self.state.read();
        if st.unreachable.contains(&dst) {
            return Err(NetError::Unreachable(dst));
        }
        if st.stream.contains_key(&(dst, port)) || st.datagram.contains_key(&(dst, port)) {
            Ok(())
        } else {
            Err(NetError::ConnectionRefused(dst, port))
        }
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats.snapshot()
    }

    /// Reset traffic counters (between bench iterations).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.read();
        f.debug_struct("Network")
            .field("datagram_bindings", &st.datagram.len())
            .field("stream_bindings", &st.stream.len())
            .field("unreachable", &st.unreachable.len())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl DatagramService for Echo {
        fn handle(&self, request: &[u8], _now: Timestamp) -> Result<Vec<u8>, NetError> {
            let mut v = request.to_vec();
            v.reverse();
            Ok(v)
        }
    }
    impl StreamService for Echo {
        fn exchange(&self, message: &[u8], _now: Timestamp) -> Result<Vec<u8>, NetError> {
            Ok(message.to_vec())
        }
    }

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn datagram_round_trip() {
        let net = Network::new(SimClock::new());
        net.bind_datagram(ip("10.0.0.1"), 53, Arc::new(Echo));
        let resp = net.send_datagram(ip("10.0.0.1"), 53, b"abc").unwrap();
        assert_eq!(resp, b"cba");
        assert_eq!(net.stats().datagrams_sent, 1);
        assert_eq!(net.stats().datagrams_answered, 1);
    }

    #[test]
    fn refused_when_no_listener() {
        let net = Network::new(SimClock::new());
        let err = net.send_datagram(ip("10.0.0.1"), 53, b"x").unwrap_err();
        assert_eq!(err, NetError::ConnectionRefused(ip("10.0.0.1"), 53));
        assert_eq!(net.stats().connect_failures, 1);
    }

    #[test]
    fn unreachable_blackhole_and_restore() {
        let net = Network::new(SimClock::new());
        net.bind_stream(ip("1.2.3.4"), 443, Arc::new(Echo));
        net.set_unreachable(ip("1.2.3.4"));
        assert!(matches!(
            net.stream_exchange(ip("1.2.3.4"), 443, b"hello"),
            Err(NetError::Unreachable(_))
        ));
        assert!(net.can_connect(ip("1.2.3.4"), 443).is_err());
        net.set_reachable(ip("1.2.3.4"));
        assert_eq!(net.stream_exchange(ip("1.2.3.4"), 443, b"hello").unwrap(), b"hello");
        assert!(net.can_connect(ip("1.2.3.4"), 443).is_ok());
    }

    #[test]
    fn ports_are_distinct() {
        let net = Network::new(SimClock::new());
        net.bind_stream(ip("1.1.1.1"), 443, Arc::new(Echo));
        assert!(net.stream_exchange(ip("1.1.1.1"), 8443, b"x").is_err());
        assert!(net.stream_exchange(ip("1.1.1.1"), 443, b"x").is_ok());
    }

    #[test]
    fn unbind_removes_service() {
        let net = Network::new(SimClock::new());
        net.bind_datagram(ip("9.9.9.9"), 53, Arc::new(Echo));
        net.unbind_datagram(ip("9.9.9.9"), 53);
        assert!(net.send_datagram(ip("9.9.9.9"), 53, b"x").is_err());
    }

    #[test]
    fn clock_shared_with_network() {
        let clock = SimClock::new();
        let net = Network::new(clock.clone());
        clock.advance(42);
        assert_eq!(net.clock().now(), Timestamp(42));
    }

    #[test]
    fn scheduled_send_with_zero_model_matches_sync_path() {
        let net = Network::new(SimClock::new());
        net.bind_datagram(ip("10.0.0.1"), 53, Arc::new(Echo));
        let sched = net.send_datagram_scheduled(ip("10.0.0.1"), 53, b"abc", 0);
        assert_eq!(sched, ScheduledDelivery::Reply { at: TimeMs(0), bytes: b"cba".to_vec() });
        assert_eq!(
            net.send_datagram_scheduled(ip("10.0.0.2"), 53, b"abc", 0),
            ScheduledDelivery::Failed(NetError::ConnectionRefused(ip("10.0.0.2"), 53))
        );
        let stats = net.stats();
        assert_eq!(stats.datagrams_sent, 2);
        assert_eq!(stats.datagrams_answered, 1);
        assert_eq!(stats.datagrams_dropped, 0);
        assert_eq!(stats.connect_failures, 1);
    }

    #[test]
    fn scheduled_send_applies_latency_and_loss() {
        let clock = SimClock::new();
        clock.advance_ms(500);
        let net = Network::new(clock);
        net.bind_datagram(ip("10.0.0.1"), 53, Arc::new(Echo));
        net.bind_datagram(ip("10.0.0.7"), 53, Arc::new(Echo));
        net.set_latency_model(LinkModel::new(9).with_rtt_ms(20).with_lame_endpoint(ip("10.0.0.7")));
        match net.send_datagram_scheduled(ip("10.0.0.1"), 53, b"abc", 0) {
            ScheduledDelivery::Reply { at, bytes } => {
                assert_eq!(at, TimeMs(520), "delivery = send instant + RTT");
                assert_eq!(bytes, b"cba");
            }
            other => panic!("expected a scheduled reply, got {other:?}"),
        }
        assert_eq!(
            net.send_datagram_scheduled(ip("10.0.0.7"), 53, b"abc", 0),
            ScheduledDelivery::Dropped
        );
        assert_eq!(net.stats().datagrams_dropped, 1);
        // The synchronous path ignores the model entirely: the lame
        // endpoint still answers instantly there.
        assert_eq!(net.send_datagram(ip("10.0.0.7"), 53, b"abc").unwrap(), b"cba");
    }
}
