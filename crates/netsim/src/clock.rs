//! Virtual time: a monotonically advancing simulated clock plus a civil
//! calendar so longitudinal scans can be reported against real dates
//! (the paper's measurement runs 2023-05-08 → 2024-03-31).

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Seconds of simulated time since the simulation epoch.
///
/// This is the coarse, calendar-facing unit (TTLs, scan days, signature
/// validity windows). Sub-second effects — RTTs, retransmit timers —
/// use [`TimeMs`]; the clock itself keeps millisecond state internally,
/// so seconds are always a floor of the true virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Add seconds.
    pub fn plus(self, secs: u64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// Seconds elapsed since `earlier` (saturating).
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Whole days since the epoch.
    pub fn day(self) -> u64 {
        self.0 / 86_400
    }

    /// Whole hours since the epoch.
    pub fn hour(self) -> u64 {
        self.0 / 3_600
    }

    /// This instant at millisecond resolution.
    pub fn as_millis(self) -> TimeMs {
        TimeMs(self.0 * 1_000)
    }
}

/// Milliseconds of simulated time since the simulation epoch — the
/// fine-grained counterpart of [`Timestamp`], so sub-second RTTs and
/// retransmit deadlines are representable in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeMs(pub u64);

impl TimeMs {
    /// Add milliseconds.
    pub fn plus(self, ms: u64) -> TimeMs {
        TimeMs(self.0 + ms)
    }

    /// Milliseconds elapsed since `earlier` (saturating).
    pub fn since(self, earlier: TimeMs) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Whole seconds since the epoch (floor).
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// The enclosing coarse [`Timestamp`] (floor to whole seconds).
    pub fn to_timestamp(self) -> Timestamp {
        Timestamp(self.as_secs())
    }
}

impl From<Timestamp> for TimeMs {
    fn from(t: Timestamp) -> TimeMs {
        t.as_millis()
    }
}

/// A shared, manually advanced simulation clock.
///
/// All components (resolver caches, ECH rotation, scanners) read the same
/// clock; tests advance it explicitly, making every timing effect
/// deterministic and instant. State is kept in milliseconds so the
/// event-loop resolution backend can advance virtual time by sub-second
/// RTT steps; the seconds-facing API floors.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: Arc<Mutex<TimeMs>>,
}

impl SimClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at an arbitrary timestamp.
    pub fn starting_at(t: Timestamp) -> Self {
        SimClock { now_ms: Arc::new(Mutex::new(t.as_millis())) }
    }

    /// Current simulated time (whole seconds, floored).
    pub fn now(&self) -> Timestamp {
        self.now_ms.lock().to_timestamp()
    }

    /// Current simulated time at millisecond resolution.
    pub fn now_ms(&self) -> TimeMs {
        *self.now_ms.lock()
    }

    /// Advance by `secs` seconds and return the new time.
    pub fn advance(&self, secs: u64) -> Timestamp {
        let mut t = self.now_ms.lock();
        *t = t.plus(secs * 1_000);
        t.to_timestamp()
    }

    /// Advance by `ms` milliseconds and return the new fine-grained time.
    pub fn advance_ms(&self, ms: u64) -> TimeMs {
        let mut t = self.now_ms.lock();
        *t = t.plus(ms);
        *t
    }

    /// Advance by whole days.
    pub fn advance_days(&self, days: u64) -> Timestamp {
        self.advance(days * 86_400)
    }

    /// Jump to an absolute time; panics if it would move backwards
    /// (virtual time is monotonic by construction). The guard is at
    /// millisecond granularity: setting to the current whole second
    /// after sub-second time has elapsed within it is rejected too.
    pub fn set(&self, t: Timestamp) {
        self.set_ms(t.as_millis());
    }

    /// Jump to an absolute millisecond time; panics if it would move
    /// backwards. Setting to the current instant is a no-op.
    pub fn set_ms(&self, t: TimeMs) {
        let mut now = self.now_ms.lock();
        assert!(t >= *now, "SimClock cannot move backwards ({:?} -> {:?})", *now, t);
        *now = t;
    }
}

/// A civil-calendar date used for reporting longitudinal results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    /// Four-digit year.
    pub year: i32,
    /// Month, 1–12.
    pub month: u32,
    /// Day of month, 1–31.
    pub day: u32,
}

impl CivilDate {
    /// Construct, validating ranges loosely.
    pub fn new(year: i32, month: u32, day: u32) -> CivilDate {
        assert!((1..=12).contains(&month) && (1..=31).contains(&day));
        CivilDate { year, month, day }
    }

    /// Days since 1970-01-01 (Howard Hinnant's `days_from_civil`).
    pub fn days_from_civil(self) -> i64 {
        let y = if self.month <= 2 { self.year - 1 } else { self.year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`days_from_civil`].
    pub fn from_days(z: i64) -> CivilDate {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        CivilDate { year: (if m <= 2 { y + 1 } else { y }) as i32, month: m, day: d }
    }

    /// The date `n` days later.
    pub fn plus_days(self, n: i64) -> CivilDate {
        CivilDate::from_days(self.days_from_civil() + n)
    }

    /// Signed day difference `self - other`.
    pub fn diff_days(self, other: CivilDate) -> i64 {
        self.days_from_civil() - other.days_from_civil()
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Maps simulation day numbers to civil dates, anchored at a start date.
///
/// Day 0 of the simulation corresponds to `start`; the paper's study
/// anchors at 2023-05-08.
#[derive(Debug, Clone, Copy)]
pub struct Calendar {
    start: CivilDate,
}

impl Calendar {
    /// The paper's measurement start date.
    pub fn paper() -> Calendar {
        Calendar { start: CivilDate::new(2023, 5, 8) }
    }

    /// A calendar anchored at an arbitrary date.
    pub fn anchored(start: CivilDate) -> Calendar {
        Calendar { start }
    }

    /// The civil date of simulation day `day`.
    pub fn date_of_day(&self, day: u64) -> CivilDate {
        self.start.plus_days(day as i64)
    }

    /// The civil date at a timestamp.
    pub fn date_of(&self, t: Timestamp) -> CivilDate {
        self.date_of_day(t.day())
    }

    /// The simulation day number of a civil date (None if before start).
    pub fn day_of_date(&self, date: CivilDate) -> Option<u64> {
        let d = date.diff_days(self.start);
        if d < 0 {
            None
        } else {
            Some(d as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now(), Timestamp(0));
        c.advance(10);
        let shared = c.clone();
        shared.advance(5);
        assert_eq!(c.now(), Timestamp(15));
        c.advance_days(2);
        assert_eq!(c.now().day(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn clock_rejects_backwards_set() {
        let c = SimClock::new();
        c.advance(100);
        c.set(Timestamp(50));
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn clock_rejects_backwards_set_ms() {
        let c = SimClock::new();
        c.advance_ms(1_500);
        c.set_ms(TimeMs(1_499));
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn clock_rejects_subsecond_rewind_via_seconds_set() {
        // 2.3 s of virtual time have elapsed; jumping to "second 2"
        // would silently lose 300 ms, so the ms-granularity guard trips
        // even though the seconds-facing `now()` also reads 2.
        let c = SimClock::new();
        c.advance_ms(2_300);
        assert_eq!(c.now(), Timestamp(2));
        c.set(Timestamp(2));
    }

    #[test]
    fn millisecond_path_floors_to_seconds() {
        let c = SimClock::new();
        c.advance_ms(2_999);
        assert_eq!(c.now(), Timestamp(2));
        assert_eq!(c.now_ms(), TimeMs(2_999));
        c.advance(1);
        assert_eq!(c.now_ms(), TimeMs(3_999));
        c.set_ms(TimeMs(3_999)); // setting to "now" is a no-op
        c.set_ms(TimeMs(10_000));
        assert_eq!(c.now(), Timestamp(10));
    }

    #[test]
    fn timems_conversions() {
        let t = Timestamp(7);
        assert_eq!(t.as_millis(), TimeMs(7_000));
        assert_eq!(TimeMs::from(t), TimeMs(7_000));
        assert_eq!(TimeMs(7_450).as_secs(), 7);
        assert_eq!(TimeMs(7_450).to_timestamp(), Timestamp(7));
        assert_eq!(TimeMs(100).plus(20), TimeMs(120));
        assert_eq!(TimeMs(120).since(TimeMs(100)), 20);
        assert_eq!(TimeMs(100).since(TimeMs(120)), 0);
    }

    #[test]
    fn civil_round_trip() {
        for (y, m, d) in [
            (1970, 1, 1),
            (2000, 2, 29),
            (2023, 5, 8),
            (2023, 8, 1),
            (2023, 10, 5),
            (2024, 2, 29),
            (2024, 3, 31),
        ] {
            let date = CivilDate::new(y, m, d);
            assert_eq!(CivilDate::from_days(date.days_from_civil()), date);
        }
        assert_eq!(CivilDate::new(1970, 1, 1).days_from_civil(), 0);
    }

    #[test]
    fn paper_calendar_landmarks() {
        let cal = Calendar::paper();
        assert_eq!(cal.date_of_day(0), CivilDate::new(2023, 5, 8));
        // Tranco source change: 2023-08-01 is day 85.
        assert_eq!(cal.day_of_date(CivilDate::new(2023, 8, 1)), Some(85));
        // Cloudflare ECH kill switch: 2023-10-05 is day 150.
        assert_eq!(cal.day_of_date(CivilDate::new(2023, 10, 5)), Some(150));
        // Study end: 2024-03-31 is day 328.
        assert_eq!(cal.day_of_date(CivilDate::new(2024, 3, 31)), Some(328));
        assert_eq!(cal.day_of_date(CivilDate::new(2023, 1, 1)), None);
    }

    #[test]
    fn date_display() {
        assert_eq!(CivilDate::new(2023, 5, 8).to_string(), "2023-05-08");
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(3600 * 25);
        assert_eq!(t.day(), 1);
        assert_eq!(t.hour(), 25);
        assert_eq!(t.plus(10).since(t), 10);
        assert_eq!(t.since(t.plus(10)), 0);
    }
}
