//! # netsim
//!
//! A deterministic simulated internet for the `httpsrr` workspace:
//! a manually advanced [`SimClock`] with a civil [`Calendar`] (so
//! longitudinal results can be reported against the paper's real dates),
//! and a [`Network`] connecting datagram services (DNS servers) and
//! stream services (web servers) by IP and port, with per-IP blackholing
//! for connectivity experiments and traffic accounting for pacing
//! assertions.
//!
//! Design note: the network is synchronous — a packet is a method call —
//! which makes every experiment in the workspace reproducible bit-for-bit
//! from a seed. Concurrency in higher layers (the scanner) uses scoped
//! threads over this shared handle; all interior state is behind
//! `parking_lot` locks.
//!
//! Virtual time extends this without breaking it: a [`LinkModel`] gives
//! links seeded RTT/loss behaviour, and
//! [`Network::send_datagram_scheduled`] turns a send into a *scheduled
//! delivery* (the reply is computed eagerly but time-stamped at
//! `now + rtt`). The default model is [`LinkModel::zero`], so every
//! existing synchronous caller is untouched.

#![warn(missing_docs)]

pub mod clock;
pub mod latency;
pub mod network;

pub use clock::{Calendar, CivilDate, SimClock, TimeMs, Timestamp};
pub use latency::{EndpointOverride, LinkFate, LinkModel};
pub use network::{
    DatagramService, NetError, Network, ScheduledDelivery, StreamService, TrafficStats,
};
