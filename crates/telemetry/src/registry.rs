//! The labelled metrics registry.
//!
//! A [`MetricsRegistry`] names and owns a set of [`Counter`]s and
//! [`Histogram`]s. Registration (first lookup of a name) takes a short
//! mutex on a `BTreeMap`; after that, recorders hold an
//! `Arc<Counter>`/`Arc<Histogram>` and never touch the registry again,
//! so the hot path stays lock-free. One registry is typically attached
//! per engine (the scanner labels one per vantage point).
//!
//! Exports honour the crate's determinism split:
//! [`counters_text`](MetricsRegistry::counters_text) renders *only* the
//! deterministic classes — counters plus **deterministic histograms**
//! ([`det_histogram`](MetricsRegistry::det_histogram), fed exclusively
//! from outcome-derived values such as virtual-time latencies, never
//! from wall clocks) — in sorted-name order, and is the byte-identical
//! snapshot the determinism suite pins across thread counts.
//! [`render_text`](MetricsRegistry::render_text) and
//! [`to_csv`](MetricsRegistry::to_csv) add the wall-clock histogram
//! class for human and machine consumption.

use crate::counter::Counter;
use crate::histogram::Histogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write;
use std::sync::Arc;

/// A labelled set of named counters and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    label: String,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    /// Histograms over *outcome-derived* values (virtual-time latencies,
    /// counts), which the batch determinism contract makes thread-count
    /// invariant — so they render into the pinned snapshot, unlike the
    /// wall-clock `histograms` class.
    det_histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry with the given label (e.g. a vantage name).
    pub fn new(label: &str) -> MetricsRegistry {
        MetricsRegistry { label: label.to_string(), ..MetricsRegistry::default() }
    }

    /// The registry's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock();
        match counters.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(Counter::new());
                counters.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock();
        match histograms.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(Histogram::new());
                histograms.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Get or create the *deterministic* histogram named `name`. Only
    /// record outcome-derived values here (virtual-time latencies, queue
    /// shapes derived from inputs) — never wall-clock measurements: this
    /// class is rendered into [`counters_text`](Self::counters_text) and
    /// pinned byte-identical across thread counts.
    pub fn det_histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.det_histograms.lock();
        match histograms.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(Histogram::new());
                histograms.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Current value of counter `name` (0 if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.lock().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Sorted `(name, value)` snapshot of every counter — the
    /// deterministic metric class.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.counters.lock().iter().map(|(n, c)| (n.clone(), c.get())).collect()
    }

    /// Canonical text rendering of the deterministic metric classes:
    /// one `counter <name> <value>` line per counter, then one
    /// `det_histogram <name> …` block (summary plus occupied buckets)
    /// per deterministic histogram, each class sorted by name.
    /// Byte-identical across worker thread counts — this is the string
    /// the determinism suite pins.
    pub fn counters_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counter_snapshot() {
            let _ = writeln!(out, "counter {name} {value}");
        }
        let det = self.det_histograms.lock();
        for (name, h) in det.iter() {
            let s = h.snapshot();
            let _ = writeln!(out, "det_histogram {name} {s}");
            for (lo, hi, count) in s.occupied() {
                let _ = writeln!(out, "  bucket {lo}..={hi} {count}");
            }
        }
        out
    }

    /// Full human-readable report: label, deterministic counters and
    /// histograms, then wall-clock histograms with quantiles and
    /// occupied buckets.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ =
            writeln!(out, "# registry {}", if self.label.is_empty() { "-" } else { &self.label });
        out.push_str(&self.counters_text());
        let histograms = self.histograms.lock();
        for (name, h) in histograms.iter() {
            let s = h.snapshot();
            let _ = writeln!(out, "histogram {name} {s}");
            for (lo, hi, count) in s.occupied() {
                let _ = writeln!(out, "  bucket {lo}..={hi} {count}");
            }
        }
        out
    }

    /// Machine-readable CSV: `label,kind,name,field,value` rows, sorted
    /// by kind then name.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,kind,name,field,value\n");
        for (name, value) in self.counter_snapshot() {
            let _ = writeln!(out, "{},counter,{name},value,{value}", self.label);
        }
        for (kind, map) in
            [("det_histogram", &self.det_histograms), ("histogram", &self.histograms)]
        {
            let histograms = map.lock();
            for (name, h) in histograms.iter() {
                let s = h.snapshot();
                let _ = writeln!(out, "{},{kind},{name},count,{}", self.label, s.count());
                let _ = writeln!(out, "{},{kind},{name},sum,{}", self.label, s.sum);
                for q in [50u32, 90, 99] {
                    let v = s.quantile(q as f64 / 100.0).unwrap_or(0);
                    let _ = writeln!(out, "{},{kind},{name},p{q},{v}", self.label);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new("test");
        reg.counter("a").add(2);
        reg.counter("a").inc();
        assert_eq!(reg.counter_value("a"), 3);
        assert_eq!(reg.counter_value("never"), 0);
    }

    #[test]
    fn counters_text_is_sorted_and_stable() {
        let reg = MetricsRegistry::new("v");
        reg.counter("zeta").inc();
        reg.counter("alpha").add(4);
        assert_eq!(reg.counters_text(), "counter alpha 4\ncounter zeta 1\n");
        // Registration order does not matter.
        let reg2 = MetricsRegistry::new("v");
        reg2.counter("alpha").add(4);
        reg2.counter("zeta").inc();
        assert_eq!(reg.counters_text(), reg2.counters_text());
    }

    #[test]
    fn det_histograms_render_into_the_pinned_snapshot() {
        let reg = MetricsRegistry::new("v");
        reg.counter("engine.queries").add(3);
        reg.det_histogram("engine.vt_query_ms").record(20);
        reg.det_histogram("engine.vt_query_ms").record(0);
        let text = reg.counters_text();
        assert!(text.contains("counter engine.queries 3"));
        assert!(text.contains("det_histogram engine.vt_query_ms count=2"));
        assert!(text.contains("  bucket 0..=0 1"));
        assert!(text.contains("  bucket 16..=31 1"));
        // Wall-clock histograms stay out of the pinned snapshot.
        reg.histogram("engine.batch_us").record(123);
        assert!(!reg.counters_text().contains("engine.batch_us"));
        assert!(reg.render_text().contains("histogram engine.batch_us"));
        let csv = reg.to_csv();
        assert!(csv.contains("v,det_histogram,engine.vt_query_ms,count,2"));
        assert!(csv.contains("v,histogram,engine.batch_us,count,1"));
    }

    #[test]
    fn render_text_includes_histograms() {
        let reg = MetricsRegistry::new("isp");
        reg.counter("engine.batches").inc();
        reg.histogram("wave_us").record(900);
        let text = reg.render_text();
        assert!(text.starts_with("# registry isp\n"));
        assert!(text.contains("counter engine.batches 1"));
        assert!(text.contains("histogram wave_us count=1"));
        assert!(text.contains("bucket 512..=1023 1"));
    }

    #[test]
    fn csv_has_counter_and_quantile_rows() {
        let reg = MetricsRegistry::new("g");
        reg.counter("c").add(7);
        reg.histogram("h").record(3);
        let csv = reg.to_csv();
        assert!(csv.starts_with("label,kind,name,field,value\n"));
        assert!(csv.contains("g,counter,c,value,7"));
        assert!(csv.contains("g,histogram,h,count,1"));
        assert!(csv.contains("g,histogram,h,p99,3"));
    }
}
