//! # telemetry
//!
//! First-class instrumentation for the resolution pipeline: lock-free
//! atomic [`Counter`]s, fixed-bucket log-spaced [`Histogram`]s with
//! mergeable [`HistogramSnapshot`]s, and a labelled [`MetricsRegistry`]
//! that renders text and CSV reports.
//!
//! ## The determinism split
//!
//! The engine, cache, and scanner are pinned to a strict determinism
//! contract: the same batch produces byte-identical results for any
//! worker thread count. Instrumentation must not weaken that contract,
//! so this crate's consumers observe two distinct metric classes:
//!
//! - **Counters are simulation-deterministic.** Everything recorded
//!   into a [`Counter`] is derived from batch *outcomes* (which are
//!   thread-count-invariant by the engine contract), never from
//!   scheduling artefacts. The canonical rendering
//!   ([`MetricsRegistry::counters_text`]) is therefore byte-identical
//!   across thread counts and is pinned by the resolver's determinism
//!   suite.
//! - **Histograms are wall-clock, observational only.** Latencies,
//!   queue depths, and network-traffic distributions vary run to run
//!   and across interleavings; they are exported for perf work but
//!   never compared for determinism and never feed back into
//!   resolution.
//!
//! Recording on the hot path is a single atomic `fetch_add` (counters)
//! or two of them (histograms); neither takes a lock, blocks, or
//! branches on shared state, which is what makes it safe to thread
//! through the determinism-pinned resolution paths: telemetry observes,
//! it never perturbs.

#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod registry;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::MetricsRegistry;
