//! Lock-free monotonic counters.
//!
//! A [`Counter`] is a single `AtomicU64` incremented with relaxed
//! ordering: recording costs one uncontended `fetch_add` and never
//! blocks, so counters can sit on the resolution hot path. By the
//! crate's determinism split (see the crate docs), everything recorded
//! into a counter must be derived from deterministic batch outcomes —
//! a rule the *recorder* upholds; the counter itself is just a cell.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing, lock-free event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4_000);
    }
}
