//! Fixed-bucket, log-spaced histograms for wall-clock observations.
//!
//! A [`Histogram`] spreads `u64` samples (microseconds for latencies,
//! plain counts for queue depths) over [`BUCKETS`] power-of-two
//! buckets: bucket 0 holds the value 0 and bucket `i` holds
//! `[2^(i-1), 2^i)`, with the final bucket absorbing everything larger.
//! Recording is two relaxed `fetch_add`s — no locks, no allocation —
//! so histograms can sit on the determinism-pinned hot paths without
//! perturbing them (they are strictly observational; see the crate
//! docs for the counter/histogram split).
//!
//! [`HistogramSnapshot`]s are plain data and **mergeable**: merging is
//! associative and commutative with an all-zero identity, so per-worker
//! or per-vantage snapshots can be combined in any order — a property
//! pinned by this crate's property tests.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: value 0, then 38 power-of-two ranges
/// covering `1 .. 2^38` (≈ 76 hours in microseconds), then overflow.
pub const BUCKETS: usize = 40;

/// The bucket index a value lands in.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free histogram over log-spaced `u64` buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration as whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time snapshot. Bucket loads are individually atomic
    /// but not mutually consistent under concurrent recording — fine
    /// for the observational role histograms play here.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data histogram state: mergeable, comparable, renderable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_lower`]/[`bucket_upper`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: [0; BUCKETS], sum: 0 }
    }
}

impl HistogramSnapshot {
    /// The all-zero merge identity.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Merge another snapshot into this one. Associative and
    /// commutative; [`empty`](Self::empty) is the identity.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        // Wrapping, to match the atomic accumulation in `Histogram::record`.
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Approximate quantile: the inclusive upper bound of the bucket
    /// containing the `q`-th ranked sample (`q` in `[0, 1]`). Returns
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i));
            }
        }
        Some(bucket_upper(BUCKETS - 1))
    }

    /// Buckets with at least one sample, as `(lower, upper, count)`.
    pub fn occupied(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), bucket_upper(i), c))
            .collect()
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} sum={} mean={:.1} p50={} p90={} p99={}",
            self.count(),
            self.sum,
            self.mean(),
            self.quantile(0.5).unwrap_or(0),
            self.quantile(0.9).unwrap_or(0),
            self.quantile(0.99).unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bounds_tile_the_domain() {
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(0), 0);
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1) + 1, "gap before bucket {i}");
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 1102);
        // Median sample is the second `1`, whose bucket tops out at 1.
        assert_eq!(s.quantile(0.5), Some(1));
        assert!(s.quantile(1.0).unwrap() >= 1000);
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
    }

    #[test]
    fn duration_recorded_as_micros() {
        let h = Histogram::new();
        h.record_duration(Duration::from_millis(3));
        assert_eq!(h.snapshot().sum, 3_000);
    }

    #[test]
    fn merge_identity_and_totals() {
        let h = Histogram::new();
        h.record(7);
        h.record(9000);
        let mut a = h.snapshot();
        let before = a.clone();
        a.merge(&HistogramSnapshot::empty());
        assert_eq!(a, before);
        a.merge(&before);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum, 2 * before.sum);
    }

    #[test]
    fn display_is_compact() {
        let h = Histogram::new();
        h.record(5);
        let text = h.snapshot().to_string();
        assert!(text.contains("count=1"));
        assert!(text.contains("p50="));
    }
}
