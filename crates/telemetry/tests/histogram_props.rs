//! Property tests for the histogram algebra: bucket boundaries tile the
//! `u64` domain without gaps, every value lands in the bucket whose
//! range contains it, and snapshot merging is associative and
//! commutative with an all-zero identity — the properties that make
//! per-worker and per-vantage snapshots safely combinable in any order.

use proptest::prelude::*;
use telemetry::histogram::{bucket_lower, bucket_upper};
use telemetry::{Histogram, HistogramSnapshot, BUCKETS};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn every_value_lands_in_a_covering_bucket(v in any::<u64>()) {
        let s = snapshot_of(&[v]);
        let occupied = s.occupied();
        prop_assert_eq!(occupied.len(), 1);
        let (lo, hi, count) = occupied[0];
        prop_assert_eq!(count, 1);
        prop_assert!(lo <= v && v <= hi, "value {} outside bucket {}..={}", v, lo, hi);
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..1_000_000, 0..40),
        b in proptest::collection::vec(0u64..1_000_000, 0..40),
        c in proptest::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        // Merging equals recording everything into one histogram.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    #[test]
    fn merge_is_commutative_with_identity(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut with_identity = sa.clone();
        with_identity.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&with_identity, &sa);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(0u64..10_000_000, 1..60),
    ) {
        let s = snapshot_of(&values);
        let p50 = s.quantile(0.5).unwrap();
        let p90 = s.quantile(0.9).unwrap();
        let p100 = s.quantile(1.0).unwrap();
        prop_assert!(p50 <= p90 && p90 <= p100);
        // The max sample is within its bucket's bounds, so p100's upper
        // bound is at least the true maximum.
        let max = *values.iter().max().unwrap();
        prop_assert!(p100 >= max);
    }
}

#[test]
fn boundaries_tile_without_gaps() {
    assert_eq!(bucket_lower(0), 0);
    for i in 1..BUCKETS - 1 {
        assert_eq!(
            bucket_lower(i),
            bucket_upper(i - 1) + 1,
            "bucket {i} does not start where bucket {} ends",
            i - 1
        );
        assert!(bucket_lower(i) <= bucket_upper(i));
    }
    assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
}
