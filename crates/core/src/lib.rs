//! # httpsrr
//!
//! An end-to-end reproduction of *"Exploring the Ecosystem of DNS HTTPS
//! Resource Records"* (IMC 2024) as a Rust library: the DNS substrate
//! (wire format, SVCB/HTTPS records, DNSSEC), a deterministic simulated
//! Internet with provider policies, a recursive resolver, a TLS/ECH
//! handshake layer, behavioural browser models, the paper's scanning
//! framework, and per-table/figure analyses.
//!
//! ## Quickstart
//!
//! ```
//! use httpsrr::Study;
//!
//! // A small, fast study: tiny world, monthly snapshots.
//! let study = Study::quick();
//! let adoption = httpsrr::analysis::fig2_adoption(
//!     &study.store,
//!     study.world.config.landmarks.source_change as u32,
//! );
//! assert!(adoption.dynamic_apex.mean() > 5.0);
//! ```
//!
//! The module tree mirrors the system layers; see DESIGN.md for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results.

#![warn(missing_docs)]

pub mod automation;

pub use analysis;
pub use authserver;
pub use browser;
pub use dns_wire;
pub use dnssec;
pub use ecosystem;
pub use netsim;
pub use resolver;
pub use scanner;
pub use serve;
pub use simcrypto;
pub use telemetry;
pub use tlsech;

use ecosystem::{EcosystemConfig, World};
use scanner::{Campaign, SnapshotStore};

/// A completed longitudinal study: the evolved world plus the scanner's
/// dataset, ready for analysis.
pub struct Study {
    /// The simulated world, advanced to the end of the campaign.
    pub world: World,
    /// The longitudinal scan dataset.
    pub store: SnapshotStore,
}

impl Study {
    /// Run a study with the given ecosystem config and day stride.
    pub fn run(config: EcosystemConfig, stride: u64) -> Study {
        let days = config.study_days();
        let mut world = World::build(config);
        let campaign = Campaign::strided(days, stride);
        let store = campaign.run(&mut world);
        Study { world, store }
    }

    /// A tiny, fast study (≈1 s): 400-domain universe, monthly snapshots.
    pub fn quick() -> Study {
        Study::run(EcosystemConfig::tiny(), 28)
    }

    /// The paper-shaped study at the default scaled population
    /// (6 k domains, weekly snapshots; ≈ a minute).
    pub fn paper_scaled() -> Study {
        Study::run(EcosystemConfig::default(), 7)
    }
}

/// Render the full server-side report: every §4 table and figure.
pub fn server_side_report(study: &Study) -> String {
    use std::fmt::Write;
    let lm = study.world.config.landmarks;
    let mut out = String::new();
    let adoption = analysis::fig2_adoption(&study.store, lm.source_change as u32);
    let _ = writeln!(
        out,
        "Fig 2: adoption (dynamic apex {:.1}% -> {:.1}%; overlapping apex mean {:.1}%)",
        adoption.dynamic_apex.first().unwrap_or(0.0),
        adoption.dynamic_apex.last().unwrap_or(0.0),
        adoption.overlapping_apex.mean(),
    );
    let _ = writeln!(out, "{}", analysis::tab2_ns_category(&study.store));
    let _ = writeln!(out, "{}", analysis::tab3_top_noncf(&study.store));
    let fig3 = analysis::fig3_noncf_provider_count(&study.store);
    let _ = writeln!(
        out,
        "Fig 3: distinct non-CF providers {:.0} -> {:.0}",
        fig3.provider_count.first().unwrap_or(0.0),
        fig3.provider_count.last().unwrap_or(0.0)
    );
    let _ = writeln!(
        out,
        "Fig 10: non-CF HTTPS domains {:.0} -> {:.0}",
        fig3.domain_count.first().unwrap_or(0.0),
        fig3.domain_count.last().unwrap_or(0.0)
    );
    let _ = writeln!(out, "{}", analysis::sec423_intermittent(&study.store));
    let _ = writeln!(out, "{}", analysis::tab4_cf_config(&study.store));
    let _ = writeln!(out, "{}", analysis::tab5_other_providers(&study.store));
    let _ = writeln!(out, "{}", analysis::sec433_anomalies(&study.store));
    let _ = writeln!(out, "{}", analysis::tab8_alpn(&study.store, lm.h3_29_sunset as u32));
    let fig11 = analysis::fig11_iphints(&study.store);
    let _ = writeln!(
        out,
        "Fig 11: apex hint utilization {:.1}%, match {:.1}%",
        fig11.apex_utilization.mean(),
        fig11.apex_match.mean()
    );
    let _ = writeln!(out, "{}", analysis::fig12_mismatch_durations(&study.store));
    let fig13 = analysis::fig13_ech_share(&study.store);
    let _ = writeln!(
        out,
        "Fig 13: ECH share apex first {:.1}% last {:.1}%",
        fig13.apex.first().unwrap_or(0.0),
        fig13.apex.last().unwrap_or(0.0)
    );
    let fig5 = analysis::fig5_dnssec_trend(&study.store);
    let _ = writeln!(
        out,
        "Fig 5: signed apex mean {:.1}%, validated {:.1}%  |  Fig 14: signed-ECH {:.2}%",
        fig5.signed_apex.mean(),
        fig5.validated_apex.mean(),
        fig5.signed_ech.mean(),
    );
    out
}

/// Render the client-side report: Tables 6 and 7 for the four measured
/// browsers (runs the full testbed battery; ≈ a second).
pub fn client_side_report() -> String {
    use browser::{table6_row, table7_row, BrowserProfile};
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "Table 6: HTTPS RR support matrix");
    let _ = writeln!(
        out,
        "  {:<14} {:>5} {:>5} {:>6} {:>6} {:>7} {:>5} {:>5} {:>6}",
        "browser", "bare", "http", "https", "alias", "target", "port", "alpn", "hints"
    );
    for p in BrowserProfile::all_measured() {
        let r = table6_row(&p);
        let _ = writeln!(
            out,
            "  {:<14} {:>5} {:>5} {:>6} {:>6} {:>7} {:>5} {:>5} {:>6}",
            r.browser,
            r.utilization.bare.to_string(),
            r.utilization.http.to_string(),
            r.utilization.https.to_string(),
            r.alias_target.to_string(),
            r.service_target.to_string(),
            r.port.to_string(),
            r.alpn.to_string(),
            r.ip_hints.to_string(),
        );
    }
    let _ = writeln!(out, "Table 7: ECH support matrix");
    let _ = writeln!(
        out,
        "  {:<14} {:>7} {:>10} {:>9} {:>9} {:>6}",
        "browser", "shared", "unilateral", "malformed", "mismatch", "split"
    );
    for p in BrowserProfile::all_measured() {
        if !p.supports_ech {
            let _ = writeln!(out, "  {:<14} (no ECH support)", p.name);
            continue;
        }
        let r = table7_row(&p);
        let _ = writeln!(
            out,
            "  {:<14} {:>7} {:>10} {:>9} {:>9} {:>6}",
            r.browser,
            r.shared_mode.to_string(),
            r.unilateral.to_string(),
            r.malformed.to_string(),
            r.mismatched_key.to_string(),
            r.split_mode.to_string(),
        );
    }
    out
}
