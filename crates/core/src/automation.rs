//! HTTPS-record management automation — the tool the paper's §7 calls
//! for ("the DNS HTTPS ecosystem could borrow experiences learned from
//! the management of digital certificates … ACME and Certbot").
//!
//! [`RecordManager`] owns the coupling the paper shows operators getting
//! wrong by hand:
//!
//! * **Address changes** (§4.3.5): `renumber` updates the A/AAAA RRset
//!   and every `ipv4hint`/`ipv6hint` in the same zone transaction, so
//!   hints and addresses can never diverge at the authority. (Resolver
//!   caches may still serve old *consistent* snapshots — which is
//!   harmless, because both record sets move together.)
//! * **ECH key rotation** (§4.4.2): `rotate_ech` installs the fresh
//!   config in DNS while instructing the server to keep accepting the
//!   previous key for at least one DNS TTL, guaranteeing that any
//!   cached config still decrypts or retries.

use authserver::ZoneSet;
use dns_wire::{DnsName, RData, Record, RecordType, SvcParam};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tlsech::WebServer;

/// Automates coupled updates of A/AAAA records, IP hints, and ECH
/// configs for one domain.
pub struct RecordManager {
    zones: ZoneSet,
    apex: DnsName,
    /// Web server whose ECH keys this manager rotates (optional).
    server: Option<Arc<WebServer>>,
    /// TTL applied to managed records; also the grace horizon for ECH.
    ttl: u32,
}

/// Errors from automated record management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomationError {
    /// The managed zone does not exist in the zone set.
    ZoneMissing,
    /// ECH rotation requested but no server is attached / ECH disabled.
    NoEchServer,
}

impl std::fmt::Display for AutomationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutomationError::ZoneMissing => write!(f, "managed zone missing"),
            AutomationError::NoEchServer => write!(f, "no ECH-capable server attached"),
        }
    }
}

impl RecordManager {
    /// Manage `apex` inside `zones` with the given record TTL.
    pub fn new(zones: ZoneSet, apex: DnsName, ttl: u32) -> RecordManager {
        RecordManager { zones, apex, server: None, ttl }
    }

    /// Attach the web server whose ECH keys should be rotated.
    pub fn with_server(mut self, server: Arc<WebServer>) -> RecordManager {
        self.server = Some(server);
        self
    }

    /// Atomically renumber the service: rewrite the A RRset *and* every
    /// ipv4hint in the apex (and www) HTTPS records in one zone update.
    pub fn renumber(&self, new_ip: Ipv4Addr) -> Result<(), AutomationError> {
        let apex = self.apex.clone();
        let ttl = self.ttl;
        self.zones
            .with_zone(&apex, |zone| {
                let mut owners = vec![apex.clone()];
                if let Ok(www) = apex.prepend("www") {
                    owners.push(www);
                }
                for owner in owners {
                    if zone.get(&owner, RecordType::A).is_some() {
                        zone.set(
                            owner.clone(),
                            RecordType::A,
                            vec![Record::new(owner.clone(), ttl, RData::A(new_ip))],
                        );
                    }
                    // Rewrite hints inside any HTTPS records at this owner.
                    if let Some(existing) = zone.get(&owner, RecordType::Https).cloned() {
                        let updated: Vec<Record> = existing
                            .into_iter()
                            .map(|mut rec| {
                                if let RData::Https(rd) = &mut rec.rdata {
                                    for p in rd.params.iter_mut() {
                                        if let SvcParam::Ipv4Hint(v) = p {
                                            *v = vec![new_ip];
                                        }
                                    }
                                }
                                rec.ttl = ttl;
                                rec
                            })
                            .collect();
                        zone.set(owner.clone(), RecordType::Https, updated);
                    }
                }
            })
            .ok_or(AutomationError::ZoneMissing)
    }

    /// Rotate the attached server's ECH key *safely*: the server keeps a
    /// grace window at least one TTL deep (enforced by the caller's
    /// `EchKeyManager` grace depth), and DNS gets the fresh config in the
    /// same step. Returns the new config bytes.
    pub fn rotate_ech(&self, label_seed: &str) -> Result<Vec<u8>, AutomationError> {
        let server = self.server.as_ref().ok_or(AutomationError::NoEchServer)?;
        let configs = server.rotate_ech_key(label_seed).ok_or(AutomationError::NoEchServer)?;
        let apex = self.apex.clone();
        let ttl = self.ttl;
        let cfg_clone = configs.clone();
        self.zones
            .with_zone(&apex, |zone| {
                if let Some(existing) = zone.get(&apex, RecordType::Https).cloned() {
                    let updated: Vec<Record> = existing
                        .into_iter()
                        .map(|mut rec| {
                            if let RData::Https(rd) = &mut rec.rdata {
                                let mut replaced = false;
                                for p in rd.params.iter_mut() {
                                    if let SvcParam::Ech(v) = p {
                                        *v = cfg_clone.clone();
                                        replaced = true;
                                    }
                                }
                                if !replaced && !rd.is_alias() {
                                    rd.params.push(SvcParam::Ech(cfg_clone.clone()));
                                }
                            }
                            rec.ttl = ttl;
                            rec
                        })
                        .collect();
                    zone.set(apex.clone(), RecordType::Https, updated);
                }
            })
            .ok_or(AutomationError::ZoneMissing)?;
        Ok(configs)
    }

    /// Audit the managed zone: true when every ipv4hint matches the A
    /// RRset (the §4.3.5 consistency condition).
    pub fn consistent(&self) -> Result<bool, AutomationError> {
        let apex = self.apex.clone();
        self.zones
            .read_zone(&apex, |zone| {
                let a_ips: Vec<Ipv4Addr> = zone
                    .get(&apex, RecordType::A)
                    .map(|rs| {
                        rs.iter()
                            .filter_map(|r| match &r.rdata {
                                RData::A(ip) => Some(*ip),
                                _ => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let Some(https) = zone.get(&apex, RecordType::Https) else {
                    return true;
                };
                https.iter().all(|rec| match &rec.rdata {
                    RData::Https(rd) => rd
                        .ipv4hint()
                        .map(|hints| hints.iter().all(|h| a_ips.contains(h)))
                        .unwrap_or(true),
                    _ => true,
                })
            })
            .ok_or(AutomationError::ZoneMissing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use authserver::Zone;
    use dns_wire::SvcbRdata;
    use netsim::{Network, SimClock};
    use tlsech::{
        ClientHello, EchConfigList, EchExtension, EchKeyManager, EchServerState, InnerHello,
        ServerResponse, WebServerConfig,
    };

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn managed_world() -> (ZoneSet, Arc<WebServer>, RecordManager) {
        let net = Network::new(SimClock::new());
        let apex = name("managed.example");
        let zones = ZoneSet::new();
        let mut zone = Zone::new(apex.clone());
        zone.add(Record::new(apex.clone(), 300, RData::A(Ipv4Addr::new(10, 0, 0, 1))));
        zone.add(Record::new(
            apex.clone(),
            300,
            RData::Https(SvcbRdata::service_self(vec![
                SvcParam::Alpn(vec![b"h2".to_vec()]),
                SvcParam::Ipv4Hint(vec![Ipv4Addr::new(10, 0, 0, 1)]),
            ])),
        ));
        zones.insert(zone);
        let server = Arc::new(WebServer::new(
            net,
            WebServerConfig { cert_names: vec![apex.clone()], alpn: vec!["h2".into()] },
        ));
        server.enable_ech(EchServerState {
            manager: EchKeyManager::new(name("cover.managed.example"), "auto", 2),
            retry_enabled: true,
        });
        let mgr = RecordManager::new(zones.clone(), apex, 300).with_server(server.clone());
        (zones, server, mgr)
    }

    #[test]
    fn renumber_keeps_hints_and_a_in_lockstep() {
        let (zones, _server, mgr) = managed_world();
        assert_eq!(mgr.consistent(), Ok(true));
        mgr.renumber(Ipv4Addr::new(10, 9, 9, 9)).unwrap();
        assert_eq!(mgr.consistent(), Ok(true), "automation must keep records in lockstep");
        // And the values actually changed.
        let apex = name("managed.example");
        let hint = zones
            .read_zone(&apex, |z| {
                z.get(&apex, RecordType::Https).and_then(|rs| match &rs[0].rdata {
                    RData::Https(rd) => rd.ipv4hint().map(|h| h[0]),
                    _ => None,
                })
            })
            .flatten()
            .unwrap();
        assert_eq!(hint, Ipv4Addr::new(10, 9, 9, 9));
    }

    #[test]
    fn manual_renumber_diverges_automated_does_not() {
        // The §4.3.5 failure: update A but forget the hints.
        let (zones, _server, mgr) = managed_world();
        let apex = name("managed.example");
        zones.with_zone(&apex, |z| {
            z.set(
                apex.clone(),
                RecordType::A,
                vec![Record::new(apex.clone(), 300, RData::A(Ipv4Addr::new(10, 7, 7, 7)))],
            );
        });
        assert_eq!(mgr.consistent(), Ok(false), "manual update diverges");
        mgr.renumber(Ipv4Addr::new(10, 7, 7, 7)).unwrap();
        assert_eq!(mgr.consistent(), Ok(true), "automation repairs the divergence");
    }

    #[test]
    fn rotate_ech_updates_dns_and_keeps_grace() {
        let (zones, server, mgr) = managed_world();
        let apex = name("managed.example");
        // Publish the initial config via rotation 0.
        let first = mgr.rotate_ech("auto").unwrap();
        // A client caches this config...
        let cached = EchConfigList::decode(&first).unwrap();
        // ...the operator rotates again (within the grace window).
        let second = mgr.rotate_ech("auto").unwrap();
        assert_ne!(first, second);
        // DNS now serves the new config.
        let in_dns = zones
            .read_zone(&apex, |z| {
                z.get(&apex, RecordType::Https).and_then(|rs| match &rs[0].rdata {
                    RData::Https(rd) => rd.ech().map(|e| e.to_vec()),
                    _ => None,
                })
            })
            .flatten()
            .unwrap();
        assert_eq!(in_dns, second);
        // The stale cached config still works thanks to the grace window.
        let cfg = cached.preferred();
        let inner = InnerHello { sni: "managed.example".into(), alpn: vec!["h2".into()] };
        let sealed = cfg.public_key.seal(cfg.public_name.key().as_bytes(), &inner.encode());
        let hello = ClientHello {
            sni: cfg.public_name.key(),
            alpn: vec!["h2".into()],
            ech: Some(EchExtension { config_id: cfg.config_id, sealed_inner: sealed }),
        };
        assert!(matches!(
            server.handshake(&hello),
            ServerResponse::Accepted { used_ech: true, .. }
        ));
    }

    #[test]
    fn errors_on_missing_zone_or_server() {
        let zones = ZoneSet::new();
        let mgr = RecordManager::new(zones, name("ghost.example"), 300);
        assert_eq!(mgr.renumber(Ipv4Addr::new(1, 1, 1, 1)), Err(AutomationError::ZoneMissing));
        assert_eq!(mgr.consistent(), Err(AutomationError::ZoneMissing));
        assert_eq!(mgr.rotate_ech("x").unwrap_err(), AutomationError::NoEchServer);
    }
}
