//! `httpsrr-cli` — run the reproduction studies from the command line.
//!
//! ```text
//! httpsrr-cli study  [--population N] [--list N] [--stride D] [--seed S] [--csv PATH]
//! httpsrr-cli run    [--population N] [--list N] [--days D] [--threads T] [--seed S]
//!                    [--metrics PATH] [--csv PATH] [--store DIR]  # campaign (+ write-through)
//! httpsrr-cli resume --store DIR [--threads T]     # continue an interrupted --store campaign
//! httpsrr-cli compact --store DIR                  # rewrite a v1 store to v2 compressed blocks
//! httpsrr-cli bench  [--population N] [--list N] [--threads T] [--shards S] [--out PATH]
//! httpsrr-cli serve  [--population N] [--list N] [--rates R,R,..] [--capacity C] [--policy P]
//! httpsrr-cli matrix
//! httpsrr-cli rotation [--hours H]
//! httpsrr-cli audit  [--day D]
//! httpsrr-cli zone   <apex> <zonefile>    # lint a zone file's HTTPS records
//! ```

use httpsrr::analysis;
use httpsrr::ecosystem::{EcosystemConfig, World};
use httpsrr::scanner::{
    combined_csv, compact_store, hourly_ech_scan, open_store, write_combined_csv, Campaign,
    StoreFormat, StoreWriter, VantageRun,
};
use httpsrr::{client_side_report, server_side_report, Study};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "study" => cmd_study(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "resume" => cmd_resume(&args[1..]),
        "compact" => cmd_compact(&args[1..]),
        "bench" if args.iter().any(|a| a == "--store") => cmd_bench_persist(&args[1..]),
        "bench" if args.iter().any(|a| a == "--serve") => cmd_bench_serve(&args[1..]),
        "bench" if args.iter().any(|a| a == "--scale") => cmd_bench_scale(&args[1..]),
        "bench" if args.iter().any(|a| a == "--wire") => cmd_bench_wire(&args[1..]),
        "bench" if args.iter().any(|a| a == "--async") => cmd_bench_async(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "matrix" => {
            println!("{}", client_side_report());
            ExitCode::SUCCESS
        }
        "rotation" => cmd_rotation(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "zone" => cmd_zone(&args[1..]),
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  httpsrr-cli study  [--population N] [--list N] [--stride D] [--seed S] [--csv PATH]
  httpsrr-cli run    [--population N] [--list N] [--days D] [--threads T] [--seed S] [--metrics PATH] [--csv PATH] [--store DIR]
  httpsrr-cli resume --store DIR [--threads T]   # continue an interrupted --store campaign at the last day boundary
  httpsrr-cli compact --store DIR                # rewrite a v1 store to v2 compressed column blocks, atomically
  httpsrr-cli bench  [--population N] [--list N] [--threads T] [--mt-threads T] [--shards S] [--out PATH]
  httpsrr-cli bench  --store [--population N] [--list N] [--days D] [--threads T] [--out PATH]  # v1/v2/parallel store snapshot
  httpsrr-cli bench  --scale [--mt-threads T] [--threads T] [--out PATH]   # 6k vs 100k scale snapshot
  httpsrr-cli bench  --wire [--zones Z] [--reps R] [--out PATH]            # owned vs precompiled wire path A/B
  httpsrr-cli bench  --async [--population N] [--list N] [--reps R] [--out PATH]  # event-loop vs pooled at RTT 0/20/100 ms
  httpsrr-cli bench  --serve [--population N] [--list N] [--clients C] [--phase-ms MS] [--rates R,R,..] [--capacities C,C,..] [--out PATH]  # load sweep + hit-rate-vs-capacity curve
  httpsrr-cli serve  [--population N] [--list N] [--clients C] [--workers K] [--seed S] [--rates R,R,..] [--phase-ms MS] [--capacity C] [--policy lru|s3fifo] [--metrics]
  httpsrr-cli matrix
  httpsrr-cli rotation [--hours H]
  httpsrr-cli audit  [--day D]
  httpsrr-cli zone   <apex> <zonefile>";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn num_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Parse a comma-separated flag value (`--rates 2,4,8`); falls back to
/// `default` when the flag is absent or nothing parses.
fn list_flag<T: std::str::FromStr + Copy>(args: &[String], name: &str, default: &[T]) -> Vec<T> {
    let parsed: Vec<T> = flag(args, name)
        .map(|s| s.split(',').filter_map(|tok| tok.trim().parse().ok()).collect())
        .unwrap_or_default();
    if parsed.is_empty() {
        default.to_vec()
    } else {
        parsed
    }
}

/// Physical CPU count visible to the process; every bench schema records
/// it so a committed baseline names the host class it was measured on.
fn physical_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// JSON array of the thread counts a bench actually measured, deduped and
/// ascending — the `threads_axis` field shared by every bench schema.
fn threads_axis_json(counts: &[usize]) -> String {
    let mut axis = counts.to_vec();
    axis.sort_unstable();
    axis.dedup();
    let items: Vec<String> = axis.iter().map(|t| t.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn cmd_study(args: &[String]) -> ExitCode {
    let config = EcosystemConfig {
        population: num_flag(args, "--population", 2_000),
        list_size: num_flag(args, "--list", 1_400),
        seed: num_flag(args, "--seed", EcosystemConfig::default().seed),
        ..EcosystemConfig::default()
    };
    if config.list_size > config.population {
        eprintln!("--list must not exceed --population");
        return ExitCode::FAILURE;
    }
    let stride = num_flag(args, "--stride", 14u64);
    eprintln!(
        "running study: {} domains, {}-entry list, every {} days (seed {:#x}) …",
        config.population, config.list_size, stride, config.seed
    );
    let study = Study::run(config, stride);
    println!("{}", server_side_report(&study));
    if let Some(path) = flag(args, "--csv") {
        match std::fs::write(&path, study.store.to_csv()) {
            Ok(()) => eprintln!("wrote {} observations to {path}", study.store.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Run a multi-vantage campaign with telemetry attached and report the
/// cross-vantage diff (with per-vantage cache-hit rates); `--metrics`
/// dumps the full telemetry report — per-wave latency histograms,
/// deterministic counters (incl. the per-day hit-rate series), and
/// per-shard cache statistics for every vantage.
///
/// With `--store DIR` the campaign runs write-through instead: every
/// day's observations are flushed to the on-disk columnar store the
/// moment the day completes, the diff is then computed by *streaming
/// the store back from disk* (one day resident per vantage), and a
/// killed run can be continued with `resume --store DIR`.
fn cmd_run(args: &[String]) -> ExitCode {
    let config = EcosystemConfig {
        population: num_flag(args, "--population", 2_000),
        list_size: num_flag(args, "--list", 1_400),
        seed: num_flag(args, "--seed", EcosystemConfig::default().seed),
        ..EcosystemConfig::default()
    };
    if config.list_size > config.population {
        eprintln!("--list must not exceed --population");
        return ExitCode::FAILURE;
    }
    let days = num_flag(args, "--days", 3u64).max(1);
    let threads = num_flag(args, "--threads", 4usize).max(1);
    eprintln!(
        "running instrumented campaign: {} domains, {}-entry list, {} daily scans, 3 vantages …",
        config.population, config.list_size, days
    );
    let mut world = World::build(config);
    let campaign = Campaign {
        sample_days: (0..days).collect(),
        scan_www: true,
        threads,
        vantages: httpsrr::resolver::VantagePoint::presets(),
    };
    if let Some(dir) = flag(args, "--store") {
        if flag(args, "--metrics").is_some() {
            eprintln!(
                "--metrics is not available with --store (write-through runs are \
                       uninstrumented); rerun without --store for the telemetry report"
            );
            return ExitCode::FAILURE;
        }
        let dir = std::path::PathBuf::from(dir);
        let mut writer = match campaign.create_store(&world, &dir) {
            Ok(w) => w,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                eprintln!(
                    "store {} already exists — use `httpsrr-cli resume --store {}` to \
                     continue it",
                    dir.display(),
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("cannot create store {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = campaign.run_to_store(&mut world, &mut writer) {
            eprintln!("write-through campaign failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} bytes to {} ({} days × {} vantages)",
            writer.bytes_written(),
            dir.display(),
            writer.completed_days(),
            writer.meta().vantages.len()
        );
        drop(writer);
        return report_from_store(&dir, args);
    }

    let runs = campaign.run_vantages_instrumented(&mut world);
    println!("{}", analysis::vantage_diff_runs(&runs));

    if let Some(path) = flag(args, "--metrics") {
        if let Err(e) = std::fs::write(&path, metrics_report(&runs)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote telemetry report to {path}");
    }
    if let Some(path) = flag(args, "--csv") {
        let stores: Vec<_> = runs.iter().map(|r| &r.store).collect();
        if let Err(e) = std::fs::write(&path, combined_csv(stores)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote combined per-vantage CSV to {path}");
    }
    ExitCode::SUCCESS
}

/// The full telemetry report for an instrumented campaign: one section
/// per vantage (registry counters + histograms, then aggregate and
/// per-shard cache statistics, in `CacheStats`'s canonical rendering).
fn metrics_report(runs: &[VantageRun]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for run in runs {
        out.push_str(&run.metrics.render_text());
        let _ = writeln!(out, "cache aggregate {}", run.cache);
        for (i, shard) in run.shards.iter().enumerate() {
            let _ = writeln!(out, "cache shard{i:02} {shard}");
        }
        if let Some(rate) = run.resolution_hit_rate() {
            let _ = writeln!(out, "resolution from_cache_rate {rate:.4}");
        }
        out.push('\n');
    }
    out
}

/// Reopen a written store read-only and print the cross-vantage diff by
/// streaming it from disk — one reader thread per vantage feeding the
/// single-pass diff (byte-identical to the sequential scan); `--csv`
/// streams the combined CSV straight to the file without materializing
/// any store in memory.
fn report_from_store(dir: &std::path::Path, args: &[String]) -> ExitCode {
    let store = match open_store(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot reopen store {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    println!("{}", analysis::vantage_diff_parallel(&store.sources()));
    if let Some(path) = flag(args, "--csv") {
        let result = std::fs::File::create(&path)
            .and_then(|mut f| write_combined_csv(&store.sources(), &mut f));
        if let Err(e) = result {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("streamed combined per-vantage CSV to {path}");
    }
    ExitCode::SUCCESS
}

/// `resume` — reopen an interrupted `run --store` campaign and finish
/// it. The manifest carries everything needed (world seed/population/
/// list size, sample days, vantage names), so the command takes only
/// the directory. Days already on disk are deterministically replayed
/// and verified chunk-for-chunk; scanning appends from the first
/// missing day, making the final store byte-identical to an
/// uninterrupted run.
fn cmd_resume(args: &[String]) -> ExitCode {
    use httpsrr::resolver::{SelectionStrategy, VantagePoint};

    let Some(dir) = flag(args, "--store") else {
        eprintln!("resume requires --store DIR\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let dir = std::path::PathBuf::from(dir);
    let mut writer = match StoreWriter::open_resume(&dir) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot resume store {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let meta = writer.meta().clone();

    // Rebuild the exact campaign the store was created with. Vantage
    // profiles are recovered by preset name; a store written through a
    // non-preset profile cannot be reconstructed from its name alone.
    let presets = VantagePoint::presets();
    let mut vantages = Vec::with_capacity(meta.vantages.len());
    for name in &meta.vantages {
        if name.is_empty() {
            // The default single-vantage campaign (empty vantage list).
            vantages.push(VantagePoint::custom("", SelectionStrategy::RoundRobin));
        } else if let Some(p) = presets.iter().find(|p| p.name == *name) {
            vantages.push(p.clone());
        } else {
            eprintln!(
                "store vantage {name:?} is not a known preset — this store was written \
                 through a custom profile and must be resumed via the library API"
            );
            return ExitCode::FAILURE;
        }
    }
    let config = EcosystemConfig {
        population: meta.population as usize,
        list_size: meta.list_size as usize,
        seed: meta.world_seed,
        ..EcosystemConfig::default()
    };
    let threads = num_flag(args, "--threads", 4usize).max(1);
    let campaign = Campaign {
        sample_days: meta.sample_days.clone(),
        scan_www: meta.scan_www,
        threads,
        vantages: if meta.vantages.iter().all(|n| n.is_empty()) { Vec::new() } else { vantages },
    };
    eprintln!(
        "resuming {}: {} of {} days complete ({} domains, {}-entry list, seed {:#x}) …",
        dir.display(),
        writer.completed_days(),
        meta.sample_days.len(),
        meta.population,
        meta.list_size,
        meta.world_seed
    );
    let mut world = World::build(config);
    match campaign.run_to_store(&mut world, &mut writer) {
        Ok(report) => eprintln!(
            "replayed {} vantage-days (verified against disk), appended {}",
            report.replayed_days, report.appended_days
        ),
        Err(e) => {
            eprintln!("resume failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    drop(writer);
    report_from_store(&dir, args)
}

/// `compact --store DIR` — rewrite a store in place to the v2 chunk
/// format (compressed column blocks + statistics footers). v1 stores
/// shrink several-fold; already-v2 stores are re-encoded byte-stably.
/// The rewrite builds the new files in a sibling temp directory and
/// swaps them in with renames, so a crash leaves the original intact.
fn cmd_compact(args: &[String]) -> ExitCode {
    let Some(dir) = flag(args, "--store") else {
        eprintln!("compact requires --store DIR\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let dir = std::path::PathBuf::from(dir);
    match compact_store(&dir) {
        Ok(report) => {
            let ratio = if report.bytes_after > 0 {
                report.bytes_before as f64 / report.bytes_after as f64
            } else {
                0.0
            };
            eprintln!(
                "compacted {}: {} vantages, {} chunks, {} rows, {} -> {} bytes ({ratio:.2}x)",
                dir.display(),
                report.vantages,
                report.chunks,
                report.rows,
                report.bytes_before,
                report.bytes_after
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot compact store {}: {e}", dir.display());
            ExitCode::FAILURE
        }
    }
}

/// `bench --store` — the persistence snapshot (schema 8): one campaign
/// measured four ways on identical worlds — in-memory reference, raw v1
/// write-through (the compression baseline), compressed v2 write-through
/// (the default format), and the one-reader-thread-per-vantage parallel
/// diff — plus a full-decode vs projection-pruned streaming-scan A/B
/// over the v2 store. Every cross-vantage diff rendered along the way
/// must be byte-identical (hard failure).
fn cmd_bench_persist(args: &[String]) -> ExitCode {
    use httpsrr::scanner::{Projection, ScanFilter};
    use std::time::Instant;

    let population = num_flag(args, "--population", 1_200usize);
    let list_size = num_flag(args, "--list", 900usize);
    let days = num_flag(args, "--days", 6u64).max(1);
    let threads = num_flag(args, "--threads", 4usize).max(1);
    let scan_reps = num_flag(args, "--scan-reps", 3u32).max(1);
    let ms = |secs: f64| secs * 1e3;
    let config = EcosystemConfig { population, list_size, ..EcosystemConfig::tiny() };
    let campaign = Campaign {
        sample_days: (0..days).collect(),
        scan_www: true,
        threads,
        vantages: httpsrr::resolver::VantagePoint::presets(),
    };
    let base = std::env::temp_dir().join(format!("httpsrr-bench-store-{}", std::process::id()));
    let v1_dir = base.join("v1");
    let v2_dir = base.join("v2");
    let _ = std::fs::remove_dir_all(&base);

    // In-memory reference campaign.
    eprintln!("persist: in-memory reference campaign ({days} days × 3 vantages) …");
    let mut world = World::build(config.clone());
    let t = Instant::now();
    let stores = campaign.run_vantages(&mut world);
    let memory_wall_ms = ms(t.elapsed().as_secs_f64());
    let memory_report = analysis::vantage_diff(&stores).to_string();
    let resident_rows_memory: usize = stores.iter().map(|s| s.len()).sum();
    drop(stores);

    // Raw v1 write-through on a fresh identical world: the compression
    // baseline, and the cross-version read-compat leg (its bytes go
    // back through the same reader as v2 below).
    eprintln!("persist: raw v1 write-through campaign to {} …", v1_dir.display());
    let mut world = World::build(config.clone());
    let mut writer = match StoreWriter::create_with_format(
        &v1_dir,
        campaign.store_meta(&world),
        StoreFormat::V1,
    ) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot create v1 store: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = campaign.run_to_store(&mut world, &mut writer) {
        eprintln!("v1 write-through campaign failed: {e}");
        return ExitCode::FAILURE;
    }
    let raw_store_bytes = writer.bytes_written();
    drop(writer);

    // Compressed v2 write-through (the default) on another identical world.
    eprintln!("persist: v2 write-through campaign to {} …", v2_dir.display());
    let mut world = World::build(config);
    let mut writer = match campaign.create_store(&world, &v2_dir) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot create store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t = Instant::now();
    if let Err(e) = campaign.run_to_store(&mut world, &mut writer) {
        eprintln!("write-through campaign failed: {e}");
        return ExitCode::FAILURE;
    }
    let disk_wall_ms = ms(t.elapsed().as_secs_f64());
    let store_bytes = writer.bytes_written();
    let write_seconds = writer.write_seconds();
    let chunk_write_mbps =
        if write_seconds > 0.0 { store_bytes as f64 / 1e6 / write_seconds } else { 0.0 };
    let compression_ratio =
        if store_bytes > 0 { raw_store_bytes as f64 / store_bytes as f64 } else { 0.0 };
    let compression_mbps =
        if write_seconds > 0.0 { raw_store_bytes as f64 / 1e6 / write_seconds } else { 0.0 };
    drop(writer);

    // Streaming scan A/B from the v2 store: full decode of every column
    // vs the projection-pruned adoption shape (flags + domain_id only).
    let store = match open_store(&v2_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot reopen store: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Best-of-reps timing: the scans are sub-millisecond, so the min is
    // the defensible number on shared runners (the mean folds scheduler
    // noise into the speedup ratio).
    eprintln!("persist: full vs pruned streaming scan ({scan_reps} reps, best-of) …");
    let mut total_rows = 0usize;
    let mut scan_s = f64::INFINITY;
    for rep in 0..scan_reps {
        let mut rows = 0usize;
        let t = Instant::now();
        for source in store.sources() {
            source.for_each_day(&mut |_, obs| rows += obs.len());
        }
        scan_s = scan_s.min(t.elapsed().as_secs_f64());
        if rep == 0 {
            total_rows = rows;
        }
    }
    let scan_rows_per_sec = if scan_s > 0.0 { total_rows as f64 / scan_s } else { 0.0 };
    let decompression_mbps = if scan_s > 0.0 { raw_store_bytes as f64 / 1e6 / scan_s } else { 0.0 };

    let pruned = ScanFilter::projected(Projection::FLAGS.with(Projection::DOMAIN_ID));
    let mut pruned_rows = 0usize;
    let mut pruned_s = f64::INFINITY;
    for rep in 0..scan_reps {
        let mut rows = 0usize;
        let t = Instant::now();
        for source in store.sources() {
            source.for_each_day_filtered(pruned, &mut |_, obs| rows += obs.len());
        }
        pruned_s = pruned_s.min(t.elapsed().as_secs_f64());
        if rep == 0 {
            pruned_rows = rows;
        }
    }
    let pruned_rows_per_sec = if pruned_s > 0.0 { pruned_rows as f64 / pruned_s } else { 0.0 };
    let pruned_speedup = if pruned_s > 0.0 { scan_s / pruned_s } else { 0.0 };
    if pruned_rows != total_rows {
        eprintln!("persist: pruned scan lost rows ({pruned_rows} of {total_rows})");
        return ExitCode::FAILURE;
    }

    // Resident bound: streaming holds at most the largest day per
    // vantage; the in-memory store holds every observation at once.
    let resident_rows_disk: usize = store.readers.iter().map(|r| r.max_rows_per_day()).sum();
    let resident_ratio = if resident_rows_memory > 0 {
        resident_rows_disk as f64 / resident_rows_memory as f64
    } else {
        0.0
    };

    // Sequential vs parallel cross-vantage diff from v2, and the v1
    // store through the same reader: all must render the in-memory
    // report byte-for-byte or the numbers above mean nothing.
    let t = Instant::now();
    let v2_seq_report = analysis::vantage_diff_sources(&store.sources()).to_string();
    let seq_diff_wall_ms = ms(t.elapsed().as_secs_f64());
    let t = Instant::now();
    let v2_par_report = analysis::vantage_diff_parallel(&store.sources()).to_string();
    let parallel_diff_wall_ms = ms(t.elapsed().as_secs_f64());
    let vantages = store.readers.len();
    drop(store);
    let v1_report = match open_store(&v1_dir) {
        Ok(s) => analysis::vantage_diff_parallel(&s.sources()).to_string(),
        Err(e) => {
            eprintln!("cannot reopen v1 store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let byte_identical = v2_seq_report == memory_report
        && v2_par_report == memory_report
        && v1_report == memory_report;
    let _ = std::fs::remove_dir_all(&base);
    if !byte_identical {
        eprintln!("persist: BYTE-IDENTITY FAILURE across memory/v1/v2/parallel reports");
        eprintln!(
            "--- memory ---\n{memory_report}\n--- v1 ---\n{v1_report}\n--- v2 sequential ---\n\
             {v2_seq_report}\n--- v2 parallel ---\n{v2_par_report}"
        );
        return ExitCode::FAILURE;
    }

    let physical_cpus = physical_cpus();
    let threads_axis = threads_axis_json(&[1, threads, vantages]);
    let json = format!(
        "{{\n  \"bench\": \"persist\",\n  \"schema\": 8,\n  \"population\": {population},\n  \
         \"list_size\": {list_size},\n  \"days\": {days},\n  \"vantages\": {vantages},\n  \
         \"threads\": {threads},\n  \"physical_cpus\": {physical_cpus},\n  \
         \"threads_axis\": {threads_axis},\n  \"total_rows\": {total_rows},\n  \
         \"raw_store_bytes\": {raw_store_bytes},\n  \"store_bytes\": {store_bytes},\n  \
         \"compression_ratio\": {compression_ratio:.2},\n  \
         \"chunk_write_mbps\": {chunk_write_mbps:.1},\n  \
         \"write_seconds\": {write_seconds:.4},\n  \
         \"compression_mbps\": {compression_mbps:.1},\n  \
         \"decompression_mbps\": {decompression_mbps:.1},\n  \
         \"scan_rows_per_sec\": {scan_rows_per_sec:.0},\n  \"scan_wall_ms\": {:.2},\n  \
         \"pruned_scan_rows_per_sec\": {pruned_rows_per_sec:.0},\n  \
         \"pruned_scan_wall_ms\": {:.2},\n  \"pruned_speedup\": {pruned_speedup:.2},\n  \
         \"seq_diff_wall_ms\": {seq_diff_wall_ms:.2},\n  \
         \"parallel_diff_wall_ms\": {parallel_diff_wall_ms:.2},\n  \
         \"memory_wall_ms\": {memory_wall_ms:.1},\n  \"disk_wall_ms\": {disk_wall_ms:.1},\n  \
         \"resident_rows_disk\": {resident_rows_disk},\n  \
         \"resident_rows_memory\": {resident_rows_memory},\n  \
         \"resident_ratio\": {resident_ratio:.4},\n  \"byte_identical\": {byte_identical},\n  \
         \"notes\": \"identical worlds run four ways: in-memory, raw v1 write-through (the \
         compression baseline, streamed back through the same version-dispatching reader), \
         compressed v2 write-through (the default format), and the one-reader-thread-per-vantage \
         parallel diff; compression/decompression MB/s are raw uncompressed bytes over the v2 \
         writer's own append time and over the full-decode streaming pass; the pruned scan \
         decodes only the flags and domain_id blocks (chunk checksums still verified over every \
         byte) so pruned_speedup isolates the column-decode saving; threads_axis lists the scan \
         thread counts actually measured (1 = sequential diff, vantage count = parallel diff) \
         plus the campaign's worker threads; all four cross-vantage reports are asserted \
         byte-identical\"\n}}\n",
        ms(scan_s),
        ms(pruned_s),
    );
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote persist snapshot to {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// The pre-pool batch path, reconstructed faithfully as a benchmark
/// baseline: dedup on freshly-allocated `(String, u16)` keys, a
/// zone-affinity partition that renders a key `String` per distinct
/// query (via `find_authority`), scoped OS threads torn down and
/// respawned per batch, and the same input-order result assembly. The
/// delta against `QueryEngine::resolve_batch` on the same warm engine
/// is what the persistent worker pool plus the borrowed-key hot path
/// buys per batch.
fn scoped_spawn_batch(
    engine: &httpsrr::resolver::QueryEngine,
    queries: &[httpsrr::resolver::Query],
    threads: usize,
) {
    use std::collections::HashMap;
    fn fnv1a(key: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
    let resolver = engine.resolver();

    let mut index_of: HashMap<(String, u16), usize> = HashMap::new();
    let mut distinct: Vec<&httpsrr::resolver::Query> = Vec::new();
    let mut positions: Vec<usize> = Vec::with_capacity(queries.len());
    for q in queries {
        let next = distinct.len();
        let idx = *index_of.entry((q.name.key(), q.rtype.code())).or_insert_with(|| {
            distinct.push(q);
            next
        });
        positions.push(idx);
    }

    let threads = threads.clamp(1, distinct.len());
    let mut resolved = vec![None; distinct.len()];
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); threads];
    for (i, q) in distinct.iter().enumerate() {
        let affinity = resolver
            .registry()
            .find_authority(&q.name)
            .map(|(apex, _)| apex.key())
            .unwrap_or_else(|| q.name.key());
        assignment[(fnv1a(&affinity) % threads as u64) as usize].push(i);
    }
    let chunks: Vec<Vec<(usize, _)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignment
            .iter()
            .filter(|indices| !indices.is_empty())
            .map(|indices| {
                let distinct = &distinct;
                scope.spawn(move || {
                    indices
                        .iter()
                        .map(|&i| (i, resolver.resolve(&distinct[i].name, distinct[i].rtype)))
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scoped baseline worker")).collect()
    });
    for (i, result) in chunks.into_iter().flatten() {
        resolved[i] = Some(result);
    }
    let mut remaining = vec![0usize; resolved.len()];
    for &idx in &positions {
        remaining[idx] += 1;
    }
    let _results: Vec<_> = positions
        .into_iter()
        .map(|idx| {
            remaining[idx] -= 1;
            let slot = &mut resolved[idx];
            if remaining[idx] == 0 { slot.take() } else { slot.clone() }.expect("resolved")
        })
        .collect();
}

/// Benchmark the engine's batch path against the scanner's wave-1 query
/// shape and emit a machine-readable JSON perf snapshot (cold-batch
/// latency, warm throughput at one and `--mt-threads` workers, the
/// scoped-spawn baseline the worker pool replaced, hit rates,
/// deterministic counters).
fn cmd_bench(args: &[String]) -> ExitCode {
    use httpsrr::dns_wire::RecordType;
    use httpsrr::resolver::{Query, QueryEngine, ResolverConfig, SelectionStrategy};
    use std::sync::Arc;
    use std::time::Instant;

    let population = num_flag(args, "--population", 1_200usize);
    let list_size = num_flag(args, "--list", 900usize);
    let threads = num_flag(args, "--threads", 1usize).max(1);
    let shards = num_flag(args, "--shards", httpsrr::resolver::DEFAULT_SHARDS);
    let world = World::build(EcosystemConfig { population, list_size, ..EcosystemConfig::tiny() });

    // The scanner's wave-1 shape: HTTPS + A + NS per apex, HTTPS for www.
    let mut queries = Vec::new();
    for &id in world.today_list().ranked() {
        let apex = world.domain(id).apex.clone();
        queries.push(Query::new(apex.clone(), RecordType::Https));
        queries.push(Query::new(apex.clone(), RecordType::A));
        queries.push(Query::new(apex.clone(), RecordType::Ns));
        if let Ok(www) = apex.prepend("www") {
            queries.push(Query::new(www, RecordType::Https));
        }
    }

    let engine = |metrics: Option<Arc<httpsrr::telemetry::MetricsRegistry>>| {
        let eng = QueryEngine::new(
            world.network.clone(),
            world.registry.clone(),
            ResolverConfig {
                validate: true,
                strategy: SelectionStrategy::RoundRobin,
                cache_shards: shards,
                ..Default::default()
            },
        );
        match metrics {
            Some(m) => eng.with_metrics(m),
            None => eng,
        }
    };

    // Cold: fresh engine and cache, full authority path.
    let cold_reps = 3u32;
    let cold_start = Instant::now();
    for _ in 0..cold_reps {
        let _ = engine(None).resolve_batch(&queries, threads);
    }
    let cold_batch_ms = cold_start.elapsed().as_secs_f64() * 1e3 / cold_reps as f64;

    // Warm: prime the cache uninstrumented, then attach the registry so
    // the reported warm metrics cover only the measured batches (the
    // cold priming batch would otherwise dilute the rates and make the
    // snapshot depend on warm_reps).
    let warm_engine = engine(None);
    let _ = warm_engine.resolve_batch(&queries, threads);
    let primed = warm_engine.cache().stats();
    let metrics = Arc::new(httpsrr::telemetry::MetricsRegistry::new("bench"));
    let warm_engine = warm_engine.with_metrics(metrics.clone());
    let warm_reps = 5u32;
    let warm_start = Instant::now();
    for _ in 0..warm_reps {
        let _ = warm_engine.resolve_batch(&queries, threads);
    }
    let warm_batch_ms = warm_start.elapsed().as_secs_f64() * 1e3 / warm_reps as f64;
    let warm_kqps = queries.len() as f64 / (warm_batch_ms / 1e3) / 1e3;

    let from_cache = metrics.counter_value("engine.from_cache");
    let distinct = metrics.counter_value("engine.distinct");
    let warm_from_cache_rate =
        if distinct == 0 { 0.0 } else { from_cache as f64 / distinct as f64 };
    // Warm cache behaviour: the post-prime delta of the cache counters.
    let cache = warm_engine.cache().stats();
    let warm_hits = cache.hits - primed.hits;
    let warm_lookups = cache.lookups() - primed.lookups();
    let warm_cache_hit_rate =
        if warm_lookups == 0 { 0.0 } else { warm_hits as f64 / warm_lookups as f64 };

    // Multi-threaded fan-out comparison on one primed engine: the
    // persistent-pool path vs the scoped-spawn-per-batch fan-out it
    // replaced, same warm cache and work. The pool is started by the
    // priming batch, so the measured batches pay zero spawns.
    let mt_threads = num_flag(args, "--mt-threads", 4usize).max(2);
    let mt_engine = engine(None);
    let _ = mt_engine.resolve_batch(&queries, mt_threads);
    let mt_reps = 5u32;
    // Dedicated sequential baseline on the same primed engine: the
    // overhead fields below must mean "fan-out vs sequential" even when
    // `--threads` (and with it `warm_batch_ms`) is not 1.
    let t1_start = Instant::now();
    for _ in 0..mt_reps {
        let _ = mt_engine.resolve_batch(&queries, 1);
    }
    let warm_t1_ms = t1_start.elapsed().as_secs_f64() * 1e3 / mt_reps as f64;
    let mt_start = Instant::now();
    for _ in 0..mt_reps {
        let _ = mt_engine.resolve_batch(&queries, mt_threads);
    }
    let warm_pool_mt_ms = mt_start.elapsed().as_secs_f64() * 1e3 / mt_reps as f64;
    let scoped_start = Instant::now();
    for _ in 0..mt_reps {
        scoped_spawn_batch(&mt_engine, &queries, mt_threads);
    }
    let warm_scoped_mt_ms = scoped_start.elapsed().as_secs_f64() * 1e3 / mt_reps as f64;
    let pool_mt_overhead_pct = (warm_pool_mt_ms / warm_t1_ms - 1.0) * 100.0;
    let scoped_mt_overhead_pct = (warm_scoped_mt_ms / warm_t1_ms - 1.0) * 100.0;

    use std::fmt::Write;
    let mut counters = String::new();
    for (i, (name, value)) in metrics.counter_snapshot().into_iter().enumerate() {
        if i > 0 {
            counters.push_str(", ");
        }
        let _ = write!(counters, "\"{name}\": {value}");
    }
    let json = format!(
        "{{\n  \"bench\": \"engine_batch\",\n  \"schema\": 2,\n  \"population\": {population},\n  \
         \"list_size\": {list_size},\n  \"shards\": {shards},\n  \"threads\": {threads},\n  \
         \"physical_cpus\": {},\n  \"threads_axis\": {},\n  \
         \"queries_per_batch\": {},\n  \"cold_batch_ms\": {cold_batch_ms:.2},\n  \
         \"warm_batch_ms\": {warm_batch_ms:.2},\n  \"warm_kqps\": {warm_kqps:.1},\n  \
         \"warm_from_cache_rate\": {warm_from_cache_rate:.4},\n  \
         \"warm_cache_hit_rate\": {warm_cache_hit_rate:.4},\n  \
         \"mt_threads\": {mt_threads},\n  \
         \"warm_t1_ms\": {warm_t1_ms:.2},\n  \
         \"warm_pool_mt_ms\": {warm_pool_mt_ms:.2},\n  \
         \"warm_scoped_mt_ms\": {warm_scoped_mt_ms:.2},\n  \
         \"pool_mt_overhead_pct\": {pool_mt_overhead_pct:.1},\n  \
         \"scoped_mt_overhead_pct\": {scoped_mt_overhead_pct:.1},\n  \
         \"cache_lock_contended\": {},\n  \"counters\": {{{counters}}}\n}}\n",
        physical_cpus(),
        threads_axis_json(&[1, threads, mt_threads]),
        queries.len(),
        cache.lock_contended,
    );
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote perf snapshot to {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// The ecosystem-layer scale snapshot (`bench --scale`): same-binary
/// A/B of day-list computation (pre-refactor full-sort reference vs the
/// chunked partial-selection scorer, sequential and multi-threaded,
/// with byte-identical lists asserted), plus world build / dirty-set
/// step / full-day scan timings at 6 k and 100 k domains, and the
/// shared day-list cache's effect on an overlap window.
fn cmd_bench_scale(args: &[String]) -> ExitCode {
    use httpsrr::ecosystem::TrancoModel;
    use std::fmt::Write;
    use std::time::Instant;

    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mt_threads = num_flag(args, "--mt-threads", host_cpus).max(1);
    let scan_threads = num_flag(args, "--threads", 1usize).max(1);
    let ms = |secs: f64| secs * 1e3;

    // ---- day-list computation A/B ----
    // Days straddle the source change; every measured list is asserted
    // byte-identical between the reference and both new paths.
    let list_days: [u64; 3] = [0, 42, 86];
    let list_rows: [(usize, usize); 3] = [(6_000, 4_000), (100_000, 10_000), (100_000, 66_000)];
    let mut list_json = String::new();
    for (i, &(population, list_size)) in list_rows.iter().enumerate() {
        eprintln!("scale: day-list A/B at population {population}, list {list_size} …");
        let config = EcosystemConfig {
            population,
            list_size,
            score_threads: 1,
            ..EcosystemConfig::default()
        };
        let t = Instant::now();
        let model = TrancoModel::new(&config);
        let model_build_ms = ms(t.elapsed().as_secs_f64());

        // Small universes score in well under a millisecond; repeat them
        // enough that scheduler noise on a shared host can't invert a
        // sub-ms A/B.
        let reps = (200_000 / population).clamp(3, 50) as u32;
        let mut baseline_s = 0.0;
        let mut seq_s = 0.0;
        let mut mt_s = 0.0;
        let mut identical = true;
        for &day in &list_days {
            let t = Instant::now();
            let mut reference = model.list_for_day_reference(day);
            for _ in 1..reps {
                reference = model.list_for_day_reference(day);
            }
            baseline_s += t.elapsed().as_secs_f64();
            let t = Instant::now();
            let mut seq = model.list_for_day_with_threads(day, 1);
            for _ in 1..reps {
                seq = model.list_for_day_with_threads(day, 1);
            }
            seq_s += t.elapsed().as_secs_f64();
            let t = Instant::now();
            let mut mt = model.list_for_day_with_threads(day, mt_threads);
            for _ in 1..reps {
                mt = model.list_for_day_with_threads(day, mt_threads);
            }
            mt_s += t.elapsed().as_secs_f64();
            identical &= seq.ranked() == reference.ranked() && mt.ranked() == reference.ranked();
        }
        let per_day = (list_days.len() as u32 * reps) as f64;
        let (baseline, seq, mt) = (baseline_s / per_day, seq_s / per_day, mt_s / per_day);
        // Warm cache re-access cost for one already-computed day.
        let cached = model.day_list(0);
        let t = Instant::now();
        let cached_again = model.day_list(0);
        let cached_us = t.elapsed().as_secs_f64() * 1e6;
        identical &= std::sync::Arc::ptr_eq(&cached, &cached_again);
        let _ = write!(
            list_json,
            "    {{ \"population\": {population}, \"list_size\": {list_size}, \
             \"model_build_ms\": {model_build_ms:.2}, \
             \"baseline_ms_per_day\": {:.3}, \"seq_ms_per_day\": {:.3}, \
             \"mt_ms_per_day\": {:.3}, \"cached_reaccess_us\": {cached_us:.1}, \
             \"seq_speedup\": {:.2}, \"mt_speedup\": {:.2}, \"identical\": {identical} }}{}",
            ms(baseline),
            ms(seq),
            ms(mt),
            baseline / seq,
            baseline / mt,
            if i + 1 < list_rows.len() { ",\n" } else { "" },
        );
        if !identical {
            eprintln!("scale: BYTE-IDENTITY FAILURE at population {population}");
            return ExitCode::FAILURE;
        }
    }

    // ---- world build / step / scan ----
    let world_rows: [(usize, usize); 2] = [(6_000, 4_000), (100_000, 10_000)];
    let mut world_json = String::new();
    for (i, &(population, list_size)) in world_rows.iter().enumerate() {
        eprintln!("scale: world build+step+scan at population {population} …");
        let config = EcosystemConfig { population, list_size, ..EcosystemConfig::default() };
        let t = Instant::now();
        let mut world = World::build(config);
        let world_build_ms = ms(t.elapsed().as_secs_f64());
        let step_days = 3u64;
        let t = Instant::now();
        world.step_to_day(step_days);
        let step_ms_per_day = ms(t.elapsed().as_secs_f64()) / step_days as f64;
        let campaign = Campaign {
            sample_days: vec![step_days],
            scan_www: true,
            threads: scan_threads,
            vantages: Vec::new(),
        };
        let t = Instant::now();
        let store = campaign.run(&mut world);
        let scan_s = t.elapsed().as_secs_f64();
        let observations = store.len();
        // The cache dedup: an overlap analysis over the stepped window
        // re-reads four day lists that are all still cached.
        let t = Instant::now();
        let overlap = world.tranco.overlapping(0, step_days);
        let overlap_ms = ms(t.elapsed().as_secs_f64());
        let cache = world.tranco.day_cache();
        let _ = write!(
            world_json,
            "    {{ \"population\": {population}, \"list_size\": {list_size}, \
             \"world_build_ms\": {world_build_ms:.1}, \"step_ms_per_day\": {step_ms_per_day:.2}, \
             \"scan_day_ms\": {:.1}, \"observations\": {observations}, \
             \"obs_per_sec\": {:.0}, \"overlap_window_ms\": {overlap_ms:.3}, \
             \"overlap_size\": {}, \"day_cache_hits\": {}, \"day_cache_misses\": {} }}{}",
            ms(scan_s),
            observations as f64 / scan_s,
            overlap.len(),
            cache.hits(),
            cache.misses(),
            if i + 1 < world_rows.len() { ",\n" } else { "" },
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"schema\": 3,\n  \"host_cpus\": {host_cpus},\n  \
         \"physical_cpus\": {},\n  \"threads_axis\": {},\n  \
         \"mt_threads\": {mt_threads},\n  \"scan_threads\": {scan_threads},\n  \
         \"list_days\": {list_days:?},\n  \"list_rows\": [\n{list_json}\n  ],\n  \
         \"world_rows\": [\n{world_json}\n  ],\n  \
         \"notes\": \"speedups are same-binary A/B vs the pre-refactor full-sort scorer with \
         byte-identical lists asserted; per-call gains are bounded by the bit-exact per-domain \
         RNG+Box-Muller scoring floor (~50-75% of baseline cost), which only parallel chunking \
         can divide, so seq_speedup reflects the partial-selection win and mt_speedup scales \
         with host_cpus; cached_reaccess_us and overlap_window_ms show the day-list cache \
         eliminating whole recomputations\"\n}}\n",
        physical_cpus(),
        threads_axis_json(&[1, scan_threads, mt_threads]),
    );
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote scale snapshot to {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// The wire-path snapshot (`bench --wire`): same-binary A/B of the
/// authoritative serve path. The owned reference path decodes every
/// query into a [`Message`], assembles the answer, and encodes it; the
/// precompiled path parses a borrowed [`MessageView`] and serves cached
/// response bytes with only the transaction ID patched. Every response
/// is asserted byte-identical between the two paths (hard failure).
fn cmd_bench_wire(args: &[String]) -> ExitCode {
    use httpsrr::authserver::{AuthoritativeServer, Zone, ZoneSet};
    use httpsrr::dns_wire::{DnsName, Message, RData, Record, RecordType, SvcParam, SvcbRdata};
    use httpsrr::dnssec::ZoneKeys;
    use httpsrr::netsim::{DatagramService, Timestamp};
    use std::net::Ipv4Addr;
    use std::time::Instant;

    let zones_n: usize = num_flag(args, "--zones", 400usize).max(1);
    let reps: u32 = num_flag(args, "--reps", 5u32).max(1);
    let ms = |secs: f64| secs * 1e3;

    eprintln!("wire: building {zones_n} zones (every 4th signed) …");
    let zones = ZoneSet::new();
    let mut apexes = Vec::with_capacity(zones_n);
    for i in 0..zones_n {
        let apex = DnsName::parse(&format!("d{i}.example")).unwrap();
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, (i % 250 + 1) as u8)),
        ));
        z.add(Record::new(
            apex.clone(),
            300,
            RData::Https(SvcbRdata::service_self(vec![
                SvcParam::Alpn(vec![b"h2".to_vec(), b"h3".to_vec()]),
                SvcParam::Ipv4Hint(vec![Ipv4Addr::new(203, 0, 113, 7)]),
            ])),
        ));
        z.add(Record::new(apex.prepend("www").unwrap(), 300, RData::Cname(apex.clone())));
        if i % 4 == 0 {
            z.enable_signing(ZoneKeys::derive(&apex, i as u32), 0, u32::MAX - 1);
        }
        zones.insert(z);
        apexes.push(apex);
    }
    let server = AuthoritativeServer::new(zones);

    // Query workload: per zone, four shapes exercising plain answers,
    // DO-bit DNSSEC variants, in-zone CNAME chasing, and NXDOMAIN+SOA.
    let mut queries: Vec<Vec<u8>> = Vec::with_capacity(zones_n * 4);
    for apex in &apexes {
        queries.push(Message::query(1, apex.clone(), RecordType::Https).encode());
        queries.push(Message::query_dnssec(2, apex.clone(), RecordType::Https).encode());
        queries.push(Message::query(3, apex.prepend("www").unwrap(), RecordType::A).encode());
        queries.push(Message::query(4, apex.prepend("missing").unwrap(), RecordType::A).encode());
    }

    // Owned reference path: full decode + answer assembly + encode per
    // message — the pre-change `handle()` body.
    let owned_once = |wire: &[u8]| -> Vec<u8> {
        let q = Message::decode(wire).expect("bench query decodes");
        server.answer(&q).encode()
    };

    eprintln!("wire: owned reference path ({} msgs × {reps} reps) …", queries.len());
    let t = Instant::now();
    let reference: Vec<Vec<u8>> = queries.iter().map(|w| owned_once(w)).collect();
    let owned_cold_batch_ms = ms(t.elapsed().as_secs_f64());
    let t = Instant::now();
    for _ in 0..reps {
        for wire in &queries {
            let _ = owned_once(wire);
        }
    }
    let owned_s = t.elapsed().as_secs_f64();
    let owned_msgs_per_sec = (reps as usize * queries.len()) as f64 / owned_s;

    // Precompiled path: the first pass renders through the reference
    // machinery and compiles; every later pass is lookup + memcpy + ID
    // patch off a borrowed view.
    eprintln!("wire: precompiled path (cold compile pass, then {reps} serve reps) …");
    let t = Instant::now();
    let served_cold: Vec<Vec<u8>> =
        queries.iter().map(|w| server.handle(w, Timestamp(0)).expect("serve")).collect();
    let precompiled_cold_batch_ms = ms(t.elapsed().as_secs_f64());
    let t = Instant::now();
    for _ in 0..reps {
        for wire in &queries {
            let _ = server.handle(wire, Timestamp(0)).expect("serve");
        }
    }
    let serve_s = t.elapsed().as_secs_f64();
    let precompiled_msgs_per_sec = (reps as usize * queries.len()) as f64 / serve_s;
    let speedup = precompiled_msgs_per_sec / owned_msgs_per_sec;

    // Byte-identity between the paths, on both the cold (compile) pass
    // and a final cached pass. Any divergence is a hard failure.
    let mut identical = true;
    for (i, wire) in queries.iter().enumerate() {
        let cached = server.handle(wire, Timestamp(0)).expect("serve");
        if served_cold[i] != reference[i] || cached != reference[i] {
            eprintln!("wire: BYTE-IDENTITY FAILURE on query {i}");
            identical = false;
        }
    }
    assert!(identical, "precompiled responses must be byte-identical to the reference path");

    let json = format!(
        "{{\n  \"bench\": \"wire\",\n  \"schema\": 4,\n  \"zones\": {zones_n},\n  \
         \"physical_cpus\": {},\n  \"threads_axis\": {},\n  \
         \"queries_per_pass\": {},\n  \"reps\": {reps},\n  \
         \"owned_cold_batch_ms\": {owned_cold_batch_ms:.2},\n  \
         \"precompiled_cold_batch_ms\": {precompiled_cold_batch_ms:.2},\n  \
         \"owned_msgs_per_sec\": {owned_msgs_per_sec:.0},\n  \
         \"precompiled_msgs_per_sec\": {precompiled_msgs_per_sec:.0},\n  \
         \"speedup\": {speedup:.2},\n  \"byte_identical\": {identical},\n  \
         \"notes\": \"same-binary A/B over one AuthoritativeServer: owned = Message::decode + \
         answer() + encode per datagram (the pre-change handle body); precompiled = \
         MessageView parse + per-zone compiled-answer lookup + 2-byte ID patch, compiled \
         lazily by the first reference render of each query shape and invalidated on zone \
         mutation; every response byte-identical between paths (asserted), DNSSEC variants \
         cached separately per DO bit\"\n}}\n",
        physical_cpus(),
        threads_axis_json(&[1]),
        queries.len(),
    );
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote wire snapshot to {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// The virtual-time snapshot (`bench --async`): event-loop vs pooled
/// backends on the same warm wave-1 workload, at link RTTs of 0, 20,
/// and 100 ms (1% loss on the lossy rows). The pooled backend runs the
/// synchronous zero-latency path regardless of the installed model, so
/// it is the wall-clock baseline; the event loop additionally reports
/// what only virtual time can express — the batch's virtual duration,
/// peak in-flight concurrency on its one worker, and the deterministic
/// timeout/retransmit/drop/fallback counters.
fn cmd_bench_async(args: &[String]) -> ExitCode {
    use httpsrr::dns_wire::RecordType;
    use httpsrr::netsim::LinkModel;
    use httpsrr::resolver::{EngineBackend, Query, QueryEngine, ResolverConfig, SelectionStrategy};
    use std::fmt::Write;
    use std::time::Instant;

    let population = num_flag(args, "--population", 1_500usize);
    let list_size = num_flag(args, "--list", 1_200usize);
    let reps = num_flag(args, "--reps", 3u32).max(1);
    let ms = |secs: f64| secs * 1e3;

    // One world per (rtt, backend) cell: each engine needs its own clock
    // (the event loop advances it) and a cold cache for the cold row.
    let build_world =
        || World::build(EcosystemConfig { population, list_size, ..EcosystemConfig::tiny() });
    // The scanner's wave-1 shape minus www: HTTPS + A + NS per apex, so
    // every query's zone is its own apex and the in-flight population is
    // the full list.
    let queries_of = |world: &World| -> Vec<Query> {
        let mut queries = Vec::new();
        for &id in world.today_list().ranked() {
            let apex = world.domain(id).apex.clone();
            queries.push(Query::new(apex.clone(), RecordType::Https));
            queries.push(Query::new(apex.clone(), RecordType::A));
            queries.push(Query::new(apex, RecordType::Ns));
        }
        queries
    };
    let engine_on = |world: &World, backend: EngineBackend| {
        QueryEngine::new(
            world.network.clone(),
            world.registry.clone(),
            ResolverConfig {
                validate: true,
                strategy: SelectionStrategy::RoundRobin,
                backend,
                ..Default::default()
            },
        )
    };

    let mut rows = String::new();
    for (i, rtt_ms) in [0u64, 20, 100].into_iter().enumerate() {
        let loss_permille: u16 = if rtt_ms == 0 { 0 } else { 10 };
        let model = LinkModel::new(0xA57).with_rtt_ms(rtt_ms).with_loss_permille(loss_permille);
        eprintln!("async: rtt {rtt_ms} ms, loss {loss_permille}‰ …");

        // Event-loop backend: cold batch (full authority path, peak
        // concurrency), then warm reps.
        let world = build_world();
        world.network.set_latency_model(model.clone());
        let queries = queries_of(&world);
        let engine = engine_on(&world, EngineBackend::EventLoop);
        let t = Instant::now();
        let (_, timing) = engine.resolve_batch_timed(&queries, 1);
        let event_cold_wall_ms = ms(t.elapsed().as_secs_f64());
        let timing = timing.expect("event backend reports timing");
        let t = Instant::now();
        for _ in 0..reps {
            let _ = engine.resolve_batch(&queries, 1);
        }
        let event_warm_wall_ms = ms(t.elapsed().as_secs_f64()) / reps as f64;

        // Pooled backend on its own identical world: the synchronous
        // zero-latency baseline (the model does not apply to it).
        let world = build_world();
        world.network.set_latency_model(model);
        let queries = queries_of(&world);
        let engine = engine_on(&world, EngineBackend::Pooled);
        let t = Instant::now();
        let _ = engine.resolve_batch(&queries, 4);
        let pooled_cold_wall_ms = ms(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for _ in 0..reps {
            let _ = engine.resolve_batch(&queries, 4);
        }
        let pooled_warm_wall_ms = ms(t.elapsed().as_secs_f64()) / reps as f64;

        let _ = write!(
            rows,
            "    {{ \"rtt_ms\": {rtt_ms}, \"loss_permille\": {loss_permille}, \
             \"queries\": {}, \"max_in_flight\": {}, \"virtual_batch_ms\": {}, \
             \"event_cold_wall_ms\": {event_cold_wall_ms:.1}, \
             \"event_warm_wall_ms\": {event_warm_wall_ms:.1}, \
             \"pooled_cold_wall_ms\": {pooled_cold_wall_ms:.1}, \
             \"pooled_warm_wall_ms\": {pooled_warm_wall_ms:.1}, \
             \"timeouts\": {}, \"retransmits\": {}, \"drops\": {}, \"ns_fallbacks\": {} }}{}",
            queries.len(),
            timing.max_in_flight,
            timing.finished_ms - timing.started_ms,
            timing.stats.timeouts,
            timing.stats.retransmits,
            timing.stats.drops,
            timing.stats.ns_fallbacks,
            if i < 2 { ",\n" } else { "" },
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"async\",\n  \"schema\": 5,\n  \"population\": {population},\n  \
         \"list_size\": {list_size},\n  \"reps\": {reps},\n  \"physical_cpus\": {},\n  \
         \"threads_axis\": {},\n  \"rows\": [\n{rows}\n  ],\n  \
         \"notes\": \"event-loop vs pooled resolve_batch on the same cold/warm wave-1 workload; \
         the pooled backend always runs the synchronous zero-latency path (the link model only \
         binds on the scheduled path), so its wall times are flat across rows while the event \
         loop pays real scheduling work to simulate the RTT; virtual_batch_ms, max_in_flight \
         (one worker), and the timeout/retransmit/drop/fallback counters are deterministic \
         functions of the model seed and identical for every thread setting\"\n}}\n",
        physical_cpus(),
        threads_axis_json(&[1, 4]),
    );
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote async snapshot to {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// `serve` — run one open-loop load sweep and print the canonical
/// report (plus the pinned metrics text with `--metrics`).
fn cmd_serve(args: &[String]) -> ExitCode {
    use httpsrr::resolver::EvictionPolicy;
    use httpsrr::serve::{load_sweep, ServeConfig, WorkloadConfig};
    use httpsrr::telemetry::MetricsRegistry;

    let population = num_flag(args, "--population", 100_000usize);
    let list_size = num_flag(args, "--list", 10_000usize);
    let clients = num_flag(args, "--clients", 256usize);
    let workers = num_flag(args, "--workers", 1usize);
    let seed = num_flag(args, "--seed", WorkloadConfig::default().seed);
    let phase_ms = num_flag(args, "--phase-ms", 1_000u64);
    let capacity = num_flag(args, "--capacity", 4_096usize);
    let rates = list_flag(args, "--rates", &[2.0, 4.0, 8.0, 16.0, 32.0]);
    let policy = match flag(args, "--policy").map(|p| p.parse::<EvictionPolicy>()) {
        None => EvictionPolicy::TtlSweepLru,
        Some(Ok(policy)) => policy,
        Some(Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let cfg = ServeConfig {
        workload: WorkloadConfig { clients, seed, ..WorkloadConfig::default() },
        workers,
        capacity_per_shard: if capacity == 0 { None } else { Some(capacity) },
        policy,
        phase_ms,
        ..ServeConfig::default()
    };
    eprintln!("serve: building {population}-domain world (list {list_size}) …");
    let world = World::build(EcosystemConfig { population, list_size, ..EcosystemConfig::tiny() });
    let metrics = args.iter().any(|a| a == "--metrics").then(|| MetricsRegistry::new("serve"));
    let report = load_sweep(&world, &cfg, &rates, metrics.as_ref());
    print!("{}", report.canonical_text());
    if let Some(m) = &metrics {
        print!("{}", m.counters_text());
    }
    ExitCode::SUCCESS
}

/// `bench --serve` — the serving-subsystem perf snapshot: a load sweep
/// to saturation on the bounded default cache (replayed twice and
/// hard-failed on any byte difference), then the hit-rate-vs-capacity
/// curve across both eviction policies on the same replayed trace.
fn cmd_bench_serve(args: &[String]) -> ExitCode {
    use httpsrr::resolver::EvictionPolicy;
    use httpsrr::serve::{capacity_curve, load_sweep, ServeConfig, WorkloadConfig};
    use std::fmt::Write;
    use std::time::Instant;

    let population = num_flag(args, "--population", 100_000usize);
    let list_size = num_flag(args, "--list", 10_000usize);
    let clients = num_flag(args, "--clients", 256usize);
    let phase_ms = num_flag(args, "--phase-ms", 1_000u64);
    let rates = list_flag(args, "--rates", &[2.0, 4.0, 8.0, 16.0, 32.0]);
    // Defaults bracket the curve trace's working set (~4k distinct keys
    // at the default rate/window): the low cells bind hard, the top one
    // shows the unbounded plateau.
    let capacities = list_flag(args, "--capacities", &[16usize, 64, 256, 1_024]);
    let curve_rate = num_flag(args, "--curve-rate", 8.0f64);
    let ms = |secs: f64| secs * 1e3;

    let cfg = ServeConfig {
        workload: WorkloadConfig { clients, ..WorkloadConfig::default() },
        phase_ms,
        ..ServeConfig::default()
    };
    eprintln!("serve bench: building {population}-domain world (list {list_size}) …");
    let t = Instant::now();
    let world = World::build(EcosystemConfig { population, list_size, ..EcosystemConfig::tiny() });
    let build_wall_ms = ms(t.elapsed().as_secs_f64());

    eprintln!("serve bench: load sweep over {rates:?} kq/s …");
    let t = Instant::now();
    let report = load_sweep(&world, &cfg, &rates, None);
    let sweep_wall_ms = ms(t.elapsed().as_secs_f64());
    // Determinism is part of the snapshot's contract: the replayed sweep
    // must be byte-identical, or the numbers above mean nothing.
    let replay = load_sweep(&world, &cfg, &rates, None);
    if report.canonical_text() != replay.canonical_text() {
        eprintln!("serve sweep replay diverged — determinism contract broken:");
        eprintln!("--- first ---\n{}", report.canonical_text());
        eprintln!("--- replay ---\n{}", replay.canonical_text());
        return ExitCode::FAILURE;
    }

    eprintln!("serve bench: capacity curve over {capacities:?} × both policies …");
    let t = Instant::now();
    let points = capacity_curve(
        &world,
        &cfg,
        &capacities,
        &[EvictionPolicy::TtlSweepLru, EvictionPolicy::S3Fifo],
        curve_rate,
    );
    let curve_wall_ms = ms(t.elapsed().as_secs_f64());

    let mut phase_rows = String::new();
    for (i, p) in report.phases.iter().enumerate() {
        let series: Vec<String> = p.hit_series.iter().map(|h| format!("{h:.4}")).collect();
        let _ = write!(
            phase_rows,
            "    {{ \"offered_kqps\": {:.3}, \"queries\": {}, \"arrived_kqps\": {:.3}, \
             \"achieved_kqps\": {:.3}, \"hit_rate\": {:.4}, \"p50_us\": {}, \"p99_us\": {}, \
             \"p999_us\": {}, \"failures\": {}, \"evictions\": {}, \"swept\": {}, \
             \"saturated\": {}, \"hit_series\": [{}] }}{}",
            p.offered_kqps,
            p.queries,
            p.arrived_kqps,
            p.achieved_kqps,
            p.hit_rate,
            p.p50_us,
            p.p99_us,
            p.p999_us,
            p.failures,
            p.evictions,
            p.swept,
            p.saturated(),
            series.join(", "),
            if i + 1 < report.phases.len() { ",\n" } else { "" },
        );
    }
    let mut curve_rows = String::new();
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            curve_rows,
            "    {{ \"policy\": \"{}\", \"capacity_per_shard\": {}, \"total_capacity\": {}, \
             \"hit_rate\": {:.4}, \"p99_us\": {}, \"evictions\": {}, \"swept\": {}, \
             \"entries\": {}, \"approx_bytes\": {} }}{}",
            p.policy,
            p.capacity_per_shard,
            p.total_capacity,
            p.hit_rate,
            p.p99_us,
            p.evictions,
            p.swept,
            p.entries,
            p.approx_bytes,
            if i + 1 < points.len() { ",\n" } else { "" },
        );
    }
    let p99_sustained = match report.p99_at_sustained_us() {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"schema\": 6,\n  \"population\": {population},\n  \
         \"list_size\": {list_size},\n  \"clients\": {clients},\n  \"workers\": {},\n  \
         \"physical_cpus\": {},\n  \"threads_axis\": {},\n  \
         \"phase_ms\": {phase_ms},\n  \"sweep_policy\": \"{}\",\n  \
         \"sweep_capacity_per_shard\": {},\n  \"sustained_kqps\": {:.3},\n  \
         \"p99_at_sustained_us\": {p99_sustained},\n  \"saturated\": {},\n  \
         \"phases\": [\n{phase_rows}\n  ],\n  \"curve_rate_kqps\": {curve_rate:.3},\n  \
         \"curve\": [\n{curve_rows}\n  ],\n  \"build_wall_ms\": {build_wall_ms:.1},\n  \
         \"sweep_wall_ms\": {sweep_wall_ms:.1},\n  \"curve_wall_ms\": {curve_wall_ms:.1},\n  \
         \"notes\": \"stub-client load sweep + hit-rate-vs-capacity curve on the bounded record \
         cache; every phase and curve cell replays a (seed, phase, client)-determined arrival \
         stream in virtual time, so all fields except the *_wall_ms observations are \
         byte-reproducible on any host and thread count (the sweep is replayed twice in-process \
         and hard-fails on divergence); latency percentiles come from the deterministic M/G/k \
         queueing model over real engine hit/miss outcomes, not from wall timing\"\n}}\n",
        report.workers,
        physical_cpus(),
        threads_axis_json(&[report.workers]),
        report.policy,
        match report.capacity_per_shard {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        },
        report.sustained_kqps(),
        report.saturated(),
    );
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote serve snapshot to {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

fn cmd_rotation(args: &[String]) -> ExitCode {
    let hours = num_flag(args, "--hours", 7 * 24u64);
    let mut world = World::build(EcosystemConfig::tiny());
    world.step_to_day(74); // the paper's July scan window
    let obs = hourly_ech_scan(&mut world, hours, 20);
    println!("{}", analysis::fig4_rotation(&obs));
    ExitCode::SUCCESS
}

fn cmd_audit(args: &[String]) -> ExitCode {
    let day = num_flag(args, "--day", 239u64); // 2024-01-02
    let mut world = World::build(EcosystemConfig {
        population: 2_000,
        list_size: 1_400,
        ..EcosystemConfig::default()
    });
    world.step_to_day(day);
    let audit = analysis::tab9_chain_audit(&world);
    println!("{audit}");
    println!(
        "insecure: with HTTPS {:.1}% vs without {:.1}%",
        audit.insecure_pct_with_https(),
        audit.insecure_pct_without_https()
    );
    ExitCode::SUCCESS
}

fn cmd_zone(args: &[String]) -> ExitCode {
    let (Some(apex_arg), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let apex = match httpsrr::dns_wire::DnsName::parse(apex_arg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad apex {apex_arg:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let zone = match httpsrr::authserver::Zone::from_text(apex, &text) {
        Ok(z) => z,
        Err(e) => {
            eprintln!("zone parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut issues = 0usize;
    let mut https = 0usize;
    for rec in zone.iter() {
        if let httpsrr::dns_wire::RData::Https(rd) = &rec.rdata {
            https += 1;
            for issue in rd.lint() {
                issues += 1;
                println!("{}: {issue}", rec.name);
            }
        }
    }
    println!("{https} HTTPS record(s), {issues} issue(s)");
    if issues > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
