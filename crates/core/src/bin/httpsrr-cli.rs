//! `httpsrr-cli` — run the reproduction studies from the command line.
//!
//! ```text
//! httpsrr-cli study  [--population N] [--list N] [--stride D] [--seed S] [--csv PATH]
//! httpsrr-cli matrix
//! httpsrr-cli rotation [--hours H]
//! httpsrr-cli audit  [--day D]
//! httpsrr-cli zone   <apex> <zonefile>    # lint a zone file's HTTPS records
//! ```

use httpsrr::analysis;
use httpsrr::ecosystem::{EcosystemConfig, World};
use httpsrr::scanner::hourly_ech_scan;
use httpsrr::{client_side_report, server_side_report, Study};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "study" => cmd_study(&args[1..]),
        "matrix" => {
            println!("{}", client_side_report());
            ExitCode::SUCCESS
        }
        "rotation" => cmd_rotation(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "zone" => cmd_zone(&args[1..]),
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  httpsrr-cli study  [--population N] [--list N] [--stride D] [--seed S] [--csv PATH]
  httpsrr-cli matrix
  httpsrr-cli rotation [--hours H]
  httpsrr-cli audit  [--day D]
  httpsrr-cli zone   <apex> <zonefile>";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn num_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn cmd_study(args: &[String]) -> ExitCode {
    let config = EcosystemConfig {
        population: num_flag(args, "--population", 2_000),
        list_size: num_flag(args, "--list", 1_400),
        seed: num_flag(args, "--seed", EcosystemConfig::default().seed),
        ..EcosystemConfig::default()
    };
    if config.list_size > config.population {
        eprintln!("--list must not exceed --population");
        return ExitCode::FAILURE;
    }
    let stride = num_flag(args, "--stride", 14u64);
    eprintln!(
        "running study: {} domains, {}-entry list, every {} days (seed {:#x}) …",
        config.population, config.list_size, stride, config.seed
    );
    let study = Study::run(config, stride);
    println!("{}", server_side_report(&study));
    if let Some(path) = flag(args, "--csv") {
        match std::fs::write(&path, study.store.to_csv()) {
            Ok(()) => eprintln!("wrote {} observations to {path}", study.store.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_rotation(args: &[String]) -> ExitCode {
    let hours = num_flag(args, "--hours", 7 * 24u64);
    let mut world = World::build(EcosystemConfig::tiny());
    world.step_to_day(74); // the paper's July scan window
    let obs = hourly_ech_scan(&mut world, hours, 20);
    println!("{}", analysis::fig4_rotation(&obs));
    ExitCode::SUCCESS
}

fn cmd_audit(args: &[String]) -> ExitCode {
    let day = num_flag(args, "--day", 239u64); // 2024-01-02
    let mut world = World::build(EcosystemConfig {
        population: 2_000,
        list_size: 1_400,
        ..EcosystemConfig::default()
    });
    world.step_to_day(day);
    let audit = analysis::tab9_chain_audit(&world);
    println!("{audit}");
    println!(
        "insecure: with HTTPS {:.1}% vs without {:.1}%",
        audit.insecure_pct_with_https(),
        audit.insecure_pct_without_https()
    );
    ExitCode::SUCCESS
}

fn cmd_zone(args: &[String]) -> ExitCode {
    let (Some(apex_arg), Some(path)) = (args.first(), args.get(1)) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let apex = match httpsrr::dns_wire::DnsName::parse(apex_arg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bad apex {apex_arg:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let zone = match httpsrr::authserver::Zone::from_text(apex, &text) {
        Ok(z) => z,
        Err(e) => {
            eprintln!("zone parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut issues = 0usize;
    let mut https = 0usize;
    for rec in zone.iter() {
        if let httpsrr::dns_wire::RData::Https(rd) = &rec.rdata {
            https += 1;
            for issue in rd.lint() {
                issues += 1;
                println!("{}: {issue}", rec.name);
            }
        }
    }
    println!("{https} HTTPS record(s), {issues} issue(s)");
    if issues > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
