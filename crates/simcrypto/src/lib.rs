//! # simcrypto
//!
//! Deterministic *simulated* cryptography for the `httpsrr` workspace.
//!
//! The paper's experiments depend on key **identity** — which ECH key a
//! record advertises vs. which key the server holds, whether a DNSSEC
//! signature was produced by the key a DS record points at, whether a
//! tampered RRset still verifies — never on cryptographic strength. This
//! crate therefore provides a keyed-MAC construction (a from-scratch
//! SipHash-2-4, tested against the reference vectors) wrapped in
//! sign/verify and seal/open APIs whose *failure modes* match real
//! crypto: verification fails on any bit flip, decryption fails on key
//! mismatch, and key ids distinguish rotated keys.
//!
//! **This is not security software.** "Public" keys carry the MAC key
//! material so that verifiers can recompute MACs; a real adversary could
//! forge. The simulated adversaries in this workspace do not. The
//! substitution is documented in DESIGN.md.

#![warn(missing_docs)]

pub mod siphash;

use rand::Rng;
use siphash::siphash24;

/// Domain-separation prefixes so signatures, digests and AEAD tags can
/// never be confused for one another.
mod domain {
    pub const SIGN: &[u8] = b"simcrypto/sign/v1";
    pub const DIGEST: &[u8] = b"simcrypto/digest/v1";
    pub const SEAL_TAG: &[u8] = b"simcrypto/seal-tag/v1";
    pub const SEAL_STREAM: &[u8] = b"simcrypto/seal-stream/v1";
}

/// A 128-bit keyed digest (two domain-separated SipHash-2-4 passes).
pub fn digest128(key: &[u8; 16], data: &[u8]) -> [u8; 16] {
    let mut msg = Vec::with_capacity(domain::DIGEST.len() + 1 + data.len());
    msg.extend_from_slice(domain::DIGEST);
    msg.push(0);
    msg.extend_from_slice(data);
    let lo = siphash24(key, &msg);
    msg[domain::DIGEST.len()] = 1;
    let hi = siphash24(key, &msg);
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&lo.to_le_bytes());
    out[8..].copy_from_slice(&hi.to_le_bytes());
    out
}

/// An unkeyed 128-bit digest of arbitrary data (fixed well-known key).
/// Stands in for SHA-256 in DS-record digests.
pub fn unkeyed_digest(data: &[u8]) -> [u8; 16] {
    digest128(&[0x5A; 16], data)
}

/// Identifier of a key pair; rotating a key yields a fresh id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u64);

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "key-{:016x}", self.0)
    }
}

/// A simulated key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimKeyPair {
    id: KeyId,
    material: [u8; 16],
}

/// The shareable half of a [`SimKeyPair`].
///
/// Carries the key material (see crate docs for why that is acceptable
/// here); equality of two public keys means "same underlying key".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimPublicKey {
    id: KeyId,
    material: [u8; 16],
}

/// A detached signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub [u8; 16]);

impl SimKeyPair {
    /// Generate a fresh key pair from the given RNG.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut material = [0u8; 16];
        rng.fill(&mut material);
        let id = KeyId(siphash24(&material, b"key-id"));
        SimKeyPair { id, material }
    }

    /// Deterministically derive a key pair from a label (for reproducible
    /// fixtures: same label, same key).
    pub fn derive(label: &str) -> Self {
        let material = digest128(&[0xA5; 16], label.as_bytes());
        let id = KeyId(siphash24(&material, b"key-id"));
        SimKeyPair { id, material }
    }

    /// This key's identity.
    pub fn id(&self) -> KeyId {
        self.id
    }

    /// The shareable public half.
    pub fn public(&self) -> SimPublicKey {
        SimPublicKey { id: self.id, material: self.material }
    }

    /// Sign a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let mut msg = Vec::with_capacity(domain::SIGN.len() + message.len());
        msg.extend_from_slice(domain::SIGN);
        msg.extend_from_slice(message);
        Signature(digest128(&self.material, &msg))
    }

    /// Open a sealed box produced with [`SimPublicKey::seal`] against this
    /// key. Returns `None` when the key id differs, the tag fails, or the
    /// box is structurally invalid — the caller cannot distinguish these,
    /// matching real AEAD behaviour.
    pub fn open(&self, aad: &[u8], sealed: &[u8]) -> Option<Vec<u8>> {
        // Layout: key_id (8) | tag (16) | ciphertext (...)
        if sealed.len() < 24 {
            return None;
        }
        let mut idb = [0u8; 8];
        idb.copy_from_slice(&sealed[..8]);
        if KeyId(u64::from_le_bytes(idb)) != self.id {
            return None;
        }
        let tag: &[u8] = &sealed[8..24];
        let ciphertext = &sealed[24..];
        let plaintext = xor_stream(&self.material, ciphertext);
        let expect = seal_tag(&self.material, aad, &plaintext);
        if tag != expect {
            return None;
        }
        Some(plaintext)
    }
}

impl SimPublicKey {
    /// This key's identity.
    pub fn id(&self) -> KeyId {
        self.id
    }

    /// Opaque serialized form (id + material), e.g. for embedding in an
    /// ECHConfig or a DNSKEY record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(24);
        v.extend_from_slice(&self.id.0.to_le_bytes());
        v.extend_from_slice(&self.material);
        v
    }

    /// Parse the serialized form.
    pub fn from_bytes(bytes: &[u8]) -> Option<SimPublicKey> {
        if bytes.len() != 24 {
            return None;
        }
        let mut idb = [0u8; 8];
        idb.copy_from_slice(&bytes[..8]);
        let mut material = [0u8; 16];
        material.copy_from_slice(&bytes[8..]);
        Some(SimPublicKey { id: KeyId(u64::from_le_bytes(idb)), material })
    }

    /// Verify a detached signature over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let mut msg = Vec::with_capacity(domain::SIGN.len() + message.len());
        msg.extend_from_slice(domain::SIGN);
        msg.extend_from_slice(message);
        digest128(&self.material, &msg) == sig.0
    }

    /// Seal `plaintext` to the holder of this key (ECH-style).
    pub fn seal(&self, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let tag = seal_tag(&self.material, aad, plaintext);
        let ciphertext = xor_stream(&self.material, plaintext);
        let mut out = Vec::with_capacity(24 + ciphertext.len());
        out.extend_from_slice(&self.id.0.to_le_bytes());
        out.extend_from_slice(&tag);
        out.extend_from_slice(&ciphertext);
        out
    }
}

fn seal_tag(key: &[u8; 16], aad: &[u8], plaintext: &[u8]) -> [u8; 16] {
    let mut msg = Vec::with_capacity(domain::SEAL_TAG.len() + 8 + aad.len() + plaintext.len());
    msg.extend_from_slice(domain::SEAL_TAG);
    msg.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    msg.extend_from_slice(aad);
    msg.extend_from_slice(plaintext);
    digest128(key, &msg)
}

fn xor_stream(key: &[u8; 16], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut counter: u64 = 0;
    let mut block = [0u8; 16];
    for (i, &b) in data.iter().enumerate() {
        if i % 16 == 0 {
            let mut msg = Vec::with_capacity(domain::SEAL_STREAM.len() + 8);
            msg.extend_from_slice(domain::SEAL_STREAM);
            msg.extend_from_slice(&counter.to_le_bytes());
            block = digest128(key, &msg);
            counter += 1;
        }
        out.push(b ^ block[i % 16]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = SimKeyPair::generate(&mut rng);
        let sig = kp.sign(b"hello https rr");
        assert!(kp.public().verify(b"hello https rr", &sig));
    }

    #[test]
    fn tampered_message_fails_verification() {
        let kp = SimKeyPair::derive("zone:a.com");
        let sig = kp.sign(b"record set");
        assert!(!kp.public().verify(b"record sey", &sig));
        let mut bad = sig.clone();
        bad.0[0] ^= 1;
        assert!(!kp.public().verify(b"record set", &bad));
    }

    #[test]
    fn wrong_key_fails_verification() {
        let a = SimKeyPair::derive("a");
        let b = SimKeyPair::derive("b");
        let sig = a.sign(b"msg");
        assert!(!b.public().verify(b"msg", &sig));
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        assert_eq!(SimKeyPair::derive("x"), SimKeyPair::derive("x"));
        assert_ne!(SimKeyPair::derive("x").id(), SimKeyPair::derive("y").id());
    }

    #[test]
    fn seal_open_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = SimKeyPair::generate(&mut rng);
        let sealed = kp.public().seal(b"outer-sni", b"inner client hello");
        assert_eq!(kp.open(b"outer-sni", &sealed).unwrap(), b"inner client hello");
    }

    #[test]
    fn open_fails_on_rotated_key() {
        // The §4.4.2 scenario: client sealed to a stale (cached) key.
        let old = SimKeyPair::derive("ech-2023-07-21T10");
        let new = SimKeyPair::derive("ech-2023-07-21T11");
        let sealed = old.public().seal(b"", b"inner");
        assert!(new.open(b"", &sealed).is_none());
        assert!(old.open(b"", &sealed).is_some());
    }

    #[test]
    fn open_fails_on_tamper_or_aad_mismatch() {
        let kp = SimKeyPair::derive("k");
        let mut sealed = kp.public().seal(b"aad", b"payload");
        assert!(kp.open(b"wrong-aad", &sealed).is_none());
        let last = sealed.len() - 1;
        sealed[last] ^= 0xFF;
        assert!(kp.open(b"aad", &sealed).is_none());
        assert!(kp.open(b"aad", &sealed[..10]).is_none());
    }

    #[test]
    fn public_key_serialization_round_trip() {
        let kp = SimKeyPair::derive("serialize-me");
        let pk = kp.public();
        let bytes = pk.to_bytes();
        assert_eq!(SimPublicKey::from_bytes(&bytes).unwrap(), pk);
        assert!(SimPublicKey::from_bytes(&bytes[..23]).is_none());
    }

    #[test]
    fn digest_is_stable_and_keyed() {
        let k1 = [1u8; 16];
        let k2 = [2u8; 16];
        assert_eq!(digest128(&k1, b"data"), digest128(&k1, b"data"));
        assert_ne!(digest128(&k1, b"data"), digest128(&k2, b"data"));
        assert_ne!(digest128(&k1, b"data"), digest128(&k1, b"date"));
        assert_eq!(unkeyed_digest(b"x"), unkeyed_digest(b"x"));
    }

    #[test]
    fn seal_hides_plaintext_bytes() {
        let kp = SimKeyPair::derive("privacy");
        let sealed = kp.public().seal(b"", b"private-example-ech.com");
        // The ciphertext portion must not contain the plaintext verbatim.
        let ct = &sealed[24..];
        assert_ne!(ct, b"private-example-ech.com");
    }

    #[test]
    fn empty_plaintext_seal_open() {
        let kp = SimKeyPair::derive("empty");
        let sealed = kp.public().seal(b"aad", b"");
        assert_eq!(kp.open(b"aad", &sealed).unwrap(), Vec::<u8>::new());
    }
}
