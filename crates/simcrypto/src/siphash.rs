//! From-scratch SipHash-2-4 (Aumasson & Bernstein), the keyed PRF
//! underlying every digest in this crate. Verified against the reference
//! test vectors from the SipHash paper / reference implementation.

/// Compute SipHash-2-4 of `data` under a 128-bit key.
pub fn siphash24(key: &[u8; 16], data: &[u8]) -> u64 {
    let k0 = u64::from_le_bytes(key[..8].try_into().expect("8 bytes"));
    let k1 = u64::from_le_bytes(key[8..].try_into().expect("8 bytes"));

    let mut v0: u64 = 0x736f6d6570736575 ^ k0;
    let mut v1: u64 = 0x646f72616e646f6d ^ k1;
    let mut v2: u64 = 0x6c7967656e657261 ^ k0;
    let mut v3: u64 = 0x7465646279746573 ^ k1;

    #[inline(always)]
    fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
        *v0 = v0.wrapping_add(*v1);
        *v1 = v1.rotate_left(13);
        *v1 ^= *v0;
        *v0 = v0.rotate_left(32);
        *v2 = v2.wrapping_add(*v3);
        *v3 = v3.rotate_left(16);
        *v3 ^= *v2;
        *v0 = v0.wrapping_add(*v3);
        *v3 = v3.rotate_left(21);
        *v3 ^= *v0;
        *v2 = v2.wrapping_add(*v1);
        *v1 = v1.rotate_left(17);
        *v1 ^= *v2;
        *v2 = v2.rotate_left(32);
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v3 ^= m;
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^= m;
    }

    // Final block: remaining bytes + length in the top byte.
    let rem = chunks.remainder();
    let mut last: u64 = (data.len() as u64 & 0xFF) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v3 ^= last;
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    v0 ^= last;

    v2 ^= 0xFF;
    for _ in 0..4 {
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    }
    v0 ^ v1 ^ v2 ^ v3
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First 16 vectors from the SipHash reference implementation
    /// (key = 00 01 .. 0f, input = empty, 00, 00 01, ...).
    const REFERENCE: [u64; 16] = [
        0x726fdb47dd0e0e31,
        0x74f839c593dc67fd,
        0x0d6c8009d9a94f5a,
        0x85676696d7fb7e2d,
        0xcf2794e0277187b7,
        0x18765564cd99a68d,
        0xcbc9466e58fee3ce,
        0xab0200f58b01d137,
        0x93f5f5799a932462,
        0x9e0082df0ba9e4b0,
        0x7a5dbbc594ddb9f3,
        0xf4b32f46226bada7,
        0x751e8fbc860ee5fb,
        0x14ea5627c0843d90,
        0xf723ca908e7af2ee,
        0xa129ca6149be45e5,
    ];

    #[test]
    fn reference_vectors() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        for (len, expected) in REFERENCE.iter().enumerate() {
            let input: Vec<u8> = (0..len as u8).collect();
            assert_eq!(siphash24(&key, &input), *expected, "vector length {len}");
        }
    }

    #[test]
    fn key_sensitivity() {
        let k1 = [0u8; 16];
        let mut k2 = [0u8; 16];
        k2[15] = 1;
        assert_ne!(siphash24(&k1, b"data"), siphash24(&k2, b"data"));
    }

    #[test]
    fn length_extension_distinct() {
        // Messages that are prefixes of each other must hash differently.
        let key = [7u8; 16];
        assert_ne!(siphash24(&key, b"abc"), siphash24(&key, b"abc\0"));
        assert_ne!(siphash24(&key, b""), siphash24(&key, b"\0"));
    }

    #[test]
    fn long_input_cross_block_boundaries() {
        let key = [3u8; 16];
        let mut seen = std::collections::HashSet::new();
        for len in 0..64 {
            let input: Vec<u8> = (0..len).map(|i| i as u8).collect();
            assert!(seen.insert(siphash24(&key, &input)), "collision at length {len}");
        }
    }
}
