//! Zone-file presentation format: parsing record lines and whole zone texts.
//!
//! Supports the subset of RFC 1035 master-file syntax the paper's testbed
//! uses: one record per line, optional TTL, `IN` class, `$ORIGIN`, relative
//! names, and `;` comments. Parenthesized continuations are not needed (all
//! RDATA in this workspace fits on one line).

use crate::error::ParseError;
use crate::name::DnsName;
use crate::record::{
    DnsClass, DnskeyRdata, DsRdata, RData, Record, RecordType, RrsigRdata, SoaRdata, SrvRdata,
};
use crate::svcb::{debase64ish, SvcbRdata};

/// Parse a single record line such as
/// `a.com. 300 IN HTTPS 1 . alpn=h2,h3 ipv4hint=1.2.3.4`.
///
/// `origin` resolves relative names and `@`. TTL defaults to `default_ttl`
/// when omitted.
pub fn parse_record_line(
    line: &str,
    origin: &DnsName,
    default_ttl: u32,
) -> Result<Option<Record>, ParseError> {
    let line = strip_comment(line);
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.is_empty() {
        return Ok(None);
    }
    let mut idx = 0;
    let name = parse_name_token(tokens[idx], origin)?;
    idx += 1;

    // Optional TTL and optional class, in either order.
    let mut ttl = default_ttl;
    let mut class = DnsClass::In;
    for _ in 0..2 {
        match tokens.get(idx) {
            Some(t) if t.chars().all(|c| c.is_ascii_digit()) => {
                ttl = t
                    .parse()
                    .map_err(|_| ParseError::BadField { field: "TTL", token: t.to_string() })?;
                idx += 1;
            }
            Some(t) if t.eq_ignore_ascii_case("IN") => {
                class = DnsClass::In;
                idx += 1;
            }
            Some(t) if t.eq_ignore_ascii_case("CH") => {
                class = DnsClass::Ch;
                idx += 1;
            }
            _ => {}
        }
    }

    let type_tok = tokens.get(idx).ok_or(ParseError::MissingField("record type"))?;
    let rtype = RecordType::from_mnemonic(type_tok)
        .ok_or_else(|| ParseError::UnknownType(type_tok.to_string()))?;
    idx += 1;
    let rest = &tokens[idx..];
    let rdata = parse_rdata(rtype, rest, origin)?;
    Ok(Some(Record { name, rtype, class, ttl, rdata }))
}

/// Parse a whole zone text. Lines may use `$ORIGIN` and `$TTL` directives.
/// Returns the records in file order.
pub fn parse_zone_text(text: &str, initial_origin: &DnsName) -> Result<Vec<Record>, ParseError> {
    let mut origin = initial_origin.clone();
    let mut default_ttl = 3600u32;
    let mut records = Vec::new();
    for raw in text.lines() {
        let line = strip_comment(raw);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("$ORIGIN") {
            origin = DnsName::parse(rest.trim())?;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("$TTL") {
            let t = rest.trim();
            default_ttl = t
                .parse()
                .map_err(|_| ParseError::BadField { field: "$TTL", token: t.to_string() })?;
            continue;
        }
        if let Some(rec) = parse_record_line(trimmed, &origin, default_ttl)? {
            records.push(rec);
        }
    }
    Ok(records)
}

/// Render records as a zone text (one presentation line each).
pub fn to_zone_text(records: &[Record]) -> String {
    let mut s = String::new();
    for r in records {
        s.push_str(&r.to_presentation());
        s.push('\n');
    }
    s
}

fn strip_comment(line: &str) -> &str {
    // A ';' outside of a quoted string starts a comment.
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            ';' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_name_token(tok: &str, origin: &DnsName) -> Result<DnsName, ParseError> {
    if tok == "@" {
        return Ok(origin.clone());
    }
    if tok.ends_with('.') && !tok.ends_with("\\.") {
        return DnsName::parse(tok);
    }
    // Relative name: append origin.
    let rel = DnsName::parse(tok)?;
    let mut labels = rel.labels().to_vec();
    labels.extend(origin.labels().iter().cloned());
    Ok(DnsName::from_labels(labels))
}

fn parse_rdata(rtype: RecordType, tokens: &[&str], origin: &DnsName) -> Result<RData, ParseError> {
    let get = |i: usize, field: &'static str| -> Result<&str, ParseError> {
        tokens.get(i).copied().ok_or(ParseError::MissingField(field))
    };
    let num = |tok: &str, field: &'static str| -> Result<u32, ParseError> {
        tok.parse().map_err(|_| ParseError::BadField { field, token: tok.to_string() })
    };
    match rtype {
        RecordType::A => {
            let t = get(0, "address")?;
            Ok(RData::A(
                t.parse()
                    .map_err(|_| ParseError::BadField { field: "A address", token: t.into() })?,
            ))
        }
        RecordType::Aaaa => {
            let t = get(0, "address")?;
            Ok(RData::Aaaa(
                t.parse()
                    .map_err(|_| ParseError::BadField { field: "AAAA address", token: t.into() })?,
            ))
        }
        RecordType::Cname => Ok(RData::Cname(parse_name_token(get(0, "target")?, origin)?)),
        RecordType::Dname => Ok(RData::Dname(parse_name_token(get(0, "target")?, origin)?)),
        RecordType::Ns => Ok(RData::Ns(parse_name_token(get(0, "nsdname")?, origin)?)),
        RecordType::Ptr => Ok(RData::Ptr(parse_name_token(get(0, "ptrdname")?, origin)?)),
        RecordType::Mx => Ok(RData::Mx(
            num(get(0, "preference")?, "MX preference")? as u16,
            parse_name_token(get(1, "exchange")?, origin)?,
        )),
        RecordType::Txt => {
            if tokens.is_empty() {
                return Err(ParseError::MissingField("TXT data"));
            }
            let strings = tokens.iter().map(|t| t.trim_matches('"').as_bytes().to_vec()).collect();
            Ok(RData::Txt(strings))
        }
        RecordType::Soa => Ok(RData::Soa(SoaRdata {
            mname: parse_name_token(get(0, "mname")?, origin)?,
            rname: parse_name_token(get(1, "rname")?, origin)?,
            serial: num(get(2, "serial")?, "SOA serial")?,
            refresh: num(get(3, "refresh")?, "SOA refresh")?,
            retry: num(get(4, "retry")?, "SOA retry")?,
            expire: num(get(5, "expire")?, "SOA expire")?,
            minimum: num(get(6, "minimum")?, "SOA minimum")?,
        })),
        RecordType::Srv => Ok(RData::Srv(SrvRdata {
            priority: num(get(0, "priority")?, "SRV priority")? as u16,
            weight: num(get(1, "weight")?, "SRV weight")? as u16,
            port: num(get(2, "port")?, "SRV port")? as u16,
            target: parse_name_token(get(3, "target")?, origin)?,
        })),
        RecordType::Svcb => Ok(RData::Svcb(SvcbRdata::parse_presentation(tokens)?)),
        RecordType::Https => Ok(RData::Https(SvcbRdata::parse_presentation(tokens)?)),
        RecordType::Rrsig => Ok(RData::Rrsig(RrsigRdata {
            type_covered: RecordType::from_mnemonic(get(0, "type covered")?)
                .ok_or_else(|| ParseError::UnknownType(tokens[0].to_string()))?,
            algorithm: num(get(1, "algorithm")?, "RRSIG algorithm")? as u8,
            labels: num(get(2, "labels")?, "RRSIG labels")? as u8,
            original_ttl: num(get(3, "original ttl")?, "RRSIG original ttl")?,
            expiration: num(get(4, "expiration")?, "RRSIG expiration")?,
            inception: num(get(5, "inception")?, "RRSIG inception")?,
            key_tag: num(get(6, "key tag")?, "RRSIG key tag")? as u16,
            signer: parse_name_token(get(7, "signer")?, origin)?,
            signature: debase64ish(get(8, "signature")?).ok_or_else(|| ParseError::BadField {
                field: "RRSIG signature",
                token: tokens[8].to_string(),
            })?,
        })),
        RecordType::Dnskey => Ok(RData::Dnskey(DnskeyRdata {
            flags: num(get(0, "flags")?, "DNSKEY flags")? as u16,
            protocol: num(get(1, "protocol")?, "DNSKEY protocol")? as u8,
            algorithm: num(get(2, "algorithm")?, "DNSKEY algorithm")? as u8,
            public_key: debase64ish(get(3, "public key")?).ok_or_else(|| ParseError::BadField {
                field: "DNSKEY key",
                token: tokens[3].to_string(),
            })?,
        })),
        RecordType::Ds => {
            let hex = get(3, "digest")?;
            if hex.len() % 2 != 0 {
                return Err(ParseError::BadField { field: "DS digest", token: hex.to_string() });
            }
            let digest = (0..hex.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&hex[i..i + 2], 16))
                .collect::<Result<Vec<u8>, _>>()
                .map_err(|_| ParseError::BadField { field: "DS digest", token: hex.to_string() })?;
            Ok(RData::Ds(DsRdata {
                key_tag: num(get(0, "key tag")?, "DS key tag")? as u16,
                algorithm: num(get(1, "algorithm")?, "DS algorithm")? as u8,
                digest_type: num(get(2, "digest type")?, "DS digest type")? as u8,
                digest,
            }))
        }
        RecordType::Opt | RecordType::Unknown(_) => {
            // RFC 3597 generic syntax: \# length hexdata
            if get(0, "\\#")? != "\\#" {
                return Err(ParseError::BadField {
                    field: "generic rdata",
                    token: tokens[0].to_string(),
                });
            }
            let len: usize = num(get(1, "length")?, "generic length")? as usize;
            let hex: String = tokens[2..].concat();
            if hex.len() != len * 2 {
                return Err(ParseError::BadField { field: "generic rdata", token: hex });
            }
            let bytes = (0..hex.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&hex[i..i + 2], 16))
                .collect::<Result<Vec<u8>, _>>()
                .map_err(|_| ParseError::BadField { field: "generic rdata", token: hex.clone() })?;
            Ok(if rtype == RecordType::Opt { RData::Opt(bytes) } else { RData::Unknown(bytes) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn origin() -> DnsName {
        DnsName::parse("example.com").unwrap()
    }

    #[test]
    fn parse_paper_figure1_examples() {
        // The two example records from the paper's Figure 1.
        let r1 = parse_record_line("a.com. 300 IN HTTPS 0 b.com.", &origin(), 60).unwrap().unwrap();
        match &r1.rdata {
            RData::Https(rd) => {
                assert!(rd.is_alias());
                assert_eq!(rd.target, DnsName::parse("b.com").unwrap());
            }
            other => panic!("wrong rdata: {other:?}"),
        }
        let r2 =
            parse_record_line("c.com. 300 IN HTTPS 1 . alpn=h3 ipv4hint=1.2.3.4", &origin(), 60)
                .unwrap()
                .unwrap();
        match &r2.rdata {
            RData::Https(rd) => {
                assert_eq!(rd.priority, 1);
                assert_eq!(rd.alpn().unwrap(), vec!["h3"]);
                assert_eq!(rd.ipv4hint().unwrap(), &[Ipv4Addr::new(1, 2, 3, 4)]);
            }
            other => panic!("wrong rdata: {other:?}"),
        }
    }

    #[test]
    fn relative_names_and_at() {
        let r = parse_record_line("www 60 IN A 1.2.3.4", &origin(), 60).unwrap().unwrap();
        assert_eq!(r.name, DnsName::parse("www.example.com").unwrap());
        let r = parse_record_line("@ 60 IN A 1.2.3.4", &origin(), 60).unwrap().unwrap();
        assert_eq!(r.name, origin());
    }

    #[test]
    fn ttl_defaults_and_comments() {
        let r =
            parse_record_line("a.com. IN A 1.2.3.4 ; proxied", &origin(), 1234).unwrap().unwrap();
        assert_eq!(r.ttl, 1234);
        assert!(parse_record_line("; whole line comment", &origin(), 60).unwrap().is_none());
        assert!(parse_record_line("   ", &origin(), 60).unwrap().is_none());
    }

    #[test]
    fn zone_text_round_trip() {
        let text = "\
$ORIGIN a.com.
$TTL 300
@ IN SOA ns1.a.com. hostmaster.a.com. 1 7200 3600 1209600 300
@ IN NS ns1.a.com.
@ IN A 2.2.3.4
@ IN HTTPS 1 . alpn=h2,h3 ipv4hint=104.16.1.1 ipv6hint=2606:4700::1
www IN CNAME a.com.
";
        let recs = parse_zone_text(text, &DnsName::root()).unwrap();
        assert_eq!(recs.len(), 5);
        let rendered = to_zone_text(&recs);
        let reparsed = parse_zone_text(&rendered, &DnsName::root()).unwrap();
        assert_eq!(reparsed, recs);
    }

    #[test]
    fn unknown_type_generic_syntax() {
        let r =
            parse_record_line("a.com. 60 IN TYPE999 \\# 3 010203", &origin(), 60).unwrap().unwrap();
        assert_eq!(r.rtype, RecordType::Unknown(999));
        assert_eq!(r.rdata, RData::Unknown(vec![1, 2, 3]));
        let line = r.to_presentation();
        let back = parse_record_line(&line, &origin(), 60).unwrap().unwrap();
        assert_eq!(back.rdata, r.rdata);
    }

    #[test]
    fn bad_lines_rejected() {
        assert!(parse_record_line("a.com. 60 IN BOGUS x", &origin(), 60).is_err());
        assert!(parse_record_line("a.com. 60 IN A not-an-ip", &origin(), 60).is_err());
        assert!(parse_record_line("a.com. 60 IN HTTPS", &origin(), 60).is_err());
        assert!(parse_record_line("a.com. 60 IN HTTPS one .", &origin(), 60).is_err());
        assert!(parse_record_line("a.com. 60 IN MX 10", &origin(), 60).is_err());
    }

    #[test]
    fn malformed_ech_token_rejected() {
        // The §5.3 "malformed ECH configuration" copy-paste-typo case:
        // invalid base64 must be rejected at zone-load time by a correct
        // implementation (the testbed bypasses this to serve malformed ECH).
        assert!(
            parse_record_line("a.com. 60 IN HTTPS 1 . ech=!!notbase64!!", &origin(), 60).is_err()
        );
    }

    #[test]
    fn soa_fields() {
        let r = parse_record_line(
            "a.com. 3600 IN SOA ns1.a.com. hostmaster.a.com. 2024033101 7200 3600 1209600 300",
            &origin(),
            60,
        )
        .unwrap()
        .unwrap();
        match r.rdata {
            RData::Soa(soa) => {
                assert_eq!(soa.serial, 2024033101);
                assert_eq!(soa.minimum, 300);
            }
            other => panic!("wrong rdata: {other:?}"),
        }
    }
}
