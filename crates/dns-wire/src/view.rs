//! Borrowed message views: one validation pass over a datagram, then
//! lazy, zero-copy access to names and RDATA.
//!
//! [`MessageView`] is the borrowed counterpart of
//! [`Message::decode`](crate::Message::decode). Parsing locates the
//! header fields and the offsets of every question and resource record
//! in a single pass — names are *validated* (same structural rules as
//! [`DnsName::decode_at`]) but never materialized into `Vec<Vec<u8>>`,
//! and RDATA is left as an `RDLENGTH`-delimited subrange of the buffer.
//! Callers then read what they need:
//!
//! - [`NameView`] exposes a compression-aware label iterator plus
//!   comparison/rendering helpers that work straight off the wire;
//! - [`RecordView::rdata`] decodes typed [`RData`] on demand from the
//!   record's subrange;
//! - `to_owned()` escape hatches ([`NameView::to_owned`],
//!   [`RecordView::to_owned`], [`MessageView::to_message`]) produce the
//!   owned types so existing `Message` consumers can migrate
//!   incrementally.
//!
//! On any buffer where [`MessageView::parse`] and
//! [`MessageView::to_message`] both succeed, the resulting [`Message`]
//! equals `Message::decode` of the same bytes (pinned by proptest).

use crate::error::WireError;
use crate::message::{Edns, Flags, Message, Opcode, Question, Rcode};
use crate::name::{DnsName, MAX_POINTER_HOPS};
use crate::record::{DnsClass, RData, Record, RecordType};
use std::fmt;

/// Borrowed view of one (possibly compressed) domain name inside a
/// message buffer. Copyable; holds only the buffer reference and the
/// offset where the name starts.
#[derive(Debug, Clone, Copy)]
pub struct NameView<'a> {
    buf: &'a [u8],
    start: usize,
}

impl<'a> NameView<'a> {
    /// Iterate the raw labels (most-specific first), following
    /// compression pointers without allocating.
    pub fn labels(&self) -> LabelIter<'a> {
        LabelIter { buf: self.buf, pos: self.start, hops: 0 }
    }

    /// Number of labels (the root name has zero).
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels().next().is_none()
    }

    /// Whether every label byte is free of uppercase ASCII (so the
    /// lowercased canonical form equals the wire form byte-for-byte).
    pub fn is_ascii_lowercase(&self) -> bool {
        self.labels().all(|l| !l.iter().any(u8::is_ascii_uppercase))
    }

    /// Case-insensitive comparison against an owned [`DnsName`].
    pub fn eq_name(&self, other: &DnsName) -> bool {
        let mut it = self.labels();
        for expected in other.labels() {
            match it.next() {
                Some(l)
                    if l.len() == expected.len()
                        && l.iter()
                            .zip(expected.iter())
                            .all(|(a, b)| a.eq_ignore_ascii_case(b)) => {}
                _ => return false,
            }
        }
        it.next().is_none()
    }

    /// Append the canonical (lowercased, uncompressed) wire form to
    /// `out` — length-prefixed labels plus the root octet.
    pub fn write_canonical_wire(&self, out: &mut Vec<u8>) {
        for label in self.labels() {
            out.push(label.len() as u8);
            out.extend(label.iter().map(|b| b.to_ascii_lowercase()));
        }
        out.push(0);
    }

    /// Append the lowercased dotted form (no trailing dot; root → `.`)
    /// to `out`, matching [`DnsName::key`].
    pub fn write_key(&self, out: &mut String) {
        let mut any = false;
        for label in self.labels() {
            if any {
                out.push('.');
            }
            any = true;
            for &b in label {
                out.push(b.to_ascii_lowercase() as char);
            }
        }
        if !any {
            out.push('.');
        }
    }

    /// Materialize an owned [`DnsName`]. Views are only handed out for
    /// names that already passed structural validation, so this cannot
    /// fail; a defensive fallback yields the root name.
    pub fn to_owned(&self) -> DnsName {
        DnsName::decode_at(self.buf, self.start)
            .map(|(name, _)| name)
            .unwrap_or_else(|_| DnsName::root())
    }
}

impl fmt::Display for NameView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for label in self.labels() {
            any = true;
            for &b in label {
                if b == b'.' || b == b'\\' {
                    write!(f, "\\{}", b as char)?;
                } else if b.is_ascii_graphic() {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
            write!(f, ".")?;
        }
        if !any {
            write!(f, ".")?;
        }
        Ok(())
    }
}

/// Compression-aware iterator over the labels of a [`NameView`].
///
/// Malformed structure (which parsing already rejects) terminates the
/// iteration instead of panicking.
#[derive(Debug, Clone)]
pub struct LabelIter<'a> {
    buf: &'a [u8],
    pos: usize,
    hops: usize,
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        loop {
            let len_byte = *self.buf.get(self.pos)?;
            match len_byte & 0xC0 {
                0x00 => {
                    if len_byte == 0 {
                        return None;
                    }
                    let start = self.pos + 1;
                    let end = start + len_byte as usize;
                    let label = self.buf.get(start..end)?;
                    self.pos = end;
                    return Some(label);
                }
                0xC0 => {
                    let second = *self.buf.get(self.pos + 1)?;
                    let target = (((len_byte & 0x3F) as usize) << 8) | second as usize;
                    if target >= self.pos || self.hops >= MAX_POINTER_HOPS {
                        return None;
                    }
                    self.hops += 1;
                    self.pos = target;
                }
                _ => return None,
            }
        }
    }
}

/// Per-question metadata recorded by the parse pass.
#[derive(Debug, Clone, Copy)]
struct QuestionMeta {
    name_off: usize,
    qtype: u16,
    qclass: u16,
}

/// Per-record metadata recorded by the parse pass: where the owner name
/// starts and where the RDATA subrange lies.
#[derive(Debug, Clone, Copy)]
struct RecordMeta {
    name_off: usize,
    rtype: u16,
    class: u16,
    ttl: u32,
    rd_start: usize,
    rd_end: usize,
}

/// Borrowed view of one question-section entry.
#[derive(Debug, Clone, Copy)]
pub struct QuestionView<'a> {
    buf: &'a [u8],
    meta: QuestionMeta,
}

impl<'a> QuestionView<'a> {
    /// The queried name, borrowed.
    pub fn name(&self) -> NameView<'a> {
        NameView { buf: self.buf, start: self.meta.name_off }
    }

    /// The queried type.
    pub fn qtype(&self) -> RecordType {
        RecordType::from_code(self.meta.qtype)
    }

    /// The queried class.
    pub fn qclass(&self) -> DnsClass {
        DnsClass::from_code(self.meta.qclass)
    }

    /// Materialize an owned [`Question`].
    pub fn to_owned(&self) -> Question {
        Question { name: self.name().to_owned(), qtype: self.qtype(), qclass: self.qclass() }
    }
}

/// Borrowed view of one resource record. The RDATA stays in the buffer
/// until [`RecordView::rdata`] decodes it.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    buf: &'a [u8],
    meta: RecordMeta,
}

impl<'a> RecordView<'a> {
    /// The owner name, borrowed.
    pub fn name(&self) -> NameView<'a> {
        NameView { buf: self.buf, start: self.meta.name_off }
    }

    /// The record type.
    pub fn rtype(&self) -> RecordType {
        RecordType::from_code(self.meta.rtype)
    }

    /// The record class.
    pub fn class(&self) -> DnsClass {
        DnsClass::from_code(self.meta.class)
    }

    /// Time to live, seconds.
    pub fn ttl(&self) -> u32 {
        self.meta.ttl
    }

    /// The raw `RDLENGTH`-delimited RDATA bytes (undecoded; names inside
    /// may point elsewhere in the message).
    pub fn rdata_bytes(&self) -> &'a [u8] {
        &self.buf[self.meta.rd_start..self.meta.rd_end]
    }

    /// Decode the typed [`RData`] on demand. This is where malformed
    /// RDATA surfaces: the parse pass only validated the subrange
    /// boundaries, not the contents.
    pub fn rdata(&self) -> Result<RData, WireError> {
        RData::decode(self.rtype(), (self.meta.rd_start, self.meta.rd_end), self.buf)
    }

    /// Materialize an owned [`Record`], decoding name and RDATA.
    pub fn to_owned(&self) -> Result<Record, WireError> {
        Ok(Record {
            name: self.name().to_owned(),
            rtype: self.rtype(),
            class: self.class(),
            ttl: self.meta.ttl,
            rdata: self.rdata()?,
        })
    }
}

/// A lazily-decoded borrowed view over an encoded DNS message.
///
/// ```
/// use dns_wire::{DnsName, Message, MessageView, RecordType};
///
/// let query = Message::query(7, DnsName::parse("example.com").unwrap(), RecordType::Https);
/// let bytes = query.encode();
/// let view = MessageView::parse(&bytes).unwrap();
/// assert_eq!(view.id(), 7);
/// let q = view.question().unwrap();
/// assert_eq!(q.qtype(), RecordType::Https);
/// assert!(q.name().eq_name(&DnsName::parse("EXAMPLE.com").unwrap()));
/// assert_eq!(view.to_message().unwrap(), Message::decode(&bytes).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct MessageView<'a> {
    buf: &'a [u8],
    id: u16,
    opcode: Opcode,
    flags: Flags,
    rcode: Rcode,
    questions: Vec<QuestionMeta>,
    /// Answers, authorities and additionals, in wire order.
    records: Vec<RecordMeta>,
    ancount: usize,
    nscount: usize,
    edns: Option<Edns>,
}

fn read_u16_at(buf: &[u8], at: usize, context: &'static str) -> Result<u16, WireError> {
    match buf.get(at..at + 2) {
        Some(b) => Ok(u16::from_be_bytes([b[0], b[1]])),
        None => Err(WireError::Truncated { context }),
    }
}

fn read_u32_at(buf: &[u8], at: usize, context: &'static str) -> Result<u32, WireError> {
    match buf.get(at..at + 4) {
        Some(b) => Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]])),
        None => Err(WireError::Truncated { context }),
    }
}

impl<'a> MessageView<'a> {
    /// Parse the message structure in one pass: header fields, question
    /// and record offsets, EDNS extraction (extended RCODE merged as in
    /// [`Message::decode`]). Names are validated but not materialized;
    /// RDATA contents are not inspected. Rejects trailing bytes.
    pub fn parse(buf: &'a [u8]) -> Result<MessageView<'a>, WireError> {
        if buf.len() < 12 {
            return Err(WireError::Truncated { context: "header" });
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let b2 = buf[2];
        let b3 = buf[3];
        let flags = Flags {
            qr: b2 & 0x80 != 0,
            aa: b2 & 0x04 != 0,
            tc: b2 & 0x02 != 0,
            rd: b2 & 0x01 != 0,
            ra: b3 & 0x80 != 0,
            ad: b3 & 0x20 != 0,
            cd: b3 & 0x10 != 0,
        };
        let opcode = Opcode::from_code((b2 >> 3) & 0x0F);
        let mut rcode = Rcode::from_code(b3 & 0x0F);
        let qdcount = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        let ancount = u16::from_be_bytes([buf[6], buf[7]]) as usize;
        let nscount = u16::from_be_bytes([buf[8], buf[9]]) as usize;
        let arcount = u16::from_be_bytes([buf[10], buf[11]]) as usize;

        let mut pos = 12;
        let mut questions = Vec::with_capacity(qdcount);
        for _ in 0..qdcount {
            let name_off = pos;
            pos = DnsName::skip_at(buf, pos)?;
            let qtype = read_u16_at(buf, pos, "question type")?;
            let qclass = read_u16_at(buf, pos + 2, "question class")?;
            pos += 4;
            questions.push(QuestionMeta { name_off, qtype, qclass });
        }

        let total = ancount + nscount + arcount;
        let mut records = Vec::with_capacity(total);
        let mut edns = None;
        for i in 0..total {
            let name_off = pos;
            pos = DnsName::skip_at(buf, pos)?;
            let rtype = read_u16_at(buf, pos, "record type")?;
            let class = read_u16_at(buf, pos + 2, "record class")?;
            let ttl = read_u32_at(buf, pos + 4, "record ttl")?;
            let rdlen = read_u16_at(buf, pos + 8, "rdlength")? as usize;
            pos += 10;
            let rd_start = pos;
            let rd_end = rd_start + rdlen;
            if rd_end > buf.len() {
                return Err(WireError::Truncated { context: "rdata" });
            }
            pos = rd_end;
            // OPT pseudo-records in the additional section become EDNS
            // state, exactly as in `Message::decode` (last one wins; a
            // non-zero extended RCODE merges with the header RCODE).
            if i >= ancount + nscount && rtype == RecordType::Opt.code() {
                let e = Edns {
                    udp_payload_size: class,
                    version: ((ttl >> 16) & 0xFF) as u8,
                    dnssec_ok: ttl & 0x8000 != 0,
                    extended_rcode: ((ttl >> 24) & 0xFF) as u8,
                };
                if e.extended_rcode != 0 {
                    let full = ((e.extended_rcode as u16) << 4) | (rcode.code() as u16);
                    rcode = Rcode::from_code((full & 0xFF) as u8);
                }
                edns = Some(e);
            }
            records.push(RecordMeta { name_off, rtype, class, ttl, rd_start, rd_end });
        }
        if pos != buf.len() {
            return Err(WireError::TrailingBytes(buf.len() - pos));
        }
        Ok(MessageView {
            buf,
            id,
            opcode,
            flags,
            rcode,
            questions,
            records,
            ancount,
            nscount,
            edns,
        })
    }

    /// Transaction id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Operation.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// Header flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Response code, with any EDNS extended RCODE already merged.
    pub fn rcode(&self) -> Rcode {
        self.rcode
    }

    /// EDNS(0) state from the OPT pseudo-record, if present.
    pub fn edns(&self) -> Option<Edns> {
        self.edns
    }

    /// Whether the EDNS DO bit is set.
    pub fn dnssec_ok(&self) -> bool {
        self.edns.map(|e| e.dnssec_ok).unwrap_or(false)
    }

    /// The underlying datagram bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.buf
    }

    /// Number of question-section entries.
    pub fn question_count(&self) -> usize {
        self.questions.len()
    }

    /// Number of answer-section records.
    pub fn answer_count(&self) -> usize {
        self.ancount
    }

    /// Number of authority-section records.
    pub fn authority_count(&self) -> usize {
        self.nscount
    }

    /// First question, if present.
    pub fn question(&self) -> Option<QuestionView<'a>> {
        self.questions.first().map(|m| QuestionView { buf: self.buf, meta: *m })
    }

    /// Iterate the question section.
    pub fn questions(&self) -> impl Iterator<Item = QuestionView<'a>> + '_ {
        self.questions.iter().map(|m| QuestionView { buf: self.buf, meta: *m })
    }

    /// Iterate the answer section.
    pub fn answers(&self) -> impl Iterator<Item = RecordView<'a>> + '_ {
        self.records[..self.ancount].iter().map(|m| RecordView { buf: self.buf, meta: *m })
    }

    /// Iterate the authority section.
    pub fn authorities(&self) -> impl Iterator<Item = RecordView<'a>> + '_ {
        self.records[self.ancount..self.ancount + self.nscount]
            .iter()
            .map(|m| RecordView { buf: self.buf, meta: *m })
    }

    /// Iterate the additional section, excluding OPT pseudo-records
    /// (their contents are exposed via [`MessageView::edns`]).
    pub fn additionals(&self) -> impl Iterator<Item = RecordView<'a>> + '_ {
        self.records[self.ancount + self.nscount..]
            .iter()
            .filter(|m| m.rtype != RecordType::Opt.code())
            .map(|m| RecordView { buf: self.buf, meta: *m })
    }

    /// Materialize an owned [`Message`], decoding every name and RDATA.
    /// Equal to [`Message::decode`] of the same buffer whenever both
    /// succeed; fails only on RDATA that `Message::decode` would also
    /// reject (the structure was validated by [`MessageView::parse`]).
    pub fn to_message(&self) -> Result<Message, WireError> {
        let mut questions = Vec::with_capacity(self.questions.len());
        for q in self.questions() {
            questions.push(q.to_owned());
        }
        let mut answers = Vec::with_capacity(self.ancount);
        for r in self.answers() {
            answers.push(r.to_owned()?);
        }
        let mut authorities = Vec::with_capacity(self.nscount);
        for r in self.authorities() {
            authorities.push(r.to_owned()?);
        }
        let mut additionals = Vec::new();
        for r in self.additionals() {
            additionals.push(r.to_owned()?);
        }
        Ok(Message {
            id: self.id,
            opcode: self.opcode,
            flags: self.flags,
            rcode: self.rcode,
            questions,
            answers,
            authorities,
            additionals,
            edns: self.edns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Edns, Message};
    use crate::record::{RData, Record, SoaRdata};
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn sample_response() -> Message {
        let q = Message::query_dnssec(0x4242, name("www.Example.com"), RecordType::Https);
        let mut resp = q.response();
        resp.answers.push(Record::new(
            name("www.example.com"),
            300,
            RData::Cname(name("example.com")),
        ));
        resp.answers.push(Record::new(
            name("example.com"),
            60,
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        resp.authorities.push(Record::new(
            name("example.com"),
            3600,
            RData::Soa(SoaRdata {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 1,
                refresh: 2,
                retry: 3,
                expire: 4,
                minimum: 60,
            }),
        ));
        resp.additionals.push(Record::new(
            name("ns1.example.com"),
            300,
            RData::A(Ipv4Addr::new(5, 6, 7, 8)),
        ));
        resp
    }

    #[test]
    fn view_matches_owned_decode() {
        let buf = sample_response().encode();
        let view = MessageView::parse(&buf).unwrap();
        assert_eq!(view.to_message().unwrap(), Message::decode(&buf).unwrap());
    }

    #[test]
    fn header_fields_without_decoding() {
        let buf = sample_response().encode();
        let view = MessageView::parse(&buf).unwrap();
        assert_eq!(view.id(), 0x4242);
        assert!(view.flags().qr);
        assert_eq!(view.rcode(), Rcode::NoError);
        assert!(view.dnssec_ok());
        assert_eq!(view.question_count(), 1);
        assert_eq!(view.answer_count(), 2);
        assert_eq!(view.authority_count(), 1);
        assert_eq!(view.additionals().count(), 1);
    }

    #[test]
    fn name_view_labels_follow_compression() {
        let buf = sample_response().encode();
        let view = MessageView::parse(&buf).unwrap();
        // Second answer's owner was compressed against the question name.
        let second = view.answers().nth(1).unwrap();
        let labels: Vec<&[u8]> = second.name().labels().collect();
        assert_eq!(labels, vec![&b"Example"[..], &b"com"[..]]);
        assert!(second.name().eq_name(&name("example.COM")));
        assert!(!second.name().eq_name(&name("example.org")));
        assert!(!second.name().eq_name(&name("www.example.com")));
        assert_eq!(second.name().to_owned(), name("example.com"));
    }

    #[test]
    fn rdata_decoded_on_demand() {
        let buf = sample_response().encode();
        let view = MessageView::parse(&buf).unwrap();
        let first = view.answers().next().unwrap();
        assert_eq!(first.rtype(), RecordType::Cname);
        assert_eq!(first.rdata().unwrap(), RData::Cname(name("example.com")));
        let soa = view.authorities().next().unwrap();
        match soa.rdata().unwrap() {
            RData::Soa(s) => assert_eq!(s.minimum, 60),
            other => panic!("expected SOA, got {other:?}"),
        }
    }

    #[test]
    fn bad_rdata_surfaces_lazily() {
        // An A record with 3-byte RDATA: structurally fine (the range is
        // in bounds) but semantically invalid.
        let mut q = Message::query(1, name("x.com"), RecordType::A);
        q.edns = None; // keep the appended answer the only record
        let mut buf = q.encode();
        // Append a hand-built answer record and bump ANCOUNT.
        buf[7] = 1;
        buf.extend_from_slice(&[0xC0, 12]); // name: pointer to the question
        buf.extend_from_slice(&1u16.to_be_bytes()); // type A
        buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        buf.extend_from_slice(&60u32.to_be_bytes()); // ttl
        buf.extend_from_slice(&3u16.to_be_bytes()); // rdlength
        buf.extend_from_slice(&[1, 2, 3]);
        let view = MessageView::parse(&buf).unwrap();
        let rec = view.answers().next().unwrap();
        assert!(rec.rdata().is_err());
        assert!(view.to_message().is_err());
        assert!(Message::decode(&buf).is_err());
    }

    #[test]
    fn structural_errors_rejected_at_parse() {
        let buf = sample_response().encode();
        for cut in 0..buf.len() {
            assert!(MessageView::parse(&buf[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = buf.clone();
        trailing.push(0);
        assert_eq!(MessageView::parse(&trailing).unwrap_err(), WireError::TrailingBytes(1));
    }

    #[test]
    fn name_view_renders_key_and_canonical_wire() {
        let buf = sample_response().encode();
        let view = MessageView::parse(&buf).unwrap();
        let qname = view.question().unwrap().name();
        let mut key = String::new();
        qname.write_key(&mut key);
        assert_eq!(key, "www.example.com");
        assert!(!qname.is_ascii_lowercase());
        let mut wire = Vec::new();
        qname.write_canonical_wire(&mut wire);
        assert_eq!(wire, name("www.example.com").canonical_wire());
        assert_eq!(qname.to_string(), "www.Example.com.");
    }

    #[test]
    fn edns_extended_rcode_merged() {
        let q = Message::query(9, name("a.com"), RecordType::A);
        let mut resp = q.response();
        resp.rcode = Rcode::Other(5);
        resp.edns = Some(Edns { extended_rcode: 1, ..Default::default() });
        let buf = resp.encode();
        let view = MessageView::parse(&buf).unwrap();
        assert_eq!(view.rcode(), Message::decode(&buf).unwrap().rcode);
        assert_eq!(view.rcode(), Rcode::from_code(0x15));
    }

    #[test]
    fn root_name_view() {
        let q = Message::query(3, DnsName::root(), RecordType::Ns);
        let buf = q.encode();
        let view = MessageView::parse(&buf).unwrap();
        let qname = view.question().unwrap().name();
        assert!(qname.is_root());
        assert_eq!(qname.label_count(), 0);
        let mut key = String::new();
        qname.write_key(&mut key);
        assert_eq!(key, ".");
        assert_eq!(qname.to_string(), ".");
    }
}
