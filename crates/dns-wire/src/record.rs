//! Resource records: type/class registries, typed RDATA, wire codec.

use crate::error::WireError;
use crate::name::DnsName;
use crate::svcb::SvcbRdata;
use crate::wire::{WireReader, WireWriter};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNS record types used in this workspace (numeric values per IANA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 address.
    A,
    /// Name server.
    Ns,
    /// Canonical name (alias of the whole name).
    Cname,
    /// Start of authority.
    Soa,
    /// Pointer (reverse lookups).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text.
    Txt,
    /// IPv6 address.
    Aaaa,
    /// Service location (RFC 2782).
    Srv,
    /// Subtree redirection (RFC 6672).
    Dname,
    /// EDNS(0) pseudo-record (RFC 6891).
    Opt,
    /// Delegation signer (DNSSEC).
    Ds,
    /// Resource record signature (DNSSEC).
    Rrsig,
    /// Public key (DNSSEC).
    Dnskey,
    /// General-purpose service binding (RFC 9460).
    Svcb,
    /// HTTPS-specific service binding (RFC 9460).
    Https,
    /// Any type not modelled explicitly.
    Unknown(u16),
}

impl RecordType {
    /// Numeric type code.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Srv => 33,
            RecordType::Dname => 39,
            RecordType::Opt => 41,
            RecordType::Ds => 43,
            RecordType::Rrsig => 46,
            RecordType::Dnskey => 48,
            RecordType::Svcb => 64,
            RecordType::Https => 65,
            RecordType::Unknown(code) => code,
        }
    }

    /// Map a numeric type code to a variant.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            33 => RecordType::Srv,
            39 => RecordType::Dname,
            41 => RecordType::Opt,
            43 => RecordType::Ds,
            46 => RecordType::Rrsig,
            48 => RecordType::Dnskey,
            64 => RecordType::Svcb,
            65 => RecordType::Https,
            other => RecordType::Unknown(other),
        }
    }

    /// Presentation mnemonic (`A`, `HTTPS`, `TYPE1234`, …).
    pub fn mnemonic(self) -> String {
        match self {
            RecordType::A => "A".into(),
            RecordType::Ns => "NS".into(),
            RecordType::Cname => "CNAME".into(),
            RecordType::Soa => "SOA".into(),
            RecordType::Ptr => "PTR".into(),
            RecordType::Mx => "MX".into(),
            RecordType::Txt => "TXT".into(),
            RecordType::Aaaa => "AAAA".into(),
            RecordType::Srv => "SRV".into(),
            RecordType::Dname => "DNAME".into(),
            RecordType::Opt => "OPT".into(),
            RecordType::Ds => "DS".into(),
            RecordType::Rrsig => "RRSIG".into(),
            RecordType::Dnskey => "DNSKEY".into(),
            RecordType::Svcb => "SVCB".into(),
            RecordType::Https => "HTTPS".into(),
            RecordType::Unknown(code) => format!("TYPE{code}"),
        }
    }

    /// Parse a presentation mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "A" => RecordType::A,
            "NS" => RecordType::Ns,
            "CNAME" => RecordType::Cname,
            "SOA" => RecordType::Soa,
            "PTR" => RecordType::Ptr,
            "MX" => RecordType::Mx,
            "TXT" => RecordType::Txt,
            "AAAA" => RecordType::Aaaa,
            "SRV" => RecordType::Srv,
            "DNAME" => RecordType::Dname,
            "OPT" => RecordType::Opt,
            "DS" => RecordType::Ds,
            "RRSIG" => RecordType::Rrsig,
            "DNSKEY" => RecordType::Dnskey,
            "SVCB" => RecordType::Svcb,
            "HTTPS" => RecordType::Https,
            other => {
                let code: u16 = other.strip_prefix("TYPE")?.parse().ok()?;
                RecordType::from_code(code)
            }
        })
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// DNS class. Only IN is used operationally; others round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsClass {
    /// Internet.
    In,
    /// Chaos.
    Ch,
    /// Hesiod.
    Hs,
    /// QCLASS ANY.
    Any,
    /// Unmodelled class.
    Unknown(u16),
}

impl DnsClass {
    /// Numeric class code.
    pub fn code(self) -> u16 {
        match self {
            DnsClass::In => 1,
            DnsClass::Ch => 3,
            DnsClass::Hs => 4,
            DnsClass::Any => 255,
            DnsClass::Unknown(code) => code,
        }
    }

    /// Map a numeric class code to a variant.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => DnsClass::In,
            3 => DnsClass::Ch,
            4 => DnsClass::Hs,
            255 => DnsClass::Any,
            other => DnsClass::Unknown(other),
        }
    }
}

impl fmt::Display for DnsClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsClass::In => write!(f, "IN"),
            DnsClass::Ch => write!(f, "CH"),
            DnsClass::Hs => write!(f, "HS"),
            DnsClass::Any => write!(f, "ANY"),
            DnsClass::Unknown(code) => write!(f, "CLASS{code}"),
        }
    }
}

/// SOA RDATA fields (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaRdata {
    /// Primary name server.
    pub mname: DnsName,
    /// Responsible mailbox, encoded as a name.
    pub rname: DnsName,
    /// Zone serial number.
    pub serial: u32,
    /// Refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval (seconds).
    pub retry: u32,
    /// Expire limit (seconds).
    pub expire: u32,
    /// Negative-caching TTL (seconds).
    pub minimum: u32,
}

/// SRV RDATA fields (RFC 2782).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrvRdata {
    /// Priority (lower preferred).
    pub priority: u16,
    /// Weight for equal-priority selection.
    pub weight: u16,
    /// Service port.
    pub port: u16,
    /// Target host.
    pub target: DnsName,
}

/// RRSIG RDATA fields (RFC 4034 §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrsigRdata {
    /// Type of the RRset covered by this signature.
    pub type_covered: RecordType,
    /// Signature algorithm number.
    pub algorithm: u8,
    /// Number of labels in the original owner name.
    pub labels: u8,
    /// Original TTL of the covered RRset.
    pub original_ttl: u32,
    /// Signature expiration (absolute seconds).
    pub expiration: u32,
    /// Signature inception (absolute seconds).
    pub inception: u32,
    /// Key tag of the signing DNSKEY.
    pub key_tag: u16,
    /// Name of the zone that signed.
    pub signer: DnsName,
    /// Signature bytes.
    pub signature: Vec<u8>,
}

/// DNSKEY RDATA fields (RFC 4034 §2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnskeyRdata {
    /// Flags; bit 7 = Zone Key, bit 15 = SEP (KSK).
    pub flags: u16,
    /// Always 3 for DNSSEC.
    pub protocol: u8,
    /// Algorithm number.
    pub algorithm: u8,
    /// Public key bytes.
    pub public_key: Vec<u8>,
}

impl DnskeyRdata {
    /// Zone-key flag (bit 7, value 256).
    pub fn is_zone_key(&self) -> bool {
        self.flags & 0x0100 != 0
    }

    /// Secure-entry-point flag (bit 15, value 1): a KSK.
    pub fn is_sep(&self) -> bool {
        self.flags & 0x0001 != 0
    }

    /// RFC 4034 Appendix B key tag over the wire-format RDATA.
    pub fn key_tag(&self) -> u16 {
        let mut w = WireWriter::new();
        w.put_u16(self.flags);
        w.put_u8(self.protocol);
        w.put_u8(self.algorithm);
        w.put_bytes(&self.public_key);
        let rdata = w.into_bytes();
        let mut acc: u32 = 0;
        for (i, &b) in rdata.iter().enumerate() {
            if i % 2 == 0 {
                acc += (b as u32) << 8;
            } else {
                acc += b as u32;
            }
        }
        acc += (acc >> 16) & 0xFFFF;
        (acc & 0xFFFF) as u16
    }
}

/// DS RDATA fields (RFC 4034 §5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsRdata {
    /// Key tag of the referenced DNSKEY.
    pub key_tag: u16,
    /// Algorithm of the referenced DNSKEY.
    pub algorithm: u8,
    /// Digest algorithm number.
    pub digest_type: u8,
    /// Digest of the DNSKEY.
    pub digest: Vec<u8>,
}

/// Typed RDATA for every record type the workspace understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Alias target.
    Cname(DnsName),
    /// Subtree redirection target.
    Dname(DnsName),
    /// Authoritative name server.
    Ns(DnsName),
    /// Reverse pointer.
    Ptr(DnsName),
    /// Mail exchange (preference, host).
    Mx(u16, DnsName),
    /// Text strings.
    Txt(Vec<Vec<u8>>),
    /// Start of authority.
    Soa(SoaRdata),
    /// Service location.
    Srv(SrvRdata),
    /// General service binding.
    Svcb(SvcbRdata),
    /// HTTPS service binding.
    Https(SvcbRdata),
    /// Resource record signature.
    Rrsig(RrsigRdata),
    /// DNSSEC public key.
    Dnskey(DnskeyRdata),
    /// Delegation signer.
    Ds(DsRdata),
    /// EDNS(0) options (opaque option list).
    Opt(Vec<u8>),
    /// Opaque RDATA of an unmodelled type.
    Unknown(Vec<u8>),
}

impl RData {
    /// The record type corresponding to this RDATA (for `Unknown`, the
    /// caller's record carries the real type; this returns `TYPE0`).
    pub fn record_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Cname(_) => RecordType::Cname,
            RData::Dname(_) => RecordType::Dname,
            RData::Ns(_) => RecordType::Ns,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Mx(..) => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Soa(_) => RecordType::Soa,
            RData::Srv(_) => RecordType::Srv,
            RData::Svcb(_) => RecordType::Svcb,
            RData::Https(_) => RecordType::Https,
            RData::Rrsig(_) => RecordType::Rrsig,
            RData::Dnskey(_) => RecordType::Dnskey,
            RData::Ds(_) => RecordType::Ds,
            RData::Opt(_) => RecordType::Opt,
            RData::Unknown(_) => RecordType::Unknown(0),
        }
    }

    /// Encode RDATA bytes (without the RDLENGTH prefix). Names inside
    /// RDATA are written uncompressed — required for SVCB/HTTPS and the
    /// safe modern default for all types (RFC 3597 §4).
    pub fn encode(&self, w: &mut WireWriter) {
        match self {
            RData::A(a) => w.put_bytes(&a.octets()),
            RData::Aaaa(a) => w.put_bytes(&a.octets()),
            RData::Cname(n) | RData::Dname(n) | RData::Ns(n) | RData::Ptr(n) => {
                w.put_name_uncompressed(n)
            }
            RData::Mx(pref, host) => {
                w.put_u16(*pref);
                w.put_name_uncompressed(host);
            }
            RData::Txt(strings) => {
                for s in strings {
                    w.put_u8(s.len().min(255) as u8);
                    w.put_bytes(&s[..s.len().min(255)]);
                }
            }
            RData::Soa(soa) => {
                w.put_name_uncompressed(&soa.mname);
                w.put_name_uncompressed(&soa.rname);
                w.put_u32(soa.serial);
                w.put_u32(soa.refresh);
                w.put_u32(soa.retry);
                w.put_u32(soa.expire);
                w.put_u32(soa.minimum);
            }
            RData::Srv(srv) => {
                w.put_u16(srv.priority);
                w.put_u16(srv.weight);
                w.put_u16(srv.port);
                w.put_name_uncompressed(&srv.target);
            }
            RData::Svcb(rd) | RData::Https(rd) => rd.encode(w),
            RData::Rrsig(sig) => {
                w.put_u16(sig.type_covered.code());
                w.put_u8(sig.algorithm);
                w.put_u8(sig.labels);
                w.put_u32(sig.original_ttl);
                w.put_u32(sig.expiration);
                w.put_u32(sig.inception);
                w.put_u16(sig.key_tag);
                w.put_name_uncompressed(&sig.signer);
                w.put_bytes(&sig.signature);
            }
            RData::Dnskey(key) => {
                w.put_u16(key.flags);
                w.put_u8(key.protocol);
                w.put_u8(key.algorithm);
                w.put_bytes(&key.public_key);
            }
            RData::Ds(ds) => {
                w.put_u16(ds.key_tag);
                w.put_u8(ds.algorithm);
                w.put_u8(ds.digest_type);
                w.put_bytes(&ds.digest);
            }
            RData::Opt(bytes) | RData::Unknown(bytes) => w.put_bytes(bytes),
        }
    }

    /// Decode RDATA of the given type from exactly `rdata`. Names inside
    /// compressed messages may point into `whole_message`; when decoding a
    /// standalone RDATA buffer pass the RDATA itself as the whole message.
    pub fn decode(
        rtype: RecordType,
        rdata_range: (usize, usize),
        whole_message: &[u8],
    ) -> Result<RData, WireError> {
        let (start, end) = rdata_range;
        if end > whole_message.len() || start > end {
            return Err(WireError::Truncated { context: "rdata range" });
        }
        let rdata = &whole_message[start..end];
        let read_name_at = |off: usize| -> Result<(DnsName, usize), WireError> {
            DnsName::decode_at(whole_message, start + off).map(|(n, next)| (n, next - start))
        };
        match rtype {
            RecordType::A => {
                if rdata.len() != 4 {
                    return Err(WireError::InvalidValue { context: "A rdata" });
                }
                Ok(RData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3])))
            }
            RecordType::Aaaa => {
                if rdata.len() != 16 {
                    return Err(WireError::InvalidValue { context: "AAAA rdata" });
                }
                let mut o = [0u8; 16];
                o.copy_from_slice(rdata);
                Ok(RData::Aaaa(Ipv6Addr::from(o)))
            }
            RecordType::Cname | RecordType::Dname | RecordType::Ns | RecordType::Ptr => {
                let (name, consumed) = read_name_at(0)?;
                if consumed != rdata.len() {
                    return Err(WireError::RdataLengthMismatch { declared: rdata.len(), consumed });
                }
                Ok(match rtype {
                    RecordType::Cname => RData::Cname(name),
                    RecordType::Dname => RData::Dname(name),
                    RecordType::Ns => RData::Ns(name),
                    _ => RData::Ptr(name),
                })
            }
            RecordType::Mx => {
                if rdata.len() < 3 {
                    return Err(WireError::Truncated { context: "MX rdata" });
                }
                let pref = u16::from_be_bytes([rdata[0], rdata[1]]);
                let (host, consumed) = read_name_at(2)?;
                if consumed != rdata.len() {
                    return Err(WireError::RdataLengthMismatch { declared: rdata.len(), consumed });
                }
                Ok(RData::Mx(pref, host))
            }
            RecordType::Txt => {
                let mut r = WireReader::new(rdata);
                let mut strings = Vec::new();
                while r.remaining() > 0 {
                    let n = r.read_u8()? as usize;
                    strings.push(r.read_bytes(n, "TXT string")?.to_vec());
                }
                Ok(RData::Txt(strings))
            }
            RecordType::Soa => {
                let (mname, off1) = read_name_at(0)?;
                let (rname, off2) = read_name_at(off1)?;
                let mut r = WireReader::new(rdata);
                r.seek(off2)?;
                let soa = SoaRdata {
                    mname,
                    rname,
                    serial: r.read_u32()?,
                    refresh: r.read_u32()?,
                    retry: r.read_u32()?,
                    expire: r.read_u32()?,
                    minimum: r.read_u32()?,
                };
                if r.remaining() > 0 {
                    return Err(WireError::TrailingBytes(r.remaining()));
                }
                Ok(RData::Soa(soa))
            }
            RecordType::Srv => {
                let mut r = WireReader::new(rdata);
                let priority = r.read_u16()?;
                let weight = r.read_u16()?;
                let port = r.read_u16()?;
                let (target, consumed) = read_name_at(6)?;
                if consumed != rdata.len() {
                    return Err(WireError::RdataLengthMismatch { declared: rdata.len(), consumed });
                }
                Ok(RData::Srv(SrvRdata { priority, weight, port, target }))
            }
            RecordType::Svcb => Ok(RData::Svcb(SvcbRdata::decode(rdata)?)),
            RecordType::Https => Ok(RData::Https(SvcbRdata::decode(rdata)?)),
            RecordType::Rrsig => {
                let mut r = WireReader::new(rdata);
                let type_covered = RecordType::from_code(r.read_u16()?);
                let algorithm = r.read_u8()?;
                let labels = r.read_u8()?;
                let original_ttl = r.read_u32()?;
                let expiration = r.read_u32()?;
                let inception = r.read_u32()?;
                let key_tag = r.read_u16()?;
                let (signer, next) = read_name_at(r.position())?;
                let signature = rdata
                    .get(next..)
                    .ok_or(WireError::Truncated { context: "RRSIG signature" })?
                    .to_vec();
                Ok(RData::Rrsig(RrsigRdata {
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer,
                    signature,
                }))
            }
            RecordType::Dnskey => {
                let mut r = WireReader::new(rdata);
                let flags = r.read_u16()?;
                let protocol = r.read_u8()?;
                let algorithm = r.read_u8()?;
                let public_key = r.read_bytes(r.remaining(), "DNSKEY key")?.to_vec();
                Ok(RData::Dnskey(DnskeyRdata { flags, protocol, algorithm, public_key }))
            }
            RecordType::Ds => {
                let mut r = WireReader::new(rdata);
                let key_tag = r.read_u16()?;
                let algorithm = r.read_u8()?;
                let digest_type = r.read_u8()?;
                let digest = r.read_bytes(r.remaining(), "DS digest")?.to_vec();
                if digest.is_empty() {
                    return Err(WireError::InvalidValue { context: "DS digest" });
                }
                Ok(RData::Ds(DsRdata { key_tag, algorithm, digest_type, digest }))
            }
            RecordType::Opt => Ok(RData::Opt(rdata.to_vec())),
            RecordType::Unknown(_) => Ok(RData::Unknown(rdata.to_vec())),
        }
    }

    /// Presentation form of the RDATA.
    pub fn to_presentation(&self) -> String {
        let mut out = String::new();
        self.write_presentation(&mut out);
        out
    }

    /// Append the presentation form to `out` without intermediate
    /// per-field or per-byte allocations — bulk rendering paths reuse one
    /// cleared buffer across many records.
    pub fn write_presentation(&self, out: &mut String) {
        use fmt::Write as _;
        match self {
            RData::A(a) => {
                let _ = write!(out, "{a}");
            }
            RData::Aaaa(a) => {
                let _ = write!(out, "{a}");
            }
            RData::Cname(n) | RData::Dname(n) | RData::Ns(n) | RData::Ptr(n) => {
                let _ = write!(out, "{n}");
            }
            RData::Mx(pref, host) => {
                let _ = write!(out, "{pref} {host}");
            }
            RData::Txt(strings) => {
                for (i, s) in strings.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    let _ = write!(out, "\"{}\"", String::from_utf8_lossy(s));
                }
            }
            RData::Soa(s) => {
                let _ = write!(
                    out,
                    "{} {} {} {} {} {} {}",
                    s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
                );
            }
            RData::Srv(s) => {
                let _ = write!(out, "{} {} {} {}", s.priority, s.weight, s.port, s.target);
            }
            RData::Svcb(rd) | RData::Https(rd) => rd.write_presentation(out),
            RData::Rrsig(sig) => {
                let _ = write!(
                    out,
                    "{} {} {} {} {} {} {} {} ",
                    sig.type_covered,
                    sig.algorithm,
                    sig.labels,
                    sig.original_ttl,
                    sig.expiration,
                    sig.inception,
                    sig.key_tag,
                    sig.signer,
                );
                crate::svcb::base64ish_into(out, &sig.signature);
            }
            RData::Dnskey(k) => {
                let _ = write!(out, "{} {} {} ", k.flags, k.protocol, k.algorithm);
                crate::svcb::base64ish_into(out, &k.public_key);
            }
            RData::Ds(d) => {
                let _ = write!(out, "{} {} {} ", d.key_tag, d.algorithm, d.digest_type);
                push_hex(out, &d.digest, b"0123456789ABCDEF");
            }
            RData::Opt(bytes) | RData::Unknown(bytes) => {
                let _ = write!(out, "\\# {} ", bytes.len());
                push_hex(out, bytes, b"0123456789abcdef");
            }
        }
    }
}

/// Append the hex rendering of `bytes` using the given 16-entry alphabet.
fn push_hex(out: &mut String, bytes: &[u8], alphabet: &[u8; 16]) {
    out.reserve(bytes.len() * 2);
    for &b in bytes {
        out.push(alphabet[(b >> 4) as usize] as char);
        out.push(alphabet[(b & 0x0F) as usize] as char);
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: DnsName,
    /// Record type; kept separately so unknown types survive round-trips.
    pub rtype: RecordType,
    /// Class (IN in practice).
    pub class: DnsClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed RDATA.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for class IN.
    pub fn new(name: DnsName, ttl: u32, rdata: RData) -> Self {
        let rtype = rdata.record_type();
        Record { name, rtype, class: DnsClass::In, ttl, rdata }
    }

    /// Construct with an explicit type (for unknown-type records).
    pub fn with_type(name: DnsName, rtype: RecordType, ttl: u32, rdata: RData) -> Self {
        Record { name, rtype, class: DnsClass::In, ttl, rdata }
    }

    /// Encode this record (name possibly compressed; RDLENGTH backfilled).
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_name(&self.name);
        w.put_u16(self.rtype.code());
        w.put_u16(self.class.code());
        w.put_u32(self.ttl);
        let len_at = w.len();
        w.put_u16(0);
        let before = w.len();
        self.rdata.encode(w);
        let rdlen = w.len() - before;
        w.patch_u16(len_at, rdlen as u16);
    }

    /// Decode one record at the reader's position.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Record, WireError> {
        let name = r.read_name()?;
        let rtype = RecordType::from_code(r.read_u16()?);
        let class = DnsClass::from_code(r.read_u16()?);
        let ttl = r.read_u32()?;
        let rdlen = r.read_u16()? as usize;
        let start = r.position();
        if r.remaining() < rdlen {
            return Err(WireError::Truncated { context: "rdata" });
        }
        let whole = r.whole();
        let rdata = RData::decode(rtype, (start, start + rdlen), whole)?;
        r.seek(start + rdlen)?;
        Ok(Record { name, rtype, class, ttl, rdata })
    }

    /// Zone-file presentation line.
    pub fn to_presentation(&self) -> String {
        let mut out = String::new();
        self.write_presentation(&mut out);
        out
    }

    /// Append the zone-file presentation line to `out` (see
    /// [`RData::write_presentation`] for the allocation contract).
    pub fn write_presentation(&self, out: &mut String) {
        use fmt::Write as _;
        let _ = write!(out, "{} {} {} {} ", self.name, self.ttl, self.class, self.rtype);
        self.rdata.write_presentation(out);
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_presentation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svcb::SvcParam;

    fn rt(rec: &Record) -> Record {
        let mut w = WireWriter::new();
        rec.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        let back = Record::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "trailing bytes after record");
        back
    }

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    #[test]
    fn a_record_round_trip() {
        let rec = Record::new(name("a.com"), 300, RData::A(Ipv4Addr::new(1, 2, 3, 4)));
        assert_eq!(rt(&rec), rec);
        assert_eq!(rec.to_presentation(), "a.com. 300 IN A 1.2.3.4");
    }

    #[test]
    fn aaaa_record_round_trip() {
        let rec = Record::new(name("a.com"), 60, RData::Aaaa("2606:4700::1".parse().unwrap()));
        assert_eq!(rt(&rec), rec);
    }

    #[test]
    fn cname_ns_soa_round_trip() {
        for rec in [
            Record::new(name("www.a.com"), 300, RData::Cname(name("a.com"))),
            Record::new(name("a.com"), 300, RData::Ns(name("ns1.cloudflare.com"))),
            Record::new(
                name("a.com"),
                3600,
                RData::Soa(SoaRdata {
                    mname: name("ns1.a.com"),
                    rname: name("hostmaster.a.com"),
                    serial: 2024033101,
                    refresh: 7200,
                    retry: 3600,
                    expire: 1209600,
                    minimum: 300,
                }),
            ),
        ] {
            assert_eq!(rt(&rec), rec);
        }
    }

    #[test]
    fn https_record_round_trip_with_all_params() {
        let rd = SvcbRdata {
            priority: 1,
            target: DnsName::root(),
            params: vec![
                SvcParam::Mandatory(vec![1, 4]),
                SvcParam::Alpn(vec![b"h2".to_vec(), b"h3".to_vec()]),
                SvcParam::Port(8443),
                SvcParam::Ipv4Hint(vec![Ipv4Addr::new(104, 16, 132, 229)]),
                SvcParam::Ech(vec![1, 2, 3, 4, 5, 6, 7, 8]),
                SvcParam::Ipv6Hint(vec!["2606:4700::6810:84e5".parse().unwrap()]),
            ],
        };
        let rec = Record::new(name("a.com"), 300, RData::Https(rd));
        assert_eq!(rt(&rec), rec);
    }

    #[test]
    fn svcb_distinct_from_https() {
        let rd = SvcbRdata::alias(name("pool.a.com"));
        let svcb = Record::new(name("_dns.a.com"), 300, RData::Svcb(rd.clone()));
        assert_eq!(svcb.rtype, RecordType::Svcb);
        let https = Record::new(name("a.com"), 300, RData::Https(rd));
        assert_eq!(https.rtype, RecordType::Https);
        assert_eq!(rt(&svcb), svcb);
    }

    #[test]
    fn rrsig_dnskey_ds_round_trip() {
        let key = DnskeyRdata { flags: 257, protocol: 3, algorithm: 253, public_key: vec![9; 16] };
        let tag = key.key_tag();
        for rec in [
            Record::new(name("a.com"), 300, RData::Dnskey(key)),
            Record::new(
                name("a.com"),
                300,
                RData::Rrsig(RrsigRdata {
                    type_covered: RecordType::Https,
                    algorithm: 253,
                    labels: 2,
                    original_ttl: 300,
                    expiration: 1_700_000_000,
                    inception: 1_690_000_000,
                    key_tag: tag,
                    signer: name("a.com"),
                    signature: vec![7; 24],
                }),
            ),
            Record::new(
                name("a.com"),
                300,
                RData::Ds(DsRdata {
                    key_tag: tag,
                    algorithm: 253,
                    digest_type: 1,
                    digest: vec![3; 16],
                }),
            ),
        ] {
            assert_eq!(rt(&rec), rec);
        }
    }

    #[test]
    fn key_tag_is_stable() {
        let key =
            DnskeyRdata { flags: 256, protocol: 3, algorithm: 253, public_key: vec![1, 2, 3, 4] };
        assert_eq!(key.key_tag(), key.key_tag());
        let other = DnskeyRdata { public_key: vec![1, 2, 3, 5], ..key.clone() };
        assert_ne!(key.key_tag(), other.key_tag());
        assert!(DnskeyRdata { flags: 257, ..key.clone() }.is_sep());
        assert!(key.is_zone_key());
        assert!(!key.is_sep());
    }

    #[test]
    fn txt_mx_srv_ptr_dname_round_trip() {
        for rec in [
            Record::new(name("a.com"), 300, RData::Txt(vec![b"v=spf1 -all".to_vec()])),
            Record::new(name("a.com"), 300, RData::Mx(10, name("mail.a.com"))),
            Record::new(
                name("_sip._tcp.a.com"),
                300,
                RData::Srv(SrvRdata {
                    priority: 1,
                    weight: 5,
                    port: 5060,
                    target: name("sip.a.com"),
                }),
            ),
            Record::new(name("4.3.2.1.in-addr.arpa"), 300, RData::Ptr(name("a.com"))),
            Record::new(name("old.a.com"), 300, RData::Dname(name("new.a.com"))),
        ] {
            assert_eq!(rt(&rec), rec);
        }
    }

    #[test]
    fn unknown_type_round_trips_opaquely() {
        let rec = Record::with_type(
            name("a.com"),
            RecordType::Unknown(999),
            300,
            RData::Unknown(vec![1, 2, 3]),
        );
        let back = rt(&rec);
        assert_eq!(back.rtype, RecordType::Unknown(999));
        assert_eq!(back.rdata, RData::Unknown(vec![1, 2, 3]));
    }

    #[test]
    fn truncated_rdata_rejected() {
        let rec = Record::new(name("a.com"), 300, RData::A(Ipv4Addr::new(1, 2, 3, 4)));
        let mut w = WireWriter::new();
        rec.encode(&mut w);
        let buf = w.into_bytes();
        for cut in 1..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            assert!(Record::decode(&mut r).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_a_length_rejected() {
        // Hand-encode an A record with 3-byte RDATA.
        let mut w = WireWriter::new();
        w.put_name(&name("x.com"));
        w.put_u16(RecordType::A.code());
        w.put_u16(DnsClass::In.code());
        w.put_u32(60);
        w.put_u16(3);
        w.put_bytes(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert!(Record::decode(&mut r).is_err());
    }

    #[test]
    fn mnemonics_round_trip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Ptr,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Aaaa,
            RecordType::Srv,
            RecordType::Dname,
            RecordType::Opt,
            RecordType::Ds,
            RecordType::Rrsig,
            RecordType::Dnskey,
            RecordType::Svcb,
            RecordType::Https,
            RecordType::Unknown(1234),
        ] {
            assert_eq!(RecordType::from_mnemonic(&t.mnemonic()), Some(t));
            assert_eq!(RecordType::from_code(t.code()), t);
        }
        assert_eq!(RecordType::from_mnemonic("https"), Some(RecordType::Https));
        assert_eq!(RecordType::from_mnemonic("bogus"), None);
    }
}
