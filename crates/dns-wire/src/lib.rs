//! # dns-wire
//!
//! DNS data model and codecs for the `httpsrr` workspace: domain names,
//! resource records (including RFC 9460 SVCB/HTTPS service bindings and
//! the DNSSEC record types), full messages with EDNS(0), RFC 1035 name
//! compression, and zone-file presentation format.
//!
//! This crate is `std`-only, allocation-friendly, and panic-free on
//! untrusted input: all decoding returns [`WireError`] rather than
//! panicking, and malformed structures seen in the wild (truncated RDATA,
//! compression loops, out-of-order SvcParams, bad hint lengths) map to
//! specific variants.
//!
//! ```
//! use dns_wire::{DnsName, Message, RecordType};
//!
//! let query = Message::query(0x2b, DnsName::parse("example.com").unwrap(), RecordType::Https);
//! let bytes = query.encode();
//! let back = Message::decode(&bytes).unwrap();
//! assert_eq!(back.question().unwrap().qtype, RecordType::Https);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod message;
pub mod name;
pub mod presentation;
pub mod record;
pub mod svcb;
pub mod view;
pub mod wire;

pub use error::{ParseError, WireError};
pub use message::{Edns, Flags, Message, Opcode, Question, Rcode};
pub use name::DnsName;
pub use record::{
    DnsClass, DnskeyRdata, DsRdata, RData, Record, RecordType, RrsigRdata, SoaRdata, SrvRdata,
};
pub use svcb::{SvcParam, SvcbRdata};
pub use view::{MessageView, NameView, QuestionView, RecordView};

#[cfg(test)]
mod proptests {
    use crate::message::{Flags, Message, Opcode, Rcode};
    use crate::name::DnsName;
    use crate::record::{DnsClass, RData, Record, RecordType, SoaRdata};
    use crate::svcb::{SvcParam, SvcbRdata};
    use proptest::prelude::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn arb_label() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            prop_oneof![Just(b'a'), Just(b'z'), Just(b'0'), Just(b'-'), Just(b'X')],
            1..8,
        )
    }

    fn arb_name() -> impl Strategy<Value = DnsName> {
        proptest::collection::vec(arb_label(), 0..5).prop_map(DnsName::from_labels)
    }

    fn arb_svcparam() -> impl Strategy<Value = SvcParam> {
        prop_oneof![
            proptest::collection::vec(any::<u8>().prop_map(|b| vec![b % 26 + b'a']), 1..4)
                .prop_map(SvcParam::Alpn),
            Just(SvcParam::NoDefaultAlpn),
            any::<u16>().prop_map(SvcParam::Port),
            proptest::collection::vec(any::<u32>().prop_map(Ipv4Addr::from), 1..4)
                .prop_map(SvcParam::Ipv4Hint),
            proptest::collection::vec(any::<u128>().prop_map(Ipv6Addr::from), 1..3)
                .prop_map(SvcParam::Ipv6Hint),
            proptest::collection::vec(any::<u8>(), 1..64).prop_map(SvcParam::Ech),
            (7u16..1000, proptest::collection::vec(any::<u8>(), 0..16))
                .prop_map(|(key, value)| SvcParam::Unknown { key, value }),
        ]
    }

    fn arb_svcb() -> impl Strategy<Value = SvcbRdata> {
        (any::<u16>(), arb_name(), proptest::collection::vec(arb_svcparam(), 0..5)).prop_map(
            |(priority, target, mut params)| {
                // One param per key: encoding sorts by key and decoding
                // requires strictly increasing keys.
                params.sort_by_key(|p| p.key());
                params.dedup_by_key(|p| p.key());
                SvcbRdata { priority, target, params }
            },
        )
    }

    fn arb_rdata() -> impl Strategy<Value = RData> {
        prop_oneof![
            any::<u32>().prop_map(|v| RData::A(Ipv4Addr::from(v))),
            any::<u128>().prop_map(|v| RData::Aaaa(Ipv6Addr::from(v))),
            arb_name().prop_map(RData::Cname),
            arb_name().prop_map(RData::Ns),
            (any::<u16>(), arb_name()).prop_map(|(p, h)| RData::Mx(p, h)),
            // Presentation format is lossy for non-printable TXT bytes,
            // so generate printable, space-free strings here.
            proptest::collection::vec(
                proptest::collection::vec((b'a'..=b'z').prop_map(|b| b), 0..32),
                1..3,
            )
            .prop_map(RData::Txt),
            (
                arb_name(),
                arb_name(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>()
            )
                .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                    RData::Soa(SoaRdata { mname, rname, serial, refresh, retry, expire, minimum })
                }),
            arb_svcb().prop_map(RData::Https),
            arb_svcb().prop_map(RData::Svcb),
        ]
    }

    fn arb_record() -> impl Strategy<Value = Record> {
        (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| Record {
            name,
            rtype: rdata.record_type(),
            class: DnsClass::In,
            ttl,
            rdata,
        })
    }

    proptest! {
        #[test]
        fn svcb_rdata_round_trip(rd in arb_svcb()) {
            let mut w = crate::wire::WireWriter::new();
            rd.encode(&mut w);
            let back = SvcbRdata::decode(w.as_bytes()).unwrap();
            prop_assert_eq!(back, rd);
        }

        #[test]
        fn svcb_presentation_round_trip(rd in arb_svcb()) {
            let text = rd.to_presentation();
            let tokens: Vec<&str> = text.split_whitespace().collect();
            let parsed = SvcbRdata::parse_presentation(&tokens).unwrap();
            prop_assert_eq!(parsed, rd);
        }

        #[test]
        fn message_round_trip(
            id in any::<u16>(),
            qname in arb_name(),
            answers in proptest::collection::vec(arb_record(), 0..6),
            authorities in proptest::collection::vec(arb_record(), 0..3),
            ad in any::<bool>(),
            rcode in (0u8..6).prop_map(Rcode::from_code),
        ) {
            let msg = Message {
                id,
                opcode: Opcode::Query,
                flags: Flags { qr: true, ra: true, ad, ..Default::default() },
                rcode,
                questions: vec![crate::message::Question::new(qname, RecordType::Https)],
                answers,
                authorities,
                additionals: Vec::new(),
                edns: Some(crate::message::Edns::dnssec()),
            };
            let back = Message::decode(&msg.encode()).unwrap();
            prop_assert_eq!(back, msg);
        }

        #[test]
        fn decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Message::decode(&bytes);
            let _ = SvcbRdata::decode(&bytes);
            let _ = DnsName::decode_at(&bytes, 0);
        }

        #[test]
        fn message_view_parity_with_owned_decode(
            id in any::<u16>(),
            qname in arb_name(),
            answers in proptest::collection::vec(arb_record(), 0..6),
            authorities in proptest::collection::vec(arb_record(), 0..3),
            additionals in proptest::collection::vec(arb_record(), 0..3),
            rcode in (0u8..6).prop_map(Rcode::from_code),
            with_edns in any::<bool>(),
        ) {
            let msg = Message {
                id,
                opcode: Opcode::Query,
                flags: Flags { qr: true, ra: true, ..Default::default() },
                rcode,
                questions: vec![crate::message::Question::new(qname, RecordType::Https)],
                answers,
                authorities,
                additionals,
                edns: with_edns.then(crate::message::Edns::dnssec),
            };
            let buf = msg.encode();
            let view = crate::view::MessageView::parse(&buf).unwrap();
            let owned = Message::decode(&buf).unwrap();
            prop_assert_eq!(view.id(), owned.id);
            prop_assert_eq!(view.rcode(), owned.rcode);
            prop_assert_eq!(view.edns(), owned.edns);
            prop_assert_eq!(view.answer_count(), owned.answers.len());
            prop_assert_eq!(view.to_message().unwrap(), owned);
        }

        #[test]
        fn decode_encode_byte_identity(
            id in any::<u16>(),
            qname in arb_name(),
            answers in proptest::collection::vec(arb_record(), 0..6),
            authorities in proptest::collection::vec(arb_record(), 0..3),
        ) {
            let msg = Message {
                id,
                opcode: Opcode::Query,
                flags: Flags { qr: true, ra: true, ..Default::default() },
                rcode: Rcode::NoError,
                questions: vec![crate::message::Question::new(qname, RecordType::Https)],
                answers,
                authorities,
                additionals: Vec::new(),
                edns: Some(crate::message::Edns::dnssec()),
            };
            let wire = msg.encode();
            // decode → re-encode reproduces the exact bytes, and so does
            // the borrowed view's escape hatch.
            prop_assert_eq!(Message::decode(&wire).unwrap().encode(), wire.clone());
            let view = crate::view::MessageView::parse(&wire).unwrap();
            prop_assert_eq!(view.to_message().unwrap().encode(), wire);
        }

        #[test]
        fn message_view_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            if let Ok(view) = crate::view::MessageView::parse(&bytes) {
                for q in view.questions() {
                    let _ = q.name().labels().count();
                    let _ = q.to_owned();
                }
                for r in view.answers().chain(view.authorities()).chain(view.additionals()) {
                    let _ = r.name().labels().count();
                    let _ = r.rdata();
                }
                let _ = view.to_message();
            }
        }

        #[test]
        fn name_parse_display_round_trip(name in arb_name()) {
            let text = name.to_string();
            let back = DnsName::parse(&text).unwrap();
            prop_assert_eq!(back, name);
        }

        #[test]
        fn record_presentation_round_trip(rec in arb_record()) {
            let line = rec.to_presentation();
            let back = crate::presentation::parse_record_line(&line, &DnsName::root(), rec.ttl)
                .unwrap().unwrap();
            prop_assert_eq!(back, rec);
        }
    }
}
