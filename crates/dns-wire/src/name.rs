//! Domain names: label sequences with case-insensitive semantics,
//! wire encoding/decoding (including RFC 1035 compression pointers),
//! and presentation-format parsing/printing.

use crate::error::{ParseError, WireError};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Maximum wire length of a name (RFC 1035 §3.1).
pub const MAX_NAME_WIRE_LEN: usize = 255;
/// Maximum length of a single label.
pub const MAX_LABEL_LEN: usize = 63;
/// Budget of compression pointers followed before declaring a loop.
pub(crate) const MAX_POINTER_HOPS: usize = 64;

/// A fully-qualified DNS domain name.
///
/// Stored as a sequence of raw labels (without the root label). Comparison
/// and hashing are case-insensitive over ASCII, per RFC 1035 §2.3.3; the
/// original case is preserved for display.
///
/// ```
/// use dns_wire::DnsName;
/// let a = DnsName::parse("WWW.Example.COM").unwrap();
/// let b = DnsName::parse("www.example.com").unwrap();
/// assert_eq!(a, b);
/// assert_eq!(a.to_string(), "WWW.Example.COM.");
/// ```
#[derive(Debug, Clone, Eq)]
pub struct DnsName {
    labels: Vec<Vec<u8>>,
}

impl DnsName {
    /// The root name (`.`).
    pub fn root() -> Self {
        DnsName { labels: Vec::new() }
    }

    /// Build from raw labels (no root label). Labels are used as-is.
    pub fn from_labels(labels: Vec<Vec<u8>>) -> Self {
        DnsName { labels }
    }

    /// Parse a presentation-format name such as `www.example.com` or
    /// `example.com.`. A lone `.` yields the root name. Simple `\.`
    /// escapes inside labels are honoured.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseError::BadName(s.to_string()));
        }
        if s == "." {
            return Ok(DnsName::root());
        }
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut current: Vec<u8> = Vec::new();
        let mut chars = s.bytes().peekable();
        while let Some(b) = chars.next() {
            match b {
                b'\\' => {
                    let esc = chars.next().ok_or_else(|| ParseError::BadName(s.to_string()))?;
                    current.push(esc);
                }
                b'.' => {
                    if current.is_empty() {
                        return Err(ParseError::BadName(s.to_string()));
                    }
                    labels.push(std::mem::take(&mut current));
                }
                _ => current.push(b),
            }
        }
        if !current.is_empty() {
            labels.push(current);
        }
        let name = DnsName { labels };
        if name.labels.iter().any(|l| l.len() > MAX_LABEL_LEN) {
            return Err(ParseError::BadName(s.to_string()));
        }
        if name.wire_len() > MAX_NAME_WIRE_LEN {
            return Err(ParseError::BadName(s.to_string()));
        }
        Ok(name)
    }

    /// The labels of this name, most-specific first, excluding the root.
    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    /// Number of labels (the root name has zero).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length of the uncompressed wire encoding (labels + root octet).
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// The name with its leftmost label removed; `None` for the root.
    pub fn parent(&self) -> Option<DnsName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DnsName { labels: self.labels[1..].to_vec() })
        }
    }

    /// Prepend a label, e.g. `example.com`.prepend("www") = `www.example.com`.
    pub fn prepend(&self, label: &str) -> Result<DnsName, ParseError> {
        if label.is_empty() || label.len() > MAX_LABEL_LEN || label.contains('.') {
            return Err(ParseError::BadName(label.to_string()));
        }
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.as_bytes().to_vec());
        labels.extend(self.labels.iter().cloned());
        let name = DnsName { labels };
        if name.wire_len() > MAX_NAME_WIRE_LEN {
            return Err(ParseError::BadName(label.to_string()));
        }
        Ok(name)
    }

    /// True when `self` equals `other` or is a descendant of it.
    /// Every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, other: &DnsName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..].iter().zip(other.labels.iter()).all(|(a, b)| eq_label(a, b))
    }

    /// The canonical (lowercased) uncompressed wire form; used as a
    /// compression-dictionary key and in DNSSEC-style canonical ordering.
    pub fn canonical_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        for label in &self.labels {
            out.push(label.len() as u8);
            out.extend(label.iter().map(|b| b.to_ascii_lowercase()));
        }
        out.push(0);
        out
    }

    /// Lowercased presentation form without trailing dot (root → `.`),
    /// convenient as a map key in higher layers.
    pub fn key(&self) -> String {
        let mut s = String::new();
        self.write_key(&mut s);
        s
    }

    /// Append [`DnsName::key`]'s rendering to `out` without allocating a
    /// fresh `String` — hot paths (e.g. batch partitioning) reuse one
    /// cleared buffer across many names.
    pub fn write_key(&self, out: &mut String) {
        if self.labels.is_empty() {
            out.push('.');
            return;
        }
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            for &b in label {
                out.push(b.to_ascii_lowercase() as char);
            }
        }
    }

    /// Validate a (possibly compressed) name at `start` without building
    /// the label vector, returning the offset at which sequential reading
    /// resumes. Applies the same structural rules as [`DnsName::decode_at`]
    /// (backward-only pointers, hop budget, label and name length limits),
    /// so a buffer that passes `skip_at` decodes without error.
    pub fn skip_at(buf: &[u8], start: usize) -> Result<usize, WireError> {
        let mut pos = start;
        let mut resume: Option<usize> = None;
        let mut hops = 0usize;
        let mut wire_len = 1usize; // root octet

        loop {
            let len_byte =
                *buf.get(pos).ok_or(WireError::Truncated { context: "name label length" })?;
            match len_byte & 0xC0 {
                0x00 => {
                    let n = len_byte as usize;
                    if n == 0 {
                        return Ok(resume.unwrap_or(pos + 1));
                    }
                    if n > MAX_LABEL_LEN {
                        return Err(WireError::LabelTooLong(n));
                    }
                    let end = pos + 1 + n;
                    if end > buf.len() {
                        return Err(WireError::Truncated { context: "name label" });
                    }
                    wire_len += n + 1;
                    if wire_len > MAX_NAME_WIRE_LEN {
                        return Err(WireError::NameTooLong(wire_len));
                    }
                    pos = end;
                }
                0xC0 => {
                    let second = *buf
                        .get(pos + 1)
                        .ok_or(WireError::Truncated { context: "compression pointer" })?;
                    let target = (((len_byte & 0x3F) as usize) << 8) | second as usize;
                    if target >= pos {
                        return Err(WireError::BadCompressionPointer { at: pos });
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadCompressionPointer { at: pos });
                    }
                    if resume.is_none() {
                        resume = Some(pos + 2);
                    }
                    pos = target;
                }
                other => return Err(WireError::UnsupportedLabelType(other)),
            }
        }
    }

    /// Decode a (possibly compressed) name from `buf` starting at `start`.
    /// Returns the name and the offset at which sequential reading resumes.
    pub fn decode_at(buf: &[u8], start: usize) -> Result<(DnsName, usize), WireError> {
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut pos = start;
        let mut resume: Option<usize> = None;
        let mut hops = 0usize;
        let mut wire_len = 1usize; // root octet

        loop {
            let len_byte =
                *buf.get(pos).ok_or(WireError::Truncated { context: "name label length" })?;
            match len_byte & 0xC0 {
                0x00 => {
                    let n = len_byte as usize;
                    if n == 0 {
                        let next = resume.unwrap_or(pos + 1);
                        return Ok((DnsName { labels }, next));
                    }
                    if n > MAX_LABEL_LEN {
                        return Err(WireError::LabelTooLong(n));
                    }
                    let end = pos + 1 + n;
                    if end > buf.len() {
                        return Err(WireError::Truncated { context: "name label" });
                    }
                    wire_len += n + 1;
                    if wire_len > MAX_NAME_WIRE_LEN {
                        return Err(WireError::NameTooLong(wire_len));
                    }
                    labels.push(buf[pos + 1..end].to_vec());
                    pos = end;
                }
                0xC0 => {
                    let second = *buf
                        .get(pos + 1)
                        .ok_or(WireError::Truncated { context: "compression pointer" })?;
                    let target = (((len_byte & 0x3F) as usize) << 8) | second as usize;
                    // Pointers must strictly point backwards; forward or
                    // self-pointing targets cannot terminate.
                    if target >= pos {
                        return Err(WireError::BadCompressionPointer { at: pos });
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadCompressionPointer { at: pos });
                    }
                    if resume.is_none() {
                        resume = Some(pos + 2);
                    }
                    pos = target;
                }
                other => return Err(WireError::UnsupportedLabelType(other)),
            }
        }
    }
}

fn eq_label(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.eq_ignore_ascii_case(y))
}

impl PartialEq for DnsName {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self.labels.iter().zip(other.labels.iter()).all(|(a, b)| eq_label(a, b))
    }
}

impl Hash for DnsName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for label in &self.labels {
            state.write_usize(label.len());
            for &b in label {
                state.write_u8(b.to_ascii_lowercase());
            }
        }
    }
}

impl PartialOrd for DnsName {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DnsName {
    /// Canonical DNS ordering (RFC 4034 §6.1): compare label sequences
    /// right-to-left, case-insensitively.
    fn cmp(&self, other: &Self) -> Ordering {
        let a_rev = self.labels.iter().rev();
        let b_rev = other.labels.iter().rev();
        for (a, b) in a_rev.zip(b_rev) {
            let la: Vec<u8> = a.iter().map(|c| c.to_ascii_lowercase()).collect();
            let lb: Vec<u8> = b.iter().map(|c| c.to_ascii_lowercase()).collect();
            match la.cmp(&lb) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.labels.len().cmp(&other.labels.len())
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for label in &self.labels {
            for &b in label {
                if b == b'.' || b == b'\\' {
                    write!(f, "\\{}", b as char)?;
                } else if b.is_ascii_graphic() {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
            write!(f, ".")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for DnsName {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnsName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = DnsName::parse("a.example.com.").unwrap();
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.to_string(), "a.example.com.");
        assert_eq!(DnsName::root().to_string(), ".");
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::HashSet;
        let a = DnsName::parse("ExAmPlE.CoM").unwrap();
        let b = DnsName::parse("example.com").unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn parent_and_prepend() {
        let apex = DnsName::parse("example.com").unwrap();
        let www = apex.prepend("www").unwrap();
        assert_eq!(www.to_string(), "www.example.com.");
        assert_eq!(www.parent().unwrap(), apex);
        assert_eq!(apex.parent().unwrap().parent().unwrap(), DnsName::root());
        assert!(DnsName::root().parent().is_none());
    }

    #[test]
    fn subdomain_relation() {
        let com = DnsName::parse("com").unwrap();
        let ex = DnsName::parse("example.com").unwrap();
        let www = DnsName::parse("www.Example.COM").unwrap();
        assert!(www.is_subdomain_of(&ex));
        assert!(www.is_subdomain_of(&com));
        assert!(www.is_subdomain_of(&DnsName::root()));
        assert!(ex.is_subdomain_of(&ex));
        assert!(!ex.is_subdomain_of(&www));
        assert!(!DnsName::parse("badexample.com").unwrap().is_subdomain_of(&ex));
    }

    #[test]
    fn wire_round_trip_plain() {
        let n = DnsName::parse("mail.example.org").unwrap();
        let mut w = crate::wire::WireWriter::new();
        w.put_name_uncompressed(&n);
        let buf = w.into_bytes();
        let (decoded, next) = DnsName::decode_at(&buf, 0).unwrap();
        assert_eq!(decoded, n);
        assert_eq!(next, buf.len());
    }

    #[test]
    fn decode_rejects_pointer_loop() {
        // A pointer at offset 0 pointing to itself.
        let buf = [0xC0, 0x00];
        assert!(matches!(
            DnsName::decode_at(&buf, 0),
            Err(WireError::BadCompressionPointer { .. })
        ));
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        let buf = [0xC0, 0x05, 0, 0, 0, 0];
        assert!(DnsName::decode_at(&buf, 0).is_err());
    }

    #[test]
    fn decode_follows_backward_pointer() {
        // "com" at 0, then "example" + pointer to 0.
        let mut buf = vec![3, b'c', b'o', b'm', 0];
        let ptr_at = buf.len();
        buf.extend_from_slice(&[7]);
        buf.extend_from_slice(b"example");
        buf.extend_from_slice(&[0xC0, 0x00]);
        let (n, next) = DnsName::decode_at(&buf, ptr_at).unwrap();
        assert_eq!(n, DnsName::parse("example.com").unwrap());
        assert_eq!(next, buf.len());
    }

    #[test]
    fn rejects_oversized_label() {
        let long = "a".repeat(64);
        assert!(DnsName::parse(&long).is_err());
        assert!(DnsName::parse(&"a".repeat(63)).is_ok());
    }

    #[test]
    fn rejects_oversized_name() {
        let label = "a".repeat(63);
        let name = format!("{label}.{label}.{label}.{label}.{label}");
        assert!(DnsName::parse(&name).is_err());
    }

    #[test]
    fn escaped_dot_in_label() {
        let n = DnsName::parse(r"foo\.bar.example").unwrap();
        assert_eq!(n.label_count(), 2);
        assert_eq!(n.labels()[0], b"foo.bar".to_vec());
        assert_eq!(n.to_string(), r"foo\.bar.example.");
    }

    #[test]
    fn canonical_order_rfc4034() {
        // RFC 4034 §6.1 example ordering.
        let mut names: Vec<DnsName> = [
            "example",
            "a.example",
            "yljkjljk.a.example",
            "Z.a.example",
            "zABC.a.EXAMPLE",
            "z.example",
        ]
        .iter()
        .map(|s| DnsName::parse(s).unwrap())
        .collect();
        let expected: Vec<DnsName> = names.clone();
        names.reverse();
        names.sort();
        assert_eq!(names, expected);
    }

    #[test]
    fn key_is_lowercase_no_trailing_dot() {
        assert_eq!(DnsName::parse("WWW.Example.Com.").unwrap().key(), "www.example.com");
        assert_eq!(DnsName::root().key(), ".");
    }

    #[test]
    fn write_key_appends_and_matches_key() {
        let mut buf = String::from("x");
        DnsName::parse("A.Example").unwrap().write_key(&mut buf);
        assert_eq!(buf, "xa.example");
        buf.clear();
        DnsName::root().write_key(&mut buf);
        assert_eq!(buf, ".");
    }

    #[test]
    fn rejects_empty_label() {
        assert!(DnsName::parse("a..b").is_err());
        assert!(DnsName::parse("").is_err());
    }
}
